"""Fault plans: the hook protocol between injectors and simulators.

A :class:`FaultPlan` is a composition of seeded
:class:`FaultInjector` objects plus an optional degraded-mode
configuration (``poll_budget`` / ``timeout_cycles``) that the barrier
simulator consults when deciding whether a waiting processor should
give up and report a partial-arrival outcome.

The contract with the simulators mirrors the tracer's: the active plan
is a process-wide registry entry read once per run
(:func:`get_fault_plan`); when no plan is installed the lookup returns
``None`` and every hot path skips the fault hooks behind a single
``is not None`` check, so results with faults off are bit-identical to
a build without this module.

Determinism: every injector draws from a named stream spawned off the
plan's root seed (see :mod:`repro.sim.rng`), re-derived at every
:meth:`FaultPlan.begin_episode`, so two runs of the same configuration
with the same seed produce identical fault schedules.

Hook sites (each is a no-op unless an injector overrides it):

===================  ====================================================
hook                 call site
===================  ====================================================
``arrival_delay``    :class:`repro.barrier.simulator.BarrierSimulator` —
                     extra cycles added to a processor's barrier arrival
                     (straggler model).
``module_windows``   barrier simulator episode setup — outage windows
                     installed into :class:`repro.network.module.MemoryModule`.
``grant_outcome``    barrier flag writes and multistage-network circuit
                     grants — ``"drop"`` loses the grant (the requester
                     must retry), ``"dup"`` charges a duplicated access.
``flaky_read``       barrier flag polls — a set flag transiently reads
                     as clear.
``event_jitter``     :meth:`repro.sim.engine.Simulator.schedule` —
                     non-negative cycles added to an event's time.
===================  ====================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro._ambient import AmbientState

#: Grant outcomes returned by :meth:`FaultInjector.grant_outcome`.
GRANT_OK = "ok"
GRANT_DROP = "drop"
GRANT_DUP = "dup"


class FaultInjector:
    """Base class: injects nothing.

    Subclasses override the hooks they participate in and read
    randomness exclusively from ``self.rng`` (a numpy Generator
    installed by :meth:`reset` at the start of every episode).
    """

    name = "injector"

    def __init__(self) -> None:
        self.rng = None

    def reset(self, rng) -> None:
        """Install the episode's random stream; clears cached draws."""
        self.rng = rng

    def arrival_delay(self, cpu: int, n: int, time: int) -> int:
        """Extra cycles before processor ``cpu`` (of ``n``) arrives."""
        return 0

    def module_windows(self, module: str) -> Sequence[Tuple[int, int]]:
        """Outage windows ``(start, end)`` for the named memory module."""
        return ()

    def grant_outcome(self, site: str, actor: int, time: int) -> str:
        """Fate of a granted access at ``site``: ok, drop or dup."""
        return GRANT_OK

    def flaky_read(self, site: str, actor: int, time: int) -> bool:
        """True if this (otherwise successful) read observes stale state."""
        return False

    def event_jitter(self, time: int) -> int:
        """Non-negative cycles of scheduling jitter for an event."""
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FaultPlan:
    """A named, seeded composition of fault injectors.

    Attributes:
        injectors: the composed :class:`FaultInjector` list; hooks
            dispatch over it in order (first non-default answer wins for
            grant outcomes and flaky reads; delays and jitter sum).
        seed: root seed for every injector stream.
        name: label used in stream derivation and reports.
        poll_budget: degraded-mode cap on unsuccessful flag polls per
            processor (None = unlimited); overridden by a barrier's own
            ``poll_budget`` when that is set.
        timeout_cycles: degraded-mode cap on cycles a processor waits
            past its arrival (None = unlimited).
        fault_counts: monotonic counters of injected faults, keyed by
            ``category.detail`` (e.g. ``grant.drop``); simulators also
            record degraded outcomes here (``barrier.partial_arrival``).
    """

    def __init__(
        self,
        injectors: Sequence[FaultInjector] = (),
        seed: int = 0,
        name: str = "plan",
        poll_budget: Optional[int] = None,
        timeout_cycles: Optional[int] = None,
    ) -> None:
        if poll_budget is not None and poll_budget < 1:
            raise ValueError("poll_budget must be >= 1 when set")
        if timeout_cycles is not None and timeout_cycles < 1:
            raise ValueError("timeout_cycles must be >= 1 when set")
        self.injectors: List[FaultInjector] = list(injectors)
        self.seed = seed
        self.name = name
        self.poll_budget = poll_budget
        self.timeout_cycles = timeout_cycles
        self.fault_counts: Dict[str, int] = {}
        self._episode = 0
        self._reset_injectors("init")

    # -- episode management ------------------------------------------

    def begin_episode(self, tag: Optional[str] = None) -> None:
        """Re-derive every injector stream for a new episode.

        With no explicit ``tag`` an internal counter is used, so a
        fixed call sequence (same configuration, same seed) yields the
        same schedule in every run.
        """
        self._episode += 1
        self._reset_injectors(tag if tag is not None else str(self._episode))

    def _reset_injectors(self, tag: str) -> None:
        if not self.injectors:
            return
        # Imported lazily so this module stays free of import cycles
        # (repro.sim.engine imports this module at load time).
        from repro.sim.rng import spawn_stream

        for index, injector in enumerate(self.injectors):
            injector.reset(
                spawn_stream(
                    self.seed, f"fault:{self.name}:{index}:{injector.name}:{tag}"
                )
            )

    # -- bookkeeping --------------------------------------------------

    def count(self, kind: str, amount: int = 1) -> None:
        """Record ``amount`` injected faults of ``kind``."""
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + amount

    @property
    def total_injected(self) -> int:
        """Total injected-fault count across all categories."""
        return sum(self.fault_counts.values())

    def snapshot(self) -> Dict[str, int]:
        """The fault counters as a plain sorted dict (for manifests)."""
        return dict(sorted(self.fault_counts.items()))

    # -- hooks (called by the simulators) ----------------------------

    def arrival_delay(self, cpu: int, n: int, time: int) -> int:
        delay = 0
        for injector in self.injectors:
            delay += int(injector.arrival_delay(cpu, n, time))
        if delay:
            self.count("arrival.stragglers")
            self.count("arrival.delay_cycles", delay)
        return delay

    def module_windows(self, module: str) -> List[Tuple[int, int]]:
        windows: List[Tuple[int, int]] = []
        for injector in self.injectors:
            windows.extend(injector.module_windows(module))
        if windows:
            self.count("module.outage_windows", len(windows))
        return windows

    def grant_outcome(self, site: str, actor: int, time: int) -> str:
        for injector in self.injectors:
            outcome = injector.grant_outcome(site, actor, time)
            if outcome != GRANT_OK:
                self.count(f"grant.{outcome}")
                return outcome
        return GRANT_OK

    def flaky_read(self, site: str, actor: int, time: int) -> bool:
        for injector in self.injectors:
            if injector.flaky_read(site, actor, time):
                self.count("read.flaky")
                return True
        return False

    def event_jitter(self, time: int) -> int:
        jitter = 0
        for injector in self.injectors:
            jitter += int(injector.event_jitter(time))
        if jitter:
            self.count("event.jitter_cycles", jitter)
        return jitter

    def __repr__(self) -> str:
        return (
            f"FaultPlan({self.name!r}, seed={self.seed}, "
            f"injectors={self.injectors!r})"
        )


# ----------------------------------------------------------------------
# Active-plan registry (mirrors repro.obs.tracer's get/set/contextmanager).
# ----------------------------------------------------------------------

_ACTIVE_PLAN: "AmbientState" = AmbientState("faults.plan", None)


def get_fault_plan() -> Optional[FaultPlan]:
    """The installed plan — this thread's innermost
    :func:`fault_injection` override, else the process default — or
    None (the common, zero-cost case)."""
    return _ACTIVE_PLAN.get()


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process-wide default; returns it.
    None uninstalls."""
    _ACTIVE_PLAN.set(plan)
    return plan


def clear_fault_plan() -> None:
    """Uninstall any process-default plan."""
    install_fault_plan(None)


@contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block.

    Example:
        >>> from repro.faults.plan import FaultPlan, fault_injection
        >>> with fault_injection(FaultPlan(name="demo")) as plan:
        ...     get_fault_plan() is plan
        True
        >>> get_fault_plan() is None
        True
    """
    with _ACTIVE_PLAN.scoped(plan):
        yield plan
