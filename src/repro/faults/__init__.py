"""Fault injection and resilient experiment execution.

Layer map:

- :mod:`repro.faults.plan` — the :class:`FaultPlan` hook protocol and
  the process-wide active-plan registry the simulators consult (a
  ``None`` lookup when no plan is installed, so the hot path costs one
  ``is not None`` check and results with faults off stay bit-identical).
- :mod:`repro.faults.injectors` — the injector catalog (stragglers,
  module outages, grant drop/dup, flaky flag reads, event jitter).
- :mod:`repro.faults.spec` — the ``--plan`` text grammar and named
  plans (``chaos``, ``lossy-net``, ...).
- :mod:`repro.faults.runner` — checkpoint/resume, per-point timeouts,
  bounded retry, and the resilience summary behind
  ``python -m repro faults``.
"""

from repro.faults.plan import (
    GRANT_DROP,
    GRANT_DUP,
    GRANT_OK,
    FaultInjector,
    FaultPlan,
    clear_fault_plan,
    fault_injection,
    get_fault_plan,
    install_fault_plan,
)
from repro.faults.injectors import (
    EventJitterInjector,
    FlakyFlagInjector,
    GrantFaultInjector,
    ModuleOutageInjector,
    StragglerInjector,
)
from repro.faults.spec import INJECTOR_FACTORIES, NAMED_PLANS, parse_plan

#: Runner symbols resolved lazily (PEP 562): the runner pulls in
#: repro.sim / repro.obs / repro.analysis, and the simulators import
#: *this* package at load time — an eager import here would cycle.
_RUNNER_EXPORTS = frozenset(
    {
        "CheckpointMismatchError",
        "CheckpointStore",
        "PointRecord",
        "PointTimeoutError",
        "ResilienceSummary",
        "run_experiment_resilient",
        "run_resilient_sweep",
        "time_limit",
    }
)


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.faults import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "GRANT_DROP",
    "GRANT_DUP",
    "GRANT_OK",
    "FaultInjector",
    "FaultPlan",
    "clear_fault_plan",
    "fault_injection",
    "get_fault_plan",
    "install_fault_plan",
    "EventJitterInjector",
    "FlakyFlagInjector",
    "GrantFaultInjector",
    "ModuleOutageInjector",
    "StragglerInjector",
    "INJECTOR_FACTORIES",
    "NAMED_PLANS",
    "parse_plan",
    "CheckpointMismatchError",
    "CheckpointStore",
    "PointRecord",
    "PointTimeoutError",
    "ResilienceSummary",
    "run_experiment_resilient",
    "run_resilient_sweep",
    "time_limit",
]
