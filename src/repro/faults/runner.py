"""Resilient experiment execution: checkpoint/resume, timeouts, retries.

The registry experiments (:mod:`repro.analysis.experiments`) are
decomposed into independent sweep points; each point runs under the
requested fault plan with

- **per-point checkpointing** — every finished point is written to
  ``<checkpoint-dir>/points/<key>.json`` (manifest-style: jsonable
  payload plus a deterministic digest, see :mod:`repro.obs.manifest`),
  so a crashed or interrupted sweep resumes without recomputing
  completed points;
- **a wall-clock timeout** — each attempt is bounded by ``SIGALRM``
  (main thread; elsewhere the timeout degrades to unbounded) and
  cancelled cleanly;
- **bounded retry with exponential backoff** — a failed point is
  retried up to ``max_retries`` times, sleeping
  ``retry_backoff_seconds * 2**attempt`` between attempts, mirroring
  the paper's own retry discipline at the harness level.

Each point gets its *own* plan instance seeded from
``derive_seed(seed, point-key)``, so fault schedules are identical
whether the sweep runs straight through or resumes from a checkpoint.

The durability and recovery primitives themselves — ``time_limit``,
``PointRecord``, ``CheckpointStore``, the retry-wait schedule — moved
to :mod:`repro.exec.supervisor` (PR 7), where every execution path
shares them; this module re-exports them unchanged and keeps the
fault-plan-specific orchestration (per-point derived plans, the
degraded/failed classification, the resilience summary).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.exec.cache import ResultCache, cache_key
from repro.exec.context import get_exec_config, get_stats, validate_jobs
from repro.exec.supervisor import (
    CHECKPOINT_VERSION,
    COMPLETED,
    DEGRADED,
    FAILED,
    CheckpointMismatchError,
    CheckpointStore,
    PointRecord,
    PointTimeoutError,
    RetryPolicy,
    SupervisorConfig,
    config_digest as _supervisor_config_digest,
    record_digest as _record_digest,
    run_supervised,
    safe_filename as _safe_filename,
    time_limit,
)
from repro.faults.plan import FaultPlan, fault_injection
from repro.faults.spec import parse_plan
from repro.obs.manifest import jsonable
from repro.sim.rng import derive_seed

__all__ = [
    "CHECKPOINT_VERSION",
    "COMPLETED",
    "DEGRADED",
    "FAILED",
    "CheckpointMismatchError",
    "CheckpointStore",
    "PointRecord",
    "PointTimeoutError",
    "ResilienceSummary",
    "build_point_plan",
    "fault_point_cache_key",
    "run_experiment_resilient",
    "run_plan_resilient",
    "run_fault_point_task",
    "run_resilient_sweep",
    "time_limit",
]


@dataclass
class ResilienceSummary:
    """What happened to a resilient sweep, for reports and exit codes."""

    experiment_id: str
    plan_name: str
    total_points: int
    records: Dict[str, PointRecord] = field(default_factory=dict)
    resumed: int = 0
    retried: int = 0
    interrupted: bool = False
    checkpoint_dir: str = ""
    #: Worker processes the sweep ran with (1 = the serial path).
    jobs: int = 1
    #: Points satisfied from the content-addressed result cache.
    cache_hits: int = 0
    #: Freshly computed points written to the result cache.
    cache_stores: int = 0

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records.values() if r.status == status)

    @property
    def completed(self) -> int:
        return self._count(COMPLETED)

    @property
    def degraded(self) -> int:
        return self._count(DEGRADED)

    @property
    def failed(self) -> int:
        return self._count(FAILED)

    @property
    def remaining(self) -> int:
        return self.total_points - len(self.records)

    @property
    def ok(self) -> bool:
        """True when nothing failed outright (degraded still counts ok)."""
        return self.failed == 0

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Injected-fault totals aggregated over every point."""
        totals: Dict[str, int] = {}
        for record in self.records.values():
            for kind, count in record.fault_counts.items():
                totals[kind] = totals.get(kind, 0) + count
        return dict(sorted(totals.items()))

    def render(self) -> str:
        lines = [
            f"== resilience summary: {self.experiment_id} "
            f"under plan {self.plan_name!r} ==",
            f"points     : {self.total_points} total, "
            f"{self.resumed} resumed from checkpoint",
            f"completed  : {self.completed}",
            f"degraded   : {self.degraded}",
            f"failed     : {self.failed}",
            f"retries    : {self.retried}",
        ]
        if self.jobs > 1 or self.cache_hits or self.cache_stores:
            lines.append(
                f"execution  : jobs={self.jobs}, cache hits "
                f"{self.cache_hits}, cache stores {self.cache_stores}"
            )
        if self.interrupted:
            lines.append(
                f"interrupted: yes ({self.remaining} point(s) left; rerun "
                "to resume)"
            )
        faults = self.fault_counts
        if faults:
            lines.append("injected faults:")
            width = max(len(kind) for kind in faults)
            for kind, count in faults.items():
                lines.append(f"  {kind:<{width}} : {count}")
        else:
            lines.append("injected faults: none")
        for record in self.records.values():
            if record.status == FAILED:
                lines.append(f"  FAILED {record.key}: {record.error}")
        if self.checkpoint_dir:
            lines.append(f"checkpoint : {self.checkpoint_dir}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def run_resilient_sweep(
    points: Mapping[str, Callable[[], PointRecord]],
    store: Optional[CheckpointStore] = None,
    existing: Optional[Dict[str, PointRecord]] = None,
    timeout_seconds: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_seconds: float = 0.05,
    max_points: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
    retry_policy: Optional[RetryPolicy] = None,
) -> "tuple[Dict[str, PointRecord], int, int, bool]":
    """Run ``points`` resiliently; returns (records, resumed, retried, interrupted).

    Each value in ``points`` is a zero-argument callable returning a
    :class:`PointRecord` (status already classified); exceptions and
    timeouts are caught here and turned into retries, then a FAILED
    record.  ``max_points`` bounds how many *new* points run (the
    crash-simulation hook the CI resume smoke test uses).

    ``retry_policy`` shapes the wait between attempts; the default —
    exponential from ``retry_backoff_seconds`` — reproduces the
    historical ``retry_backoff_seconds * 2**(attempt-1)`` schedule
    exactly (see :class:`repro.exec.supervisor.RetryPolicy`).
    """
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if retry_backoff_seconds < 0:
        raise ValueError("retry_backoff_seconds must be non-negative")
    if retry_policy is None:
        retry_policy = RetryPolicy(base_seconds=retry_backoff_seconds)
    existing = existing or {}
    records: Dict[str, PointRecord] = {}
    resumed = retried = 0
    ran = 0
    interrupted = False

    for key, point in points.items():
        prior = existing.get(key)
        if prior is not None and prior.done:
            records[key] = prior
            resumed += 1
            continue
        if max_points is not None and ran >= max_points:
            interrupted = True
            break
        ran += 1
        record: Optional[PointRecord] = None
        started = time.perf_counter()
        for attempt in range(max_retries + 1):
            if attempt:
                retried += 1
                sleep(retry_policy.wait_seconds(attempt))
            try:
                with time_limit(timeout_seconds):
                    record = point()
                break
            except KeyboardInterrupt:
                interrupted = True
                break
            except Exception as error:  # noqa: BLE001 - resilience boundary
                record = PointRecord(
                    key=key,
                    status=FAILED,
                    attempts=attempt + 1,
                    error=f"{type(error).__name__}: {error}",
                )
        if interrupted and record is None:
            break
        assert record is not None
        record.key = key
        record.attempts = max(record.attempts, 1)
        record.wall_time_seconds = time.perf_counter() - started
        records[key] = record
        if store is not None:
            store.save_point(record)
        if interrupted:
            break
    return records, resumed, retried, interrupted


def _config_digest(payload: Dict[str, Any]) -> str:
    return _supervisor_config_digest(payload)


def _execute_fault_point(
    experiment_id: str,
    plan_spec: str,
    seed: int,
    key: str,
    kwargs: Dict[str, Any],
) -> PointRecord:
    """Run one sweep point under its derived plan; shared by both the
    serial closure and the pool worker, so the two paths cannot drift.
    """
    from repro.registry import run as run_one

    # A fresh plan per point, seeded by the point key: fault schedules
    # do not depend on which points ran before, so a resumed (or
    # parallel) sweep equals an uninterrupted serial one.
    plan = build_point_plan(plan_spec, seed, experiment_id, key)
    with fault_injection(plan):
        result = run_one(experiment_id, **kwargs)
    degraded = plan.fault_counts.get("barrier.partial_arrival", 0) > 0
    # Round-trip through JSON so the in-memory record equals what a
    # resumed run loads from disk (e.g. int dict keys -> str).
    data = json.loads(
        json.dumps(
            jsonable({"title": result.title, "data": result.data}),
            sort_keys=True,
            default=str,
        )
    )
    return PointRecord(
        key=key,
        status=DEGRADED if degraded else COMPLETED,
        data=data,
        fault_counts=plan.snapshot(),
    )


def run_fault_point_task(task: Dict[str, Any]) -> PointRecord:
    """Pool-worker entry: execute one fault point from a picklable task.

    The worker applies the wall-clock limit itself (``SIGALRM`` works
    there — a pool worker's work runs on its main thread) and first
    drops the tracer / fault plan / exec config it inherited from the
    forked parent, so nested parallelism and sink corruption are
    impossible.
    """
    from repro.exec.shards import reset_worker_state

    reset_worker_state()
    started = time.perf_counter()
    with time_limit(task.get("timeout_seconds")):
        record = _execute_fault_point(
            task["experiment_id"],
            task["plan_spec"],
            task["seed"],
            task["key"],
            task["kwargs"],
        )
    record.wall_time_seconds = time.perf_counter() - started
    return record


def _run_fault_points_parallel(
    points_kwargs: "Dict[str, Dict[str, Any]]",
    existing: Dict[str, PointRecord],
    store: Optional[CheckpointStore],
    jobs: int,
    experiment_id: str,
    plan_spec: str,
    seed: int,
    timeout_seconds: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_seconds: float = 0.05,
    max_points: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
    retry_policy_spec: str = "exponential",
) -> "tuple[Dict[str, PointRecord], int, int, bool]":
    """Point-level parallel version of :func:`run_resilient_sweep`.

    Fault plans are process-global and stateful across episodes, so
    repetition-level sharding is off the table here; instead whole
    points — already independent by construction (each derives its own
    plan from the point key) — are fanned across the supervised worker
    pool (:func:`repro.exec.supervisor.run_supervised`), which also
    survives worker death: a killed worker respawns the pool and
    re-dispatches only the lost points, without charging them a retry.
    """
    from repro.exec.engine import _discard_pool, _get_pool

    records: Dict[str, PointRecord] = {}
    resumed = 0
    interrupted = False
    pending: List[str] = []
    for key in points_kwargs:
        prior = existing.get(key)
        if prior is not None and prior.done:
            records[key] = prior
            resumed += 1
        else:
            pending.append(key)
    if max_points is not None and len(pending) > max_points:
        interrupted = True
        pending = pending[:max_points]

    stats = get_stats()
    supervisor = SupervisorConfig(
        retries=max_retries,
        deadline_seconds=timeout_seconds,
        backoff=retry_policy_spec,
        backoff_base_seconds=retry_backoff_seconds,
    )
    tasks = {
        key: {
            "experiment_id": experiment_id,
            "plan_spec": plan_spec,
            "seed": seed,
            "key": key,
            "kwargs": points_kwargs[key],
        }
        for key in pending
    }

    def _accept(key: str, record: PointRecord) -> None:
        record.key = key
        records[key] = record
        stats.parallel_points += 1
        if store is not None:
            store.save_point(record)

    retried = 0
    try:
        outcome = run_supervised(
            tasks,
            entry="fault_point",
            get_pool=lambda: _get_pool(jobs),
            discard_pool=lambda: _discard_pool(jobs),
            config=supervisor,
            on_result=_accept,
            sleep=sleep,
        )
    except KeyboardInterrupt:
        interrupted = True
    else:
        retried = outcome.retries
        for key in pending:
            if key in outcome.results:
                record = records[key]
                if record.attempts != outcome.attempts[key]:
                    # The point needed retries: refresh the durable
                    # record's attempt count (not part of its digest).
                    record.attempts = outcome.attempts[key]
                    if store is not None:
                        store.save_point(record)
            elif key in outcome.errors:
                error = outcome.errors[key]
                record = PointRecord(
                    key=key,
                    status=FAILED,
                    attempts=outcome.attempts[key],
                    error=f"{type(error).__name__}: {error}",
                )
                records[key] = record
                if store is not None:
                    store.save_point(record)
    ordered = {key: records[key] for key in points_kwargs if key in records}
    return ordered, resumed, retried, interrupted


def fault_point_cache_key(
    experiment_id: str,
    plan_spec: str,
    seed: int,
    key: str,
    kwargs: Dict[str, Any],
) -> str:
    """Content address of one fault point's durable record."""
    return cache_key(
        f"faults:{experiment_id}",
        {"plan_spec": plan_spec, "point": key, "kwargs": jsonable(kwargs)},
        seed,
    )


def run_experiment_resilient(
    experiment_id: str,
    plan_spec: str = "none",
    seed: int = 0,
    checkpoint_dir: Optional[str] = None,
    timeout_seconds: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_seconds: float = 0.05,
    max_points: Optional[int] = None,
    fresh: bool = False,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    retry_policy: str = "exponential",
    **overrides: Any,
) -> ResilienceSummary:
    """Run a registered experiment under a fault plan, resiliently.

    The engine behind ``python -m repro faults <experiment-id>``: the
    experiment is decomposed into sweep points (see
    :func:`repro.registry.experiment_points`), each point
    runs under its own deterministic plan instance, finished points are
    checkpointed, and the whole sweep resumes from disk after a crash
    or interrupt.

    ``jobs > 1`` fans the *points* across the exec worker pool (plans
    are per-point deterministic, so results — and their record digests
    — are identical to the serial sweep); ``use_cache`` consults the
    content-addressed result cache before running a point and stores
    fresh completed/degraded records into it.  Both default to the
    ambient :class:`repro.exec.ExecConfig`; ``fresh`` clears the
    checkpoint but never the cache (its key already encodes code and
    configuration).

    ``retry_policy`` names the wait schedule between attempts — one of
    the paper's own backoff shapes (``exponential`` / ``linear`` /
    ``none``, see :func:`repro.exec.supervisor.parse_backoff_spec`) —
    scaled from ``retry_backoff_seconds``.  The default reproduces the
    historical exponential schedule exactly.
    """
    # Fail on a typo'd policy before any point runs or checkpoint binds.
    serial_retry_policy = RetryPolicy.from_spec(
        retry_policy, base_seconds=retry_backoff_seconds
    )
    # Imported lazily: the registry's spec modules import the
    # simulators, which import repro.faults — a module-level import
    # here would cycle.
    from repro.registry import experiment_points

    # Validate the plan spec once, up front: a typo'd injector name
    # should be one usage error, not N failed points plus retries and
    # a checkpoint bound to a broken configuration.
    parse_plan(plan_spec, seed=seed)

    exec_config = get_exec_config()
    jobs = validate_jobs(jobs if jobs is not None else exec_config.jobs)
    use_cache = exec_config.cache if use_cache is None else bool(use_cache)
    cache_dir = cache_dir if cache_dir is not None else exec_config.cache_dir
    cache = ResultCache(cache_dir) if use_cache else None
    stats = get_stats()

    points_kwargs = experiment_points(experiment_id, **overrides)
    stats.points += len(points_kwargs)
    digest = _config_digest(
        {
            "experiment_id": experiment_id,
            "plan_spec": plan_spec,
            "seed": seed,
            "points": {k: v for k, v in points_kwargs.items()},
        }
    )
    store = CheckpointStore(
        checkpoint_dir
        if checkpoint_dir is not None
        else os.path.join("checkpoints", experiment_id)
    )
    if fresh:
        store.clear()
    existing = store.load(digest)
    store.write_meta(
        {
            "experiment_id": experiment_id,
            "plan_spec": plan_spec,
            "seed": seed,
            "config_digest": digest,
            "points": sorted(points_kwargs),
        }
    )

    # Cache pre-pass: a point whose durable record is already in the
    # content-addressed cache (same experiment, plan, kwargs, seed and
    # code) is replayed from it — checkpointed like a fresh result, but
    # never simulated.
    cached_records: Dict[str, PointRecord] = {}
    if cache is not None:
        for key, kwargs in points_kwargs.items():
            prior = existing.get(key)
            if prior is not None and prior.done:
                continue
            ckey = fault_point_cache_key(
                experiment_id, plan_spec, seed, key, kwargs
            )
            payload = cache.get(ckey)
            record = (
                PointRecord.from_dict(payload) if payload is not None else None
            )
            if record is not None and record.done:
                cached_records[key] = record
                stats.cache_hits += 1
                store.save_point(record)
            else:
                stats.cache_misses += 1
    merged = dict(existing)
    merged.update(cached_records)

    if jobs > 1:
        records, resumed, retried, interrupted = _run_fault_points_parallel(
            points_kwargs,
            merged,
            store,
            jobs,
            experiment_id,
            plan_spec,
            seed,
            timeout_seconds=timeout_seconds,
            max_retries=max_retries,
            retry_backoff_seconds=retry_backoff_seconds,
            max_points=max_points,
            retry_policy_spec=retry_policy,
        )
    else:

        def make_point(
            key: str, kwargs: Dict[str, Any]
        ) -> Callable[[], PointRecord]:
            def run_point() -> PointRecord:
                return _execute_fault_point(
                    experiment_id, plan_spec, seed, key, kwargs
                )

            return run_point

        callables = {
            key: make_point(key, kwargs)
            for key, kwargs in points_kwargs.items()
        }
        records, resumed, retried, interrupted = run_resilient_sweep(
            callables,
            store=store,
            existing=merged,
            timeout_seconds=timeout_seconds,
            max_retries=max_retries,
            retry_backoff_seconds=retry_backoff_seconds,
            max_points=max_points,
            retry_policy=serial_retry_policy,
        )

    cache_stores = 0
    if cache is not None:
        for key, record in records.items():
            if key in merged or not record.done:
                continue
            ckey = fault_point_cache_key(
                experiment_id, plan_spec, seed, key, points_kwargs[key]
            )
            cache.put(ckey, record.to_dict())
            cache_stores += 1
        stats.cache_stores += cache_stores

    return ResilienceSummary(
        experiment_id=experiment_id,
        plan_name=plan_spec,
        total_points=len(points_kwargs),
        records=records,
        resumed=resumed - len(cached_records),
        retried=retried,
        interrupted=interrupted,
        checkpoint_dir=store.directory,
        jobs=jobs,
        cache_hits=len(cached_records),
        cache_stores=cache_stores,
    )


def run_plan_resilient(plan) -> ResilienceSummary:
    """Execute a fault-plan :class:`~repro.exec.plan.RunPlan`.

    The RunPlan port of :func:`run_experiment_resilient`: the plan's
    ``fault_plan`` spec, seed, parameter overrides and
    :class:`~repro.exec.plan.FaultOptions` map onto the resilient
    runner's keyword surface, while ``jobs``/``cache`` resolve from the
    ambient exec config the plan installed via
    :meth:`RunPlan.contexts` — exactly how the CLI has always wired
    them, so record digests are pinned unchanged.
    """
    from repro.exec.plan import FaultOptions

    options = plan.faults if plan.faults is not None else FaultOptions()
    return run_experiment_resilient(
        plan.experiment_id,
        plan_spec=plan.fault_plan if plan.fault_plan is not None else "none",
        seed=plan.seed if plan.seed is not None else 0,
        checkpoint_dir=options.checkpoint_dir,
        timeout_seconds=options.timeout_seconds,
        max_retries=options.max_retries,
        retry_backoff_seconds=options.retry_backoff_seconds,
        max_points=options.max_points,
        fresh=options.fresh,
        retry_policy=options.retry_policy,
        **plan.overrides(),
    )


def build_point_plan(
    plan_spec: str, seed: int, experiment_id: str, key: str
) -> FaultPlan:
    """The deterministic per-point plan for (spec, seed, experiment, key)."""
    return parse_plan(
        plan_spec,
        seed=derive_seed(seed, f"faults:{experiment_id}:{key}"),
    )
