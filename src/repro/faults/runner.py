"""Resilient experiment execution: checkpoint/resume, timeouts, retries.

The registry experiments (:mod:`repro.analysis.experiments`) are
decomposed into independent sweep points; each point runs under the
requested fault plan with

- **per-point checkpointing** — every finished point is written to
  ``<checkpoint-dir>/points/<key>.json`` (manifest-style: jsonable
  payload plus a deterministic digest, see :mod:`repro.obs.manifest`),
  so a crashed or interrupted sweep resumes without recomputing
  completed points;
- **a wall-clock timeout** — each attempt is bounded by ``SIGALRM``
  (main thread; elsewhere the timeout degrades to unbounded) and
  cancelled cleanly;
- **bounded retry with exponential backoff** — a failed point is
  retried up to ``max_retries`` times, sleeping
  ``retry_backoff_seconds * 2**attempt`` between attempts, mirroring
  the paper's own retry discipline at the harness level.

Each point gets its *own* plan instance seeded from
``derive_seed(seed, point-key)``, so fault schedules are identical
whether the sweep runs straight through or resumes from a checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.faults.plan import FaultPlan, fault_injection
from repro.faults.spec import parse_plan
from repro.obs.manifest import git_revision, jsonable
from repro.sim.rng import derive_seed

#: Checkpoint schema version; bump when the on-disk layout changes.
CHECKPOINT_VERSION = 1

COMPLETED = "completed"
DEGRADED = "degraded"
FAILED = "failed"


class PointTimeoutError(RuntimeError):
    """A sweep point exceeded its wall-clock budget."""


class CheckpointMismatchError(RuntimeError):
    """The checkpoint on disk was written by a different configuration."""


@contextmanager
def time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Bound the block's wall clock; raises :class:`PointTimeoutError`.

    Uses ``SIGALRM``, so it only engages on the main thread of a
    platform that has it; elsewhere the block runs unbounded (the
    retry/checkpoint machinery still applies).
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise PointTimeoutError(
            f"point exceeded its wall-clock budget of {seconds:g}s"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class PointRecord:
    """The durable outcome of one sweep point."""

    key: str
    status: str
    attempts: int = 1
    wall_time_seconds: float = 0.0
    data: Any = None
    fault_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "version": CHECKPOINT_VERSION,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_seconds": self.wall_time_seconds,
            "data": jsonable(self.data),
            "fault_counts": jsonable(self.fault_counts),
            "error": self.error,
        }
        payload["digest"] = _record_digest(payload)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PointRecord":
        return cls(
            key=payload["key"],
            status=payload["status"],
            attempts=payload.get("attempts", 1),
            wall_time_seconds=payload.get("wall_time_seconds", 0.0),
            data=payload.get("data"),
            fault_counts=payload.get("fault_counts", {}) or {},
            error=payload.get("error"),
        )

    @property
    def done(self) -> bool:
        """True if this point never needs to run again."""
        return self.status in (COMPLETED, DEGRADED)


def _record_digest(payload: Dict[str, Any]) -> str:
    """Integrity digest over the fields that make a record meaningful."""
    deterministic = {
        "key": payload["key"],
        "status": payload["status"],
        "data": payload.get("data"),
        "fault_counts": payload.get("fault_counts", {}),
    }
    blob = json.dumps(deterministic, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _safe_filename(key: str) -> str:
    return "".join(c if c.isalnum() or c in "-._=" else "_" for c in key)


class CheckpointStore:
    """Directory-backed per-point checkpoints for one sweep."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.points_dir = os.path.join(self.directory, "points")
        self.meta_path = os.path.join(self.directory, "checkpoint.json")

    def clear(self) -> None:
        """Delete the checkpoint (start the sweep from scratch)."""
        if os.path.isdir(self.directory):
            shutil.rmtree(self.directory)

    def _ensure_dirs(self) -> None:
        os.makedirs(self.points_dir, exist_ok=True)

    def write_meta(self, meta: Dict[str, Any]) -> None:
        self._ensure_dirs()
        payload = dict(meta)
        payload["version"] = CHECKPOINT_VERSION
        payload["git_rev"] = git_revision()
        with open(self.meta_path, "w", encoding="utf-8") as handle:
            json.dump(jsonable(payload), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def load(self, config_digest: str) -> Dict[str, PointRecord]:
        """Completed/degraded/failed points recorded by a prior run.

        Raises:
            CheckpointMismatchError: the directory holds a checkpoint
                for a different configuration (different experiment,
                plan, seed or point set).  Pass ``fresh=True`` (CLI:
                ``--fresh``) to discard it instead.
        """
        if not os.path.isfile(self.meta_path):
            return {}
        with open(self.meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        recorded = meta.get("config_digest")
        if recorded != config_digest:
            raise CheckpointMismatchError(
                f"checkpoint at {self.directory!r} was written by a different "
                f"configuration (digest {recorded!r} != {config_digest!r}); "
                "rerun with fresh=True / --fresh to discard it"
            )
        records: Dict[str, PointRecord] = {}
        if os.path.isdir(self.points_dir):
            for filename in sorted(os.listdir(self.points_dir)):
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(self.points_dir, filename)
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    if payload.get("digest") != _record_digest(payload):
                        continue  # corrupt or hand-edited: recompute it
                    record = PointRecord.from_dict(payload)
                except (OSError, ValueError, KeyError):
                    continue  # a torn write from a crash: recompute it
                records[record.key] = record
        return records

    def save_point(self, record: PointRecord) -> str:
        self._ensure_dirs()
        path = os.path.join(
            self.points_dir, f"{_safe_filename(record.key)}.json"
        )
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(record.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)  # atomic: a crash never tears a point
        return path


@dataclass
class ResilienceSummary:
    """What happened to a resilient sweep, for reports and exit codes."""

    experiment_id: str
    plan_name: str
    total_points: int
    records: Dict[str, PointRecord] = field(default_factory=dict)
    resumed: int = 0
    retried: int = 0
    interrupted: bool = False
    checkpoint_dir: str = ""

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records.values() if r.status == status)

    @property
    def completed(self) -> int:
        return self._count(COMPLETED)

    @property
    def degraded(self) -> int:
        return self._count(DEGRADED)

    @property
    def failed(self) -> int:
        return self._count(FAILED)

    @property
    def remaining(self) -> int:
        return self.total_points - len(self.records)

    @property
    def ok(self) -> bool:
        """True when nothing failed outright (degraded still counts ok)."""
        return self.failed == 0

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Injected-fault totals aggregated over every point."""
        totals: Dict[str, int] = {}
        for record in self.records.values():
            for kind, count in record.fault_counts.items():
                totals[kind] = totals.get(kind, 0) + count
        return dict(sorted(totals.items()))

    def render(self) -> str:
        lines = [
            f"== resilience summary: {self.experiment_id} "
            f"under plan {self.plan_name!r} ==",
            f"points     : {self.total_points} total, "
            f"{self.resumed} resumed from checkpoint",
            f"completed  : {self.completed}",
            f"degraded   : {self.degraded}",
            f"failed     : {self.failed}",
            f"retries    : {self.retried}",
        ]
        if self.interrupted:
            lines.append(
                f"interrupted: yes ({self.remaining} point(s) left; rerun "
                "to resume)"
            )
        faults = self.fault_counts
        if faults:
            lines.append("injected faults:")
            width = max(len(kind) for kind in faults)
            for kind, count in faults.items():
                lines.append(f"  {kind:<{width}} : {count}")
        else:
            lines.append("injected faults: none")
        for record in self.records.values():
            if record.status == FAILED:
                lines.append(f"  FAILED {record.key}: {record.error}")
        if self.checkpoint_dir:
            lines.append(f"checkpoint : {self.checkpoint_dir}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def run_resilient_sweep(
    points: Mapping[str, Callable[[], PointRecord]],
    store: Optional[CheckpointStore] = None,
    existing: Optional[Dict[str, PointRecord]] = None,
    timeout_seconds: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_seconds: float = 0.05,
    max_points: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> "tuple[Dict[str, PointRecord], int, int, bool]":
    """Run ``points`` resiliently; returns (records, resumed, retried, interrupted).

    Each value in ``points`` is a zero-argument callable returning a
    :class:`PointRecord` (status already classified); exceptions and
    timeouts are caught here and turned into retries, then a FAILED
    record.  ``max_points`` bounds how many *new* points run (the
    crash-simulation hook the CI resume smoke test uses).
    """
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if retry_backoff_seconds < 0:
        raise ValueError("retry_backoff_seconds must be non-negative")
    existing = existing or {}
    records: Dict[str, PointRecord] = {}
    resumed = retried = 0
    ran = 0
    interrupted = False

    for key, point in points.items():
        prior = existing.get(key)
        if prior is not None and prior.done:
            records[key] = prior
            resumed += 1
            continue
        if max_points is not None and ran >= max_points:
            interrupted = True
            break
        ran += 1
        record: Optional[PointRecord] = None
        started = time.perf_counter()
        for attempt in range(max_retries + 1):
            if attempt:
                retried += 1
                sleep(retry_backoff_seconds * (2 ** (attempt - 1)))
            try:
                with time_limit(timeout_seconds):
                    record = point()
                break
            except KeyboardInterrupt:
                interrupted = True
                break
            except Exception as error:  # noqa: BLE001 - resilience boundary
                record = PointRecord(
                    key=key,
                    status=FAILED,
                    attempts=attempt + 1,
                    error=f"{type(error).__name__}: {error}",
                )
        if interrupted and record is None:
            break
        assert record is not None
        record.key = key
        record.attempts = max(record.attempts, 1)
        record.wall_time_seconds = time.perf_counter() - started
        records[key] = record
        if store is not None:
            store.save_point(record)
        if interrupted:
            break
    return records, resumed, retried, interrupted


def _config_digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(jsonable(payload), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_experiment_resilient(
    experiment_id: str,
    plan_spec: str = "none",
    seed: int = 0,
    checkpoint_dir: Optional[str] = None,
    timeout_seconds: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_seconds: float = 0.05,
    max_points: Optional[int] = None,
    fresh: bool = False,
    **overrides: Any,
) -> ResilienceSummary:
    """Run a registered experiment under a fault plan, resiliently.

    The engine behind ``python -m repro faults <experiment-id>``: the
    experiment is decomposed into sweep points (see
    :func:`repro.analysis.experiments.experiment_points`), each point
    runs under its own deterministic plan instance, finished points are
    checkpointed, and the whole sweep resumes from disk after a crash
    or interrupt.
    """
    # Imported lazily: repro.analysis imports the simulators, which
    # import repro.faults — a module-level import here would cycle.
    from repro.analysis.experiments import experiment_points
    from repro.analysis.experiments import run as run_one

    # Validate the plan spec once, up front: a typo'd injector name
    # should be one usage error, not N failed points plus retries and
    # a checkpoint bound to a broken configuration.
    parse_plan(plan_spec, seed=seed)

    points_kwargs = experiment_points(experiment_id, **overrides)
    digest = _config_digest(
        {
            "experiment_id": experiment_id,
            "plan_spec": plan_spec,
            "seed": seed,
            "points": {k: v for k, v in points_kwargs.items()},
        }
    )
    store = CheckpointStore(
        checkpoint_dir
        if checkpoint_dir is not None
        else os.path.join("checkpoints", experiment_id)
    )
    if fresh:
        store.clear()
    existing = store.load(digest)
    store.write_meta(
        {
            "experiment_id": experiment_id,
            "plan_spec": plan_spec,
            "seed": seed,
            "config_digest": digest,
            "points": sorted(points_kwargs),
        }
    )

    def make_point(key: str, kwargs: Dict[str, Any]) -> Callable[[], PointRecord]:
        def run_point() -> PointRecord:
            # A fresh plan per point, seeded by the point key: fault
            # schedules do not depend on which points ran before, so a
            # resumed sweep equals an uninterrupted one.
            plan = build_point_plan(plan_spec, seed, experiment_id, key)
            with fault_injection(plan):
                result = run_one(experiment_id, **kwargs)
            degraded = plan.fault_counts.get("barrier.partial_arrival", 0) > 0
            # Round-trip through JSON so the in-memory record equals what
            # a resumed run loads from disk (e.g. int dict keys -> str).
            data = json.loads(
                json.dumps(
                    jsonable({"title": result.title, "data": result.data}),
                    sort_keys=True,
                    default=str,
                )
            )
            return PointRecord(
                key=key,
                status=DEGRADED if degraded else COMPLETED,
                data=data,
                fault_counts=plan.snapshot(),
            )

        return run_point

    callables = {
        key: make_point(key, kwargs) for key, kwargs in points_kwargs.items()
    }
    records, resumed, retried, interrupted = run_resilient_sweep(
        callables,
        store=store,
        existing=existing,
        timeout_seconds=timeout_seconds,
        max_retries=max_retries,
        retry_backoff_seconds=retry_backoff_seconds,
        max_points=max_points,
    )
    return ResilienceSummary(
        experiment_id=experiment_id,
        plan_name=plan_spec,
        total_points=len(points_kwargs),
        records=records,
        resumed=resumed,
        retried=retried,
        interrupted=interrupted,
        checkpoint_dir=store.directory,
    )


def build_point_plan(
    plan_spec: str, seed: int, experiment_id: str, key: str
) -> FaultPlan:
    """The deterministic per-point plan for (spec, seed, experiment, key)."""
    return parse_plan(
        plan_spec,
        seed=derive_seed(seed, f"faults:{experiment_id}:{key}"),
    )
