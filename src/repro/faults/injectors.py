"""The injector catalog: concrete, seeded fault models.

Each injector is deterministic given its per-episode stream (installed
by :meth:`~repro.faults.plan.FaultPlan.begin_episode`) and composable
with the others inside one :class:`~repro.faults.plan.FaultPlan`.

Catalog (spec names in parentheses, see :mod:`repro.faults.spec`):

- :class:`StragglerInjector` (``stragglers``) — a random subset of
  processors arrive late by heavy-tailed (Pareto) delays, the classic
  straggler model of large-machine barrier studies.
- :class:`ModuleOutageInjector` (``outage``) — a memory module stops
  granting during configured cycle windows (outage) — every denied
  cycle is charged to the requester, per the paper's counting.
- :class:`GrantFaultInjector` (``grants``) — a granted access is
  dropped (the response is lost; the requester must retry) or
  duplicated (an extra access is charged) with configured probability.
- :class:`FlakyFlagInjector` (``flaky``) — a successful flag read
  transiently observes the flag still clear, forcing an extra re-poll.
- :class:`EventJitterInjector` (``jitter``) — events scheduled on the
  discrete-event kernel slip by a few cycles (scheduling noise).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.faults.plan import (
    GRANT_DROP,
    GRANT_DUP,
    GRANT_OK,
    FaultInjector,
)


def _site_matches(pattern: str, site: str) -> bool:
    """True if ``pattern`` selects ``site`` ("*" selects everything)."""
    return pattern == "*" or pattern == site or pattern in site


def _check_probability(value: float, label: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{label} must be in [0, 1], got {value}")
    return float(value)


class StragglerInjector(FaultInjector):
    """Heavy-tailed arrival delays for a random subset of processors.

    Per episode: each processor is a straggler with ``probability``;
    stragglers are delayed by ``scale * Pareto(shape)`` cycles, capped
    at ``cap``.  Small ``shape`` values give the heavy tail (a few
    processors arrive very late) that stresses degraded-mode barriers.
    """

    name = "stragglers"

    def __init__(
        self,
        probability: float = 0.1,
        scale: int = 100,
        shape: float = 1.5,
        cap: int = 100_000,
    ) -> None:
        super().__init__()
        self.probability = _check_probability(probability, "probability")
        if scale < 1:
            raise ValueError("scale must be >= 1")
        if shape <= 0:
            raise ValueError("shape must be > 0")
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.scale = int(scale)
        self.shape = float(shape)
        self.cap = int(cap)
        self._delays: Optional[List[int]] = None

    def reset(self, rng) -> None:
        super().reset(rng)
        self._delays = None

    def _ensure_delays(self, n: int) -> List[int]:
        if self._delays is None or len(self._delays) != n:
            mask = self.rng.random(n) < self.probability
            raw = self.rng.pareto(self.shape, n) * self.scale
            self._delays = [
                int(min(raw[cpu], self.cap)) if mask[cpu] else 0
                for cpu in range(n)
            ]
        return self._delays

    def arrival_delay(self, cpu: int, n: int, time: int) -> int:
        return self._ensure_delays(n)[cpu]

    def __repr__(self) -> str:
        return (
            f"StragglerInjector(probability={self.probability}, "
            f"scale={self.scale}, shape={self.shape}, cap={self.cap})"
        )


class ModuleOutageInjector(FaultInjector):
    """Cycle windows during which a memory module grants nothing.

    ``module`` selects which modules are hit (substring or "*"; the
    barrier simulator exposes ``barrier-variable`` and ``barrier-flag``).
    ``repeats`` windows of ``length`` cycles are placed every ``period``
    cycles starting at ``start``.  Zero-length windows are no-ops.
    """

    name = "outage"

    def __init__(
        self,
        module: str = "*",
        start: int = 0,
        length: int = 0,
        period: int = 0,
        repeats: int = 1,
    ) -> None:
        super().__init__()
        if start < 0:
            raise ValueError("start must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if repeats > 1 and period < 1:
            raise ValueError("period must be >= 1 when repeats > 1")
        self.module = module
        self.start = int(start)
        self.length = int(length)
        self.period = int(period)
        self.repeats = int(repeats)

    def module_windows(self, module: str) -> Sequence[Tuple[int, int]]:
        if self.length == 0 or not _site_matches(self.module, module):
            return ()
        return [
            (
                self.start + index * self.period,
                self.start + index * self.period + self.length,
            )
            for index in range(self.repeats)
        ]

    def __repr__(self) -> str:
        return (
            f"ModuleOutageInjector(module={self.module!r}, start={self.start}, "
            f"length={self.length}, period={self.period}, repeats={self.repeats})"
        )


class GrantFaultInjector(FaultInjector):
    """Dropped or duplicated grants at a matched site.

    Each granted access inside the ``[start, end)`` cycle window is
    dropped with probability ``drop`` or duplicated with probability
    ``dup`` (mutually exclusive per grant; drop is tested first).
    """

    name = "grants"

    def __init__(
        self,
        site: str = "*",
        drop: float = 0.0,
        dup: float = 0.0,
        start: int = 0,
        end: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.site = site
        self.drop = _check_probability(drop, "drop")
        self.dup = _check_probability(dup, "dup")
        if self.drop + self.dup > 1.0:
            raise ValueError("drop + dup must not exceed 1")
        if self.drop >= 1.0:
            raise ValueError(
                "drop must be < 1 (a certain drop would retry forever)"
            )
        if start < 0:
            raise ValueError("start must be non-negative")
        if end is not None and end < start:
            raise ValueError("end must be >= start")
        self.start = int(start)
        self.end = None if end is None else int(end)

    def _in_window(self, time: int) -> bool:
        if time < self.start:
            return False
        return self.end is None or time < self.end

    def grant_outcome(self, site: str, actor: int, time: int) -> str:
        if not _site_matches(self.site, site) or not self._in_window(time):
            return GRANT_OK
        draw = self.rng.random()
        if draw < self.drop:
            return GRANT_DROP
        if draw < self.drop + self.dup:
            return GRANT_DUP
        return GRANT_OK

    def __repr__(self) -> str:
        return (
            f"GrantFaultInjector(site={self.site!r}, drop={self.drop}, "
            f"dup={self.dup}, start={self.start}, end={self.end})"
        )


class FlakyFlagInjector(FaultInjector):
    """Transiently wrong flag reads: a set flag observed as clear.

    Each otherwise-successful read at a matched site inside the window
    is flaky with ``probability``; the reader re-polls (with its normal
    backoff schedule), so a flaky read costs extra accesses and waiting
    time but never wedges the barrier.
    """

    name = "flaky"

    def __init__(
        self,
        probability: float = 0.1,
        site: str = "*",
        start: int = 0,
        end: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.probability = _check_probability(probability, "probability")
        if self.probability >= 1.0:
            raise ValueError(
                "probability must be < 1 (a certain flake would poll forever)"
            )
        if start < 0:
            raise ValueError("start must be non-negative")
        if end is not None and end < start:
            raise ValueError("end must be >= start")
        self.site = site
        self.start = int(start)
        self.end = None if end is None else int(end)

    def flaky_read(self, site: str, actor: int, time: int) -> bool:
        if not _site_matches(self.site, site):
            return False
        if time < self.start or (self.end is not None and time >= self.end):
            return False
        return bool(self.rng.random() < self.probability)

    def __repr__(self) -> str:
        return (
            f"FlakyFlagInjector(probability={self.probability}, "
            f"site={self.site!r}, start={self.start}, end={self.end})"
        )


class EventJitterInjector(FaultInjector):
    """Scheduling jitter on the discrete-event kernel.

    Each scheduled event slips by 1..``max_jitter`` extra cycles with
    ``probability`` — interference noise for the event-driven
    simulators built on :class:`repro.sim.engine.Simulator`.
    """

    name = "jitter"

    def __init__(self, probability: float = 0.05, max_jitter: int = 3) -> None:
        super().__init__()
        self.probability = _check_probability(probability, "probability")
        if max_jitter < 1:
            raise ValueError("max_jitter must be >= 1")
        self.max_jitter = int(max_jitter)

    def event_jitter(self, time: int) -> int:
        if self.rng.random() < self.probability:
            return int(self.rng.integers(1, self.max_jitter + 1))
        return 0

    def __repr__(self) -> str:
        return (
            f"EventJitterInjector(probability={self.probability}, "
            f"max_jitter={self.max_jitter})"
        )
