"""Fault-plan specs: the text grammar behind ``--plan``.

A spec is a ``;``-separated list of injector clauses::

    stragglers:probability=0.2,scale=300;grants:drop=0.02;flaky:probability=0.05

Each clause is ``<injector>[:key=value[,key=value...]]`` where
``<injector>`` is a key of :data:`INJECTOR_FACTORIES` and the keys are
the injector's constructor parameters.  Values parse as int, then
float, then stay strings.  The pseudo-injector ``degrade`` sets the
plan-level degraded-mode knobs instead of adding an injector:
``degrade:polls=4096,timeout=200000``.

:data:`NAMED_PLANS` maps short names to canned specs, so
``python -m repro faults figure5 --plan chaos`` works out of the box.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.faults.injectors import (
    EventJitterInjector,
    FlakyFlagInjector,
    GrantFaultInjector,
    ModuleOutageInjector,
    StragglerInjector,
)
from repro.faults.plan import FaultInjector, FaultPlan

INJECTOR_FACTORIES = {
    "stragglers": StragglerInjector,
    "outage": ModuleOutageInjector,
    "grants": GrantFaultInjector,
    "flaky": FlakyFlagInjector,
    "jitter": EventJitterInjector,
}

#: Canned plan specs by name (``--plan <name>``).
NAMED_PLANS: Dict[str, str] = {
    # The identity plan: installed but injecting nothing (useful to
    # exercise the resilient runner without perturbing results).
    "none": "",
    # A quarter of the processors straggle with Pareto tails.
    "stragglers": "stragglers:probability=0.25,scale=200",
    # The flag module periodically goes dark for 16-cycle windows.
    "hot-module": "outage:module=barrier-flag,start=64,length=16,period=1000,repeats=4",
    # Grants are lost or duplicated network-wide.
    "lossy-net": "grants:drop=0.05,dup=0.02",
    # One flag read in five lies (reads the flag as still clear).
    "flaky-flags": "flaky:probability=0.2",
    # Everything at once, plus a degraded-mode poll budget so barriers
    # report partial arrivals instead of grinding through the noise.
    "chaos": (
        "stragglers:probability=0.2,scale=300;"
        "outage:module=barrier-flag,start=64,length=16,period=1000,repeats=3;"
        "grants:drop=0.02,dup=0.01;"
        "flaky:probability=0.05;"
        "degrade:polls=4096"
    ),
}


def _coerce(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_clause(clause: str) -> Dict[str, Any]:
    injector, _, params_text = clause.partition(":")
    injector = injector.strip()
    params: Dict[str, Any] = {}
    if params_text.strip():
        for pair in params_text.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"malformed parameter {pair!r} in clause {clause!r} "
                    "(expected key=value)"
                )
            params[key.strip()] = _coerce(value.strip())
    return {"injector": injector, "params": params}


def parse_plan(
    spec: str, seed: int = 0, name: Optional[str] = None
) -> FaultPlan:
    """Build a :class:`FaultPlan` from a named plan or a spec string.

    Args:
        spec: a key of :data:`NAMED_PLANS` or a raw spec string (see
            the module docstring for the grammar).
        seed: the plan's root seed.
        name: plan label; defaults to the named-plan key or "custom".

    Raises:
        ValueError: unknown injector, malformed clause, or constructor
            parameters the injector rejects.
    """
    if spec in NAMED_PLANS:
        resolved = NAMED_PLANS[spec]
        plan_name = name if name is not None else spec
    else:
        resolved = spec
        plan_name = name if name is not None else "custom"

    injectors: List[FaultInjector] = []
    poll_budget: Optional[int] = None
    timeout_cycles: Optional[int] = None
    for raw_clause in resolved.split(";"):
        clause = raw_clause.strip()
        if not clause:
            continue
        parsed = _parse_clause(clause)
        kind, params = parsed["injector"], parsed["params"]
        if kind == "degrade":
            unknown = set(params) - {"polls", "timeout"}
            if unknown:
                raise ValueError(
                    f"degrade clause takes polls/timeout, got {sorted(unknown)}"
                )
            poll_budget = params.get("polls", poll_budget)
            timeout_cycles = params.get("timeout", timeout_cycles)
            continue
        try:
            factory = INJECTOR_FACTORIES[kind]
        except KeyError:
            known = ", ".join(sorted(INJECTOR_FACTORIES) + ["degrade"])
            raise ValueError(
                f"unknown injector {kind!r} in plan spec; known: {known}"
            ) from None
        try:
            injectors.append(factory(**params))
        except TypeError as error:
            raise ValueError(
                f"bad parameters for injector {kind!r}: {error}"
            ) from None
    return FaultPlan(
        injectors,
        seed=seed,
        name=plan_name,
        poll_budget=poll_budget,
        timeout_cycles=timeout_cycles,
    )
