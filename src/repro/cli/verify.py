"""``verify``: re-check the paper's headline claims."""

from __future__ import annotations

from repro.cli.common import seed_arg


def add_parser(sub) -> None:
    p = sub.add_parser("verify", help="re-check the paper's headline claims")
    p.add_argument("--repetitions", type=int, default=30)
    p.add_argument("--seed", type=seed_arg, default=0)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    from repro.analysis.claims import verify_report

    report = verify_report(repetitions=args.repetitions, seed=args.seed)
    print(report)
    return 0 if "FAIL" not in report else 1
