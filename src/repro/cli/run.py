"""``run``: one experiment through the RunPlan execute spine.

Prints the same results digest as always — the digest covers the
canonicalized result data alone, never wall time or execution mode, so
any two runs of the same experiment and seed can be compared with one
string equality.
"""

from __future__ import annotations

import sys

from repro.cli.common import (
    add_backend_arg,
    add_exec_args,
    add_param_arg,
    add_supervisor_args,
    plan_from_args,
    render_exec_stats,
    seed_arg,
)


def add_parser(sub) -> None:
    p = sub.add_parser(
        "run",
        help="run one experiment, optionally parallel/cached, and print "
             "its results digest",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=seed_arg, default=None)
    p.add_argument("--quiet", action="store_true",
                   help="print only the run summary, not the report text")
    add_param_arg(p)
    add_exec_args(p)
    add_supervisor_args(p)
    add_backend_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    from repro.exec.plan import execute

    try:
        plan = plan_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    outcome = execute(plan, reset_counters=True)
    if not args.quiet:
        print(outcome.result)
        print()
    print(f"experiment     : {args.id}")
    print(f"wall time      : {outcome.wall_time_seconds:.3f}s")
    if plan.exec_config is not None:
        print(f"execution      : {render_exec_stats(plan.exec_config)}")
    print(f"results digest : {outcome.digest}")
    return 0
