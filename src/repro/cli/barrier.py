"""``barrier``: simulate one barrier configuration."""

from __future__ import annotations

from repro.cli.common import add_backend_arg, build_policy, seed_arg


def add_parser(sub) -> None:
    p = sub.add_parser("barrier", help="simulate one barrier configuration")
    p.add_argument("--n", type=int, default=64, help="processors")
    p.add_argument("--interval-a", type=int, default=1000,
                   help="arrival interval A")
    p.add_argument(
        "--policy",
        choices=("none", "variable", "linear", "exponential"),
        default="exponential",
    )
    p.add_argument("--base", type=int, default=2, help="exponential base")
    p.add_argument("--step", type=int, default=1, help="linear step")
    p.add_argument("--repetitions", type=int, default=100)
    p.add_argument("--seed", type=seed_arg, default=0)
    p.add_argument("--barrier-style", choices=("flat", "tree"),
                   default="flat",
                   help="flat Tang-Yew barrier or a combining tree")
    p.add_argument("--degree", type=int, default=4,
                   help="combining-tree fan-in (with --barrier-style tree)")
    add_backend_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    if args.barrier_style == "tree":
        from repro.barrier.tree import simulate_tree_barrier

        policy = build_policy(args.policy, args.base, args.step)
        aggregate = simulate_tree_barrier(
            args.n, args.interval_a, degree=args.degree, policy=policy,
            repetitions=args.repetitions, seed=args.seed,
        )
        print(
            f"N={args.n} A={args.interval_a} policy={args.policy} "
            f"tree degree={args.degree} (reps={aggregate.repetitions})"
        )
        print(f"  accesses/process : {aggregate.mean_accesses:.2f}")
        print(f"  waiting cycles   : {aggregate.mean_waiting_time:.2f}")
        print(f"  relative sigma   : {aggregate.relative_stddev_accesses:.3f}")
        return 0
    from repro.barrier.simulator import simulate_barrier

    policy = build_policy(args.policy, args.base, args.step)
    aggregate = simulate_barrier(
        args.n, args.interval_a, policy, repetitions=args.repetitions,
        seed=args.seed,
    )
    print(
        f"N={args.n} A={args.interval_a} policy={args.policy} "
        f"(reps={aggregate.repetitions})"
    )
    print(f"  accesses/process : {aggregate.mean_accesses:.2f}")
    print(f"  waiting cycles   : {aggregate.mean_waiting_time:.2f}")
    print(f"  relative sigma   : {aggregate.relative_stddev_accesses:.3f}")
    return 0
