"""``list``: print the experiment catalogue."""

from __future__ import annotations

from repro.analysis.experiments import EXPERIMENTS


def add_parser(sub) -> None:
    sub.add_parser("list", help="list experiment ids").set_defaults(fn=cmd)


def cmd(_args) -> int:
    for experiment_id in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[experiment_id].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{experiment_id:12} {summary}")
    return 0
