"""``chaos``: crash-recovery drills against the serial baseline."""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import (
    add_backend_arg,
    add_param_arg,
    add_supervisor_args,
    experiment_kwargs,
    jobs_arg,
    seed_arg,
)


def add_parser(sub) -> None:
    p = sub.add_parser(
        "chaos",
        help="kill workers and damage durable state mid-sweep, then "
             "assert supervised recovery matches the serial baseline",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument("--seed", type=seed_arg, default=0,
                   help="seeds the victim choice and the fault schedule")
    p.add_argument("--jobs", type=jobs_arg, default=None,
                   help="worker processes for the chaos runs (default: 4)")
    p.add_argument("--kill", type=int, default=1,
                   help="worker kills (SIGKILL) to inject mid-sweep")
    p.add_argument("--hang", type=int, default=0,
                   help="points to hang into their --deadline")
    p.add_argument("--hang-seconds", type=float, default=30.0,
                   help="how long an injected hang sleeps")
    p.add_argument(
        "--corrupt-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help="tear the victim point's cache entry between runs",
    )
    p.add_argument(
        "--truncate-checkpoint", action=argparse.BooleanOptionalAction,
        default=True,
        help="tear the victim point's checkpoint record between runs",
    )
    p.add_argument("--work-dir", default=None,
                   help="directory for the cache + checkpoints "
                        "(default: a temp dir, deleted afterwards)")
    p.add_argument("--keep", action="store_true",
                   help="keep the work dir for post-mortems")
    p.add_argument("--counters", default=None, metavar="PATH",
                   help="also write the recovery counters as JSON to PATH")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    add_param_arg(p)
    add_supervisor_args(p, checkpoint=False)
    add_backend_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    import json
    import os

    from repro.exec.chaos import run_chaos

    overrides = experiment_kwargs(
        args.id, args.repetitions, args.scale, params=args.param
    )
    try:
        report = run_chaos(
            args.id,
            seed=args.seed,
            jobs=args.jobs if args.jobs is not None else 4,
            kill=args.kill,
            hang=args.hang,
            hang_seconds=args.hang_seconds,
            deadline_seconds=args.deadline,
            retries=args.retries if args.retries is not None else 2,
            retry_policy=(
                args.retry_policy
                if args.retry_policy is not None
                else "exponential"
            ),
            corrupt_cache=args.corrupt_cache,
            truncate_checkpoint=args.truncate_checkpoint,
            work_dir=args.work_dir,
            keep=args.keep,
            **overrides,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if args.counters:
        os.makedirs(os.path.dirname(args.counters) or ".", exist_ok=True)
        with open(args.counters, "w", encoding="utf-8") as handle:
            json.dump(report.counters(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"counters  : {args.counters}")
    return 0 if report.ok else 1
