"""``advise``: recommend a backoff policy from an application profile."""

from __future__ import annotations

from repro.cli.common import seed_arg


def add_parser(sub) -> None:
    p = sub.add_parser("advise",
                       help="recommend a backoff policy from a profile")
    p.add_argument("--app", choices=("FFT", "SIMPLE", "WEATHER"),
                   default="SIMPLE")
    p.add_argument("--cpus", type=int, default=64)
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--waiting-weight", type=float, default=0.1)
    p.add_argument("--repetitions", type=int, default=30)
    p.add_argument("--seed", type=seed_arg, default=0)
    p.add_argument("--no-simulate", action="store_true",
                   help="skip the empirical ranking")
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    from repro.core.selection import PolicyAdvisor, SynchronizationProfile
    from repro.trace.apps import build_app
    from repro.trace.scheduler import PostMortemScheduler

    program = build_app(args.app, scale=args.scale)
    trace = PostMortemScheduler(program, args.cpus).run()
    profile = SynchronizationProfile.from_trace(trace)
    advisor = PolicyAdvisor(waiting_weight=args.waiting_weight)
    print(f"profile: N={profile.num_processors}, A~{profile.interval_a:.0f}, "
          f"A/N={profile.spread_ratio:.2f}")
    print(f"analytic   : {advisor.recommend(profile)}")
    if not args.no_simulate:
        recommendation = advisor.select(
            profile, repetitions=args.repetitions, seed=args.seed
        )
        print(f"empirical  : {recommendation}")
    return 0
