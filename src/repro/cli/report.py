"""``report``: run every experiment and write reports to a directory."""

from __future__ import annotations

from repro.analysis.experiments import EXPERIMENTS, run as run_experiment


def add_parser(sub) -> None:
    p = sub.add_parser("report", help="run every experiment, write reports")
    p.add_argument("--output", default="reports", help="output directory")
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    import os

    os.makedirs(args.output, exist_ok=True)
    failures = 0
    for experiment_id in sorted(EXPERIMENTS):
        try:
            result = run_experiment(experiment_id)
        except Exception as error:  # pragma: no cover - defensive
            print(f"{experiment_id:18} FAILED: {error}")
            failures += 1
            continue
        path = os.path.join(args.output, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(str(result) + "\n")
        print(f"{experiment_id:18} -> {path}")
    return 1 if failures else 0
