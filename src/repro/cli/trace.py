"""``trace``: schedule an application and report its sync statistics."""

from __future__ import annotations


def add_parser(sub) -> None:
    p = sub.add_parser("trace", help="schedule an application")
    p.add_argument("--app", choices=("FFT", "SIMPLE", "WEATHER"),
                   default="SIMPLE")
    p.add_argument("--cpus", type=int, default=64)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--barrier-style", choices=("flat", "tree"),
                   default="flat")
    p.add_argument("--degree", type=int, default=4, help="tree fan-in")
    p.add_argument("--save", default=None,
                   help="write trace to this .npz path")
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    from repro.trace.apps import build_app
    from repro.trace.scheduler import PostMortemScheduler

    program = build_app(args.app, scale=args.scale)
    scheduler = PostMortemScheduler(
        program,
        args.cpus,
        barrier_style=args.barrier_style,
        tree_degree=args.degree,
    )
    trace = scheduler.run()
    print(
        f"{args.app} x{args.cpus} (scale {args.scale}, "
        f"{args.barrier_style} barriers):"
    )
    print(f"  references       : {len(trace):,} over {trace.cycles:,} cycles")
    print(f"  sync fraction    : {100 * trace.sync_fraction:.2f}%")
    print(f"  barriers         : {len(trace.barriers)}")
    print(f"  mean A / mean E  : {trace.mean_interval_a():.0f} / "
          f"{trace.mean_interval_e():.0f} cycles")
    if args.save:
        from repro.trace.io import save_trace

        save_trace(trace, args.save)
        print(f"  saved to         : {args.save}")
    return 0
