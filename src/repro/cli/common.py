"""Shared CLI options and validation: the one place flags are defined.

Every subcommand that takes ``--seed`` / ``--jobs`` / ``--cache`` /
``--backend`` / the supervision flags gets them from the helpers here,
so the flag names, help text, and — critically — the *error text* are
identical across the whole CLI: a bad seed prints the same one-line
usage error (and exits 2) whether it was passed to ``run``,
``barrier``, ``faults``, ``check`` or ``scenario``.

The argparse ``type=`` callables delegate to the schema-level
validators (:func:`repro.exec.plan.validate_seed`,
:func:`repro.exec.context.validate_jobs`,
:func:`repro.exec.supervisor.parse_backoff_spec`), so the CLI and the
programmatic :class:`~repro.exec.plan.RunPlan` surface reject exactly
the same values with exactly the same messages.

:func:`plan_from_args` is the bridge from a parsed namespace to a
:class:`~repro.exec.plan.RunPlan` — the CLI's half of the "four
dispatch paths, one spine" refactor.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, Optional

from repro.barrier.backend import BACKENDS
from repro.core.backoff import (
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.exec.context import (
    DEFAULT_CACHE_DIR,
    ExecConfig,
    get_stats,
    jobs_arg,
)
from repro.exec.plan import MAX_SEED, RunPlan, validate_seed
from repro.exec.supervisor import SupervisorConfig, parse_backoff_spec

__all__ = [
    "MAX_SEED",
    "add_backend_arg",
    "add_exec_args",
    "add_param_arg",
    "add_supervisor_args",
    "build_policy",
    "exec_config_from_args",
    "experiment_kwargs",
    "jobs_arg",
    "plan_from_args",
    "render_exec_stats",
    "retry_policy_arg",
    "seed_arg",
    "supervisor_config_from_args",
]


# -- argparse types ------------------------------------------------------


def seed_arg(text: str) -> int:
    """argparse type for ``--seed``: an integer in ``[0, 2**32)``.

    Validating here turns a bad seed into a one-line usage error
    instead of a raw numpy traceback from deep inside a simulator.
    """
    try:
        seed = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be an integer, got {text!r}"
        ) from None
    try:
        return validate_seed(seed)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def retry_policy_arg(text: str) -> str:
    """argparse type for ``--retry-policy``: validate the spec up front."""
    try:
        parse_backoff_spec(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


# -- shared argument groups ----------------------------------------------


def add_param_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "-p", "--param", action="append", default=None, metavar="NAME=VALUE",
        help="set any declared experiment parameter (repeatable; see "
             "'experiment --describe <id>' for names, types and defaults)",
    )


def add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="episode engine for barrier sweeps: 'numpy' is the "
             "vectorized kernel (requires the [fast] extra), 'python' "
             "the reference event loop, 'auto' picks numpy when "
             "available; results are bit-identical (docs/vectorization.md)",
    )


def add_exec_args(p: argparse.ArgumentParser) -> None:
    """The shared execution flags: ``--jobs``, ``--cache``, ``--cache-dir``."""
    p.add_argument(
        "--jobs", type=jobs_arg, default=None,
        help="worker processes for sweep execution (>= 1; default: serial)",
    )
    p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse results from the content-addressed cache and store "
             "fresh ones into it",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def add_supervisor_args(
    p: argparse.ArgumentParser, checkpoint: bool = True
) -> None:
    """The shared supervision flags (see docs/resilience.md)."""
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry a failed or timed-out point up to N times "
             "(default: 0 — fail fast)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock budget; an expired point raises "
             "PointTimeoutError (and is retried under --retries)",
    )
    p.add_argument(
        "--retry-policy", type=retry_policy_arg, default=None,
        metavar="SPEC",
        help="retry-wait schedule: exponential[:base=B], linear[:step=S] "
             "or none — the paper's own backoff shapes (default: "
             "exponential)",
    )
    if checkpoint:
        p.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="write an atomic digest-verified checkpoint per finished "
                 "point into DIR",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="replay compatible points from --checkpoint-dir before "
                 "running the rest",
        )


# -- namespace -> config resolution --------------------------------------


def exec_config_from_args(args) -> Optional[ExecConfig]:
    """An engine-routed ExecConfig, or None when no exec flag was given.

    Any explicit exec flag — even ``--jobs 1`` — routes the run through
    the exec engine, so serial and parallel runs of the same experiment
    produce identical observability output and manifest digests.
    """
    jobs = getattr(args, "jobs", None)
    cache = getattr(args, "cache", None)
    cache_dir = getattr(args, "cache_dir", None)
    if jobs is None and cache is None and cache_dir is None:
        return None
    return ExecConfig(
        jobs=jobs if jobs is not None else 1,
        cache=bool(cache),
        cache_dir=cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
        force_engine=True,
    )


def supervisor_config_from_args(args) -> Optional[SupervisorConfig]:
    """A SupervisorConfig, or None when no supervision flag was given."""
    retries = getattr(args, "retries", None)
    deadline = getattr(args, "deadline", None)
    policy = getattr(args, "retry_policy", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = bool(getattr(args, "resume", False))
    if resume and not checkpoint_dir:
        raise ValueError("--resume requires --checkpoint-dir")
    if (
        retries is None
        and deadline is None
        and policy is None
        and checkpoint_dir is None
    ):
        return None
    return SupervisorConfig(
        retries=retries if retries is not None else 0,
        deadline_seconds=deadline,
        backoff=policy if policy is not None else "exponential",
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )


def experiment_kwargs(
    experiment_id: str, repetitions=None, scale=None, seed=None, params=None
) -> Dict[str, Any]:
    """CLI overrides resolved against the experiment's declared schema.

    The shared flags (``--repetitions`` / ``--scale`` / ``--seed``)
    apply when the spec declares the parameter; ``--param NAME=VALUE``
    entries are parsed by the declared parameter type and reject
    unknown names with the list of valid ones
    (:class:`repro.registry.ParameterError`).
    """
    from repro.registry import ParameterError, get_spec

    spec = get_spec(experiment_id)
    names = set(spec.param_names())
    kwargs: Dict[str, Any] = {}
    for name, value in (
        ("repetitions", repetitions),
        ("scale", scale),
        ("seed", seed),
    ):
        if value is not None and name in names:
            kwargs[name] = value
    for entry in params or ():
        name, sep, text = entry.partition("=")
        if not sep:
            raise ParameterError(
                f"--param expects NAME=VALUE, got {entry!r}"
            )
        kwargs[name] = spec.get_param(name).parse(text)
    return kwargs


def plan_from_args(
    args,
    experiment_id: Optional[str] = None,
    arm_supervision: bool = True,
) -> RunPlan:
    """Build the :class:`RunPlan` a parsed namespace describes.

    Raises ``ValueError`` for flag combinations argparse cannot check
    (``--resume`` without ``--checkpoint-dir``); the caller turns that
    into the usual exit-2 usage error.  With ``arm_supervision`` (the
    ``run``/``profile`` behaviour), a supervision flag alone still
    routes the run through the exec engine, so ``--retries`` takes
    effect without an explicit ``--jobs``.
    """
    config = exec_config_from_args(args)
    supervisor = supervisor_config_from_args(args)
    if arm_supervision and supervisor is not None and config is None:
        # Supervision lives in the exec engine: arm it even without an
        # explicit exec flag, so --retries alone still takes effect.
        config = ExecConfig(force_engine=True)
    if experiment_id is None:
        experiment_id = args.id
    params = experiment_kwargs(
        experiment_id,
        getattr(args, "repetitions", None),
        getattr(args, "scale", None),
        params=getattr(args, "param", None),
    )
    return RunPlan(
        experiment_id=experiment_id,
        params=params,
        seed=getattr(args, "seed", None),
        exec_config=config,
        supervisor=supervisor,
        backend=getattr(args, "backend", None),
    )


# -- presentation helpers ------------------------------------------------


def render_exec_stats(config: ExecConfig) -> str:
    stats = get_stats()
    cache_state = "on" if config.cache else "off"
    line = (
        f"jobs={config.jobs}, cache {cache_state}, "
        f"{stats.cache_hits} hit(s) / {stats.cache_misses} miss(es) / "
        f"{stats.cache_stores} store(s)"
    )
    if stats.shards:
        line += f", {stats.shards} shard(s)"
    recoveries = []
    if stats.points_resumed:
        recoveries.append(f"{stats.points_resumed} resumed")
    if stats.retries:
        recoveries.append(f"{stats.retries} retried")
    if stats.worker_deaths:
        recoveries.append(f"{stats.worker_deaths} worker death(s)")
    if stats.cache_quarantined:
        recoveries.append(f"{stats.cache_quarantined} quarantined")
    if recoveries:
        line += ", " + ", ".join(recoveries)
    return line


def build_policy(name: str, base: int, step: int):
    """A backoff policy from the ``barrier`` subcommand's flag triple."""
    if name == "none":
        return NoBackoff()
    if name == "variable":
        return VariableBackoff()
    if name == "linear":
        return LinearFlagBackoff(step=step)
    if name == "exponential":
        return ExponentialFlagBackoff(base=base)
    raise ValueError(f"unknown policy {name!r}")
