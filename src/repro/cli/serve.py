"""``serve``: the async experiment service (see docs/serving.md)."""

from __future__ import annotations

from repro.cli.common import add_backend_arg, add_exec_args
from repro.exec.context import DEFAULT_CACHE_DIR, jobs_arg


def add_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="run the HTTP experiment service: submit plans/scenarios "
             "as JSON, poll or stream job progress, share one warm "
             "result cache",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8080,
        help="port to bind; 0 picks a free port (default: 8080)",
    )
    add_exec_args(p)
    p.add_argument(
        "--concurrency", type=jobs_arg, default=1, metavar="N",
        help="jobs executed simultaneously (worker threads; default: 1)",
    )
    p.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="supervisor retries per point for served jobs (default: 1)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock budget for served jobs "
             "(default: unbounded)",
    )
    p.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="scratch directory for checkpoints and scenario cells "
             "(default: .repro-serve)",
    )
    add_backend_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    from repro.serve import DEFAULT_WORK_DIR, ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs if args.jobs is not None else 1,
        cache=True if args.cache is None else bool(args.cache),
        cache_dir=(
            args.cache_dir if args.cache_dir is not None else DEFAULT_CACHE_DIR
        ),
        concurrency=args.concurrency,
        retries=args.retries,
        deadline=args.deadline,
        work_dir=args.work_dir if args.work_dir is not None else DEFAULT_WORK_DIR,
        # The service pins the backend per job thread (thread-scoped),
        # so the top-level backend_context in main() — which only
        # covers the main thread — is re-applied here explicitly.
        backend=args.backend,
    )
    return run_server(config)
