"""``faults``: run one experiment resiliently under a fault plan."""

from __future__ import annotations

import sys

from repro.cli.common import (
    add_backend_arg,
    add_exec_args,
    add_param_arg,
    exec_config_from_args,
    experiment_kwargs,
    retry_policy_arg,
    seed_arg,
)


def add_parser(sub) -> None:
    p = sub.add_parser(
        "faults",
        help="run an experiment resiliently under a fault-injection plan",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument(
        "--plan", default="none",
        help="named plan (none, stragglers, hot-module, lossy-net, "
             "flaky-flags, chaos) or a spec string like "
             "'stragglers:probability=0.2;grants:drop=0.05'",
    )
    p.add_argument("--seed", type=seed_arg, default=0,
                   help="root seed for the fault schedules")
    p.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint directory (default: checkpoints/<experiment-id>)",
    )
    p.add_argument("--timeout", "--deadline", dest="timeout",
                   type=float, default=None,
                   help="per-point wall-clock budget in seconds "
                        "(--deadline is the run/profile spelling)")
    p.add_argument("--max-retries", "--retries", dest="max_retries",
                   type=int, default=2,
                   help="retries per failed point "
                        "(--retries is the run/profile spelling)")
    p.add_argument("--retry-backoff", type=float, default=0.05,
                   help="base retry sleep in seconds; the wait shape "
                        "comes from --retry-policy")
    p.add_argument("--retry-policy", type=retry_policy_arg, default=None,
                   metavar="SPEC",
                   help="retry-wait schedule: exponential[:base=B], "
                        "linear[:step=S] or none (default: exponential, "
                        "the historical doubling schedule)")
    p.add_argument(
        "--max-points", type=int, default=None,
        help="stop after running this many new points (simulates a crash; "
             "rerun to resume from the checkpoint)",
    )
    p.add_argument("--fresh", action="store_true",
                   help="discard any existing checkpoint first")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    add_param_arg(p)
    add_exec_args(p)
    add_backend_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    from repro.exec.plan import FaultOptions, RunPlan, execute
    from repro.faults.runner import CheckpointMismatchError

    # The faults subcommand owns its retry/checkpoint flags (they
    # configure the fault runner, not the supervisor), so the plan is
    # assembled here rather than via plan_from_args.
    try:
        plan = RunPlan(
            experiment_id=args.id,
            params=experiment_kwargs(
                args.id, args.repetitions, args.scale, params=args.param
            ),
            seed=args.seed,
            exec_config=exec_config_from_args(args),
            fault_plan=args.plan,
            faults=FaultOptions(
                checkpoint_dir=args.checkpoint_dir,
                timeout_seconds=args.timeout,
                max_retries=args.max_retries,
                retry_backoff_seconds=args.retry_backoff,
                retry_policy=(
                    args.retry_policy
                    if args.retry_policy is not None
                    else "exponential"
                ),
                max_points=args.max_points,
                fresh=args.fresh,
            ),
            backend=args.backend,
        )
        outcome = execute(plan)
    except (ValueError, CheckpointMismatchError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(outcome.summary.render())
    return 0 if outcome.summary.ok else 1
