"""``experiment``: regenerate paper artifacts by id."""

from __future__ import annotations

from repro.analysis.experiments import run as run_experiment
from repro.cli.common import add_param_arg, experiment_kwargs


def add_parser(sub) -> None:
    p = sub.add_parser("experiment", help="run experiments by id")
    p.add_argument("ids", nargs="+", metavar="ID",
                   help="experiment id(s); see 'python -m repro list'")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument(
        "--describe", action="store_true",
        help="print each experiment's parameter schema instead of running",
    )
    add_param_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    if args.describe:
        from repro.registry import get_spec

        for index, experiment_id in enumerate(args.ids):
            if index:
                print()
            print(get_spec(experiment_id).describe())
        return 0
    for experiment_id in args.ids:
        kwargs = experiment_kwargs(
            experiment_id, args.repetitions, args.scale, params=args.param
        )
        print(run_experiment(experiment_id, **kwargs))
        print()
    return 0
