"""``check``: verify the reproduction itself (see docs/testing.md)."""

from __future__ import annotations

import sys

from repro.cli.common import (
    add_backend_arg,
    add_supervisor_args,
    seed_arg,
    supervisor_config_from_args,
)


def add_parser(sub) -> None:
    p = sub.add_parser(
        "check",
        help="verify the reproduction: invariants, differential oracles, "
             "schema-derived fuzzing",
    )
    p.add_argument(
        "--suite", action="append", default=None,
        choices=("invariants", "differential", "fuzz"),
        help="run only this suite (repeatable; default: all three)",
    )
    p.add_argument(
        "--budget", default="default",
        help="effort profile: small, default, large, or an integer "
             "case count",
    )
    p.add_argument("--seed", type=seed_arg, default=0,
                   help="root seed; every randomized case derives from it")
    p.add_argument(
        "--ids", nargs="+", default=None, metavar="ID",
        help="restrict fuzzing (and exec-parity sampling) to these "
             "experiment ids",
    )
    p.add_argument(
        "--output", default="checks",
        help="directory for report.json + manifest.json artifacts",
    )
    add_supervisor_args(p, checkpoint=False)
    add_backend_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    import os
    from contextlib import ExitStack

    from repro.check import run_checks
    from repro.exec.supervisor import supervision

    try:
        supervisor = supervisor_config_from_args(args)
        with ExitStack() as stack:
            if supervisor is not None:
                stack.enter_context(supervision(supervisor))
            report = run_checks(
                suites=args.suite,
                budget=args.budget,
                seed=args.seed,
                ids=args.ids,
                out_dir=args.output,
            )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if args.output:
        print()
        print(f"report   : {os.path.join(args.output, 'report.json')}")
        print(f"manifest : {os.path.join(args.output, 'manifest.json')} "
              f"(digest {report.manifest_digest[:16]}…)")
    return 0 if report.ok else 1
