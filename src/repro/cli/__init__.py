"""Command-line interface: ``python -m repro <command>``.

One module per subcommand, each exposing ``add_parser(sub)`` (which
binds its ``cmd`` via ``set_defaults(fn=...)``); the shared option
groups and validation — seed/jobs/cache/backend/supervision — live in
:mod:`repro.cli.common`, so every subcommand rejects a bad value with
the same schema-aware error text and exit code 2.

Commands:

- ``experiment <id> [...]`` — regenerate paper artifacts by id;
                              ``--describe`` prints each experiment's
                              declared parameter schema, ``--param
                              NAME=VALUE`` sets any declared parameter.
- ``run <id>``              — run one experiment with the execution
                              layer (``--jobs`` worker processes,
                              ``--cache`` content-addressed result
                              reuse) and print a results digest for
                              bit-identity checks (see
                              docs/performance.md).
- ``list``                  — list available experiment ids.
- ``report``                — run every experiment, write reports to a
                              directory.
- ``verify``                — re-check the paper's headline claims and
                              print PASS/FAIL with measured evidence.
- ``barrier``               — simulate one barrier configuration.
- ``trace``                 — schedule an application and report its
                              synchronization statistics (optionally
                              saving the trace to .npz).
- ``advise``                — profile an application and recommend a
                              backoff policy (Section 8's pipeline).
- ``profile``               — run one experiment with tracing enabled;
                              writes manifest.json + events.jsonl + a
                              counter summary (see docs/observability.md).
- ``faults``                — run one experiment resiliently under a
                              fault-injection plan: per-point
                              checkpoint/resume, timeouts, bounded
                              retry, resilience summary (see
                              docs/faults.md).
- ``check``                 — verify the reproduction itself: invariant
                              conservation laws, differential oracles
                              (analytic vs simulated, execution-mode
                              parity, metamorphic relations) and
                              schema-derived fuzzing over every
                              registered experiment (see
                              docs/testing.md).
- ``chaos``                 — kill workers mid-sweep, tear a cache
                              entry and a checkpoint record, then
                              assert supervised recovery reproduces the
                              serial baseline digests bit-for-bit (see
                              docs/resilience.md).
- ``scenario``              — expand a YAML/JSON scenario file into a
                              matrix of runs over the registry, with an
                              aggregate report and baseline diff (see
                              docs/scenarios.md).
- ``serve``                 — run the async HTTP experiment service:
                              JSON plan/scenario submissions validated
                              against the same schemas, job ids, event
                              streams, shared warm cache, dedupe by
                              plan cache key (see docs/serving.md).

``run``/``profile``/``faults``/``check`` also take the supervision
flags ``--retries`` / ``--deadline`` / ``--retry-policy`` (bounded
adaptive-backoff retries and per-point wall-clock budgets), and
``run``/``profile`` take ``--checkpoint-dir`` / ``--resume`` (durable
per-point checkpoints for any registry experiment).

Experiment ids are validated against the registry, not hard-coded into
the parser: an unknown id exits with status 2 and a did-you-mean
suggestion, consistently across ``experiment``/``run``/``profile``/
``faults``/``check``/``scenario``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.barrier.backend import BackendUnavailableError, backend_context
from repro.cli import (
    advise,
    barrier,
    chaos,
    check,
    experiment,
    faults,
    listing,
    profile,
    report,
    run,
    scenario,
    serve,
    trace,
    verify,
)

__all__ = ["build_parser", "main"]

#: Subcommand modules, in ``--help`` display order.
COMMANDS = (
    listing,
    experiment,
    run,
    barrier,
    trace,
    report,
    verify,
    profile,
    faults,
    check,
    chaos,
    scenario,
    serve,
    advise,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Adaptive Backoff Synchronization Techniques — "
                    "reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for module in COMMANDS:
        module.add_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.registry import ParameterError, UnknownExperimentError

    args = build_parser().parse_args(argv)
    try:
        # --backend installs the process default for the whole command;
        # every sweep the command triggers then resolves against it.
        with backend_context(getattr(args, "backend", None)):
            return args.fn(args)
    except BackendUnavailableError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ParameterError, UnknownExperimentError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Release the worker pools without blocking on them (the pool
        # leak fix): a ^C mid-sweep must not strand worker processes.
        from repro.exec.engine import shutdown_pools

        shutdown_pools(wait=False)
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
