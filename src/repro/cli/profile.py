"""``profile``: run one experiment with tracing enabled."""

from __future__ import annotations

import sys

from repro.cli.common import (
    add_backend_arg,
    add_exec_args,
    add_param_arg,
    add_supervisor_args,
    plan_from_args,
)


def add_parser(sub) -> None:
    p = sub.add_parser(
        "profile",
        help="run one experiment with tracing on; write manifest + events",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument(
        "--output", default=None,
        help="output directory (default: profiles/<experiment-id>)",
    )
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument(
        "--ring-size", type=int, default=4096,
        help="in-memory event buffer size (the JSONL file gets everything)",
    )
    p.add_argument(
        "--show-result", action="store_true",
        help="also print the experiment's report text",
    )
    add_param_arg(p)
    add_exec_args(p)
    add_supervisor_args(p)
    add_backend_arg(p)
    p.set_defaults(fn=cmd)


def cmd(args) -> int:
    from repro.obs import profile_experiment

    try:
        plan = plan_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with plan.contexts():
        profile = profile_experiment(
            args.id,
            output_dir=args.output,
            ring_size=args.ring_size,
            **plan.overrides(),
        )
    if args.show_result:
        print(profile.result)
        print()
    print(profile.summary)
    print()
    print(f"manifest : {profile.manifest_path}")
    print(f"events   : {profile.events_path} "
          f"({profile.manifest.events_emitted:,} events)")
    print(f"summary  : {profile.summary_path}")
    print(f"digest   : {profile.manifest.deterministic_digest()}")
    return 0
