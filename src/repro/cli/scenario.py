"""``scenario``: declarative experiment matrices (see docs/scenarios.md)."""

from __future__ import annotations

import sys

from repro.cli.common import add_backend_arg, add_exec_args


def add_parser(sub) -> None:
    p = sub.add_parser(
        "scenario",
        help="expand a scenario file into a matrix of runs, with "
             "aggregate report and baseline diff",
    )
    ssub = p.add_subparsers(dest="scenario_command", required=True)

    r = ssub.add_parser(
        "run", help="run every cell of a scenario matrix"
    )
    r.add_argument("file", metavar="FILE",
                   help="scenario file (.json, or .yaml with PyYAML)")
    r.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the aggregate report JSON here "
             "(default: .repro-scenario/<name>/report.json)",
    )
    r.add_argument(
        "--against", default=None, metavar="BASELINE",
        help="diff the aggregate report against this baseline report; "
             "regressed or changed cells exit 1 (overrides the "
             "scenario file's 'baseline' key)",
    )
    r.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="directory for fault-cell checkpoints "
             "(default: .repro-scenario/<name>)",
    )
    r.add_argument("--quiet", action="store_true",
                   help="skip the per-cell progress lines")
    add_exec_args(r)
    add_backend_arg(r)
    r.set_defaults(fn=cmd, scenario_fn=_cmd_run)

    d = ssub.add_parser(
        "describe",
        help="print a scenario's expansion (cells, params) without running",
    )
    d.add_argument("file", metavar="FILE",
                   help="scenario file (.json, or .yaml with PyYAML)")
    d.set_defaults(fn=cmd, scenario_fn=_cmd_describe)

    f = ssub.add_parser(
        "diff", help="diff two scenario aggregate reports cell by cell"
    )
    f.add_argument("report", metavar="REPORT",
                   help="the new aggregate report JSON")
    f.add_argument("baseline", metavar="BASELINE",
                   help="the baseline aggregate report JSON")
    f.set_defaults(fn=cmd, scenario_fn=_cmd_diff)


def cmd(args) -> int:
    from repro.scenario import ScenarioError

    try:
        return args.scenario_fn(args)
    except (OSError, ScenarioError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_run(args) -> int:
    import os

    from repro.scenario import (
        diff_reports,
        load_report,
        load_scenario,
        render_diff,
        render_summary,
        run_scenario,
        scenario_report,
        write_report,
    )
    from repro.scenario.report import regressions
    from repro.scenario.runner import DEFAULT_WORK_DIR

    spec = load_scenario(args.file)

    def progress(outcome) -> None:
        if not args.quiet:
            print(
                f"[{outcome.cell.index + 1}/{spec.cell_count()}] "
                f"{outcome.status:9} {outcome.cell.cell_id} "
                f"({outcome.wall_time_seconds:.2f}s)"
            )

    run = run_scenario(
        spec,
        jobs=args.jobs,
        cache=args.cache,
        cache_dir=args.cache_dir,
        work_dir=args.work_dir,
        on_cell=progress,
    )
    payload = scenario_report(run)
    output = (
        args.output
        if args.output is not None
        else os.path.join(DEFAULT_WORK_DIR, spec.name, "report.json")
    )
    write_report(payload, output)
    if not args.quiet:
        print()
    print(render_summary(payload))
    print(f"report     : {output}")
    status = 0 if run.ok else 1
    # --against overrides the scenario file's baseline; --against ""
    # disables the diff (useful when regenerating the baseline itself).
    baseline_path = (
        spec.baseline if args.against is None else (args.against or None)
    )
    if baseline_path:
        try:
            baseline = load_report(baseline_path)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        diff = diff_reports(payload, baseline)
        print()
        print(f"baseline   : {baseline_path}")
        print(render_diff(diff))
        if regressions(diff):
            status = 1
    return status


def _cmd_describe(args) -> int:
    from repro.scenario import expand, load_scenario

    spec = load_scenario(args.file)
    print(f"scenario   : {spec.name}")
    if spec.description:
        print(f"description: {spec.description}")
    if spec.baseline:
        print(f"baseline   : {spec.baseline}")
    cells = expand(spec)
    print(f"cells      : {len(cells)} across {len(spec.blocks)} block(s)")
    for cell in cells:
        plan = cell.plan
        details = []
        if plan.fault_plan is not None:
            details.append(f"plan={plan.fault_plan}")
        if plan.backend is not None:
            details.append(f"backend={plan.backend}")
        suffix = f"  [{', '.join(details)}]" if details else ""
        print(f"  {cell.index:3d}  {cell.cell_id}{suffix}")
    return 0


def _cmd_diff(args) -> int:
    from repro.scenario import diff_reports, load_report, render_diff
    from repro.scenario.report import regressions

    try:
        new = load_report(args.report)
        old = load_report(args.baseline)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"aggregate  : {new['aggregate_digest']}")
    print(f"baseline   : {old['aggregate_digest']}")
    diff = diff_reports(new, old)
    print(render_diff(diff))
    return 1 if regressions(diff) else 0
