"""Coupling barrier traffic into an analytic network model (Section 3).

    "The network traffic rates computed using our barrier scheme might
    also be input into a more complex model of a multistage
    interconnection network such as that proposed by Patel [17] if
    network contention results are desired.  Unfortunately Patel's
    model does not account for hot-spot contention."

This module performs exactly that coupling: take a per-processor
background request rate and a barrier-traffic rate (e.g. from
:mod:`repro.barrier.simulator` amortised over the barrier period, or
from :mod:`repro.barrier.application`), feed the combined rate into the
Patel recurrence, and report the network's acceptance probability — an
optimistic (uniform-traffic) estimate of how much the barrier traffic
degrades everyone's memory bandwidth, and of how much a backoff policy
relieves it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.patel import patel_acceptance_probability


@dataclass(frozen=True)
class CouplingEstimate:
    """Patel-model estimate of network behaviour at one traffic level."""

    num_ports: int
    background_rate: float
    barrier_rate: float

    @property
    def offered_rate(self) -> float:
        """Combined per-processor request rate offered to the network."""
        return min(self.background_rate + self.barrier_rate, 1.0)

    @property
    def acceptance_probability(self) -> float:
        """Probability an offered request is accepted per cycle."""
        return patel_acceptance_probability(self.offered_rate, self.num_ports)

    @property
    def effective_bandwidth(self) -> float:
        """Accepted requests per processor per cycle."""
        return self.offered_rate * self.acceptance_probability

    def slowdown_vs(self, other: "CouplingEstimate") -> float:
        """Relative loss of acceptance probability vs ``other``.

        Positive values mean *this* estimate's network serves a smaller
        fraction of offered requests than ``other``'s.
        """
        if not other.acceptance_probability:
            return 0.0
        return 1.0 - self.acceptance_probability / other.acceptance_probability


def couple_barrier_traffic(
    num_ports: int,
    background_rate: float,
    barrier_accesses_per_process: float,
    barrier_period: float,
) -> CouplingEstimate:
    """Build a :class:`CouplingEstimate` from barrier-simulator outputs.

    Args:
        num_ports: processor/module count (power of two for the Omega
            geometry Patel assumes).
        background_rate: non-synchronization requests per processor per
            cycle (e.g. the Section 7.1 FFT base rate).
        barrier_accesses_per_process: mean accesses per process per
            barrier episode (a BarrierAggregate's ``mean_accesses``).
        barrier_period: cycles between barriers (the paper's A + E).
    """
    if background_rate < 0:
        raise ValueError("background_rate must be non-negative")
    if barrier_accesses_per_process < 0:
        raise ValueError("barrier_accesses_per_process must be non-negative")
    if barrier_period <= 0:
        raise ValueError("barrier_period must be positive")
    barrier_rate = barrier_accesses_per_process / barrier_period
    return CouplingEstimate(
        num_ports=num_ports,
        background_rate=background_rate,
        barrier_rate=barrier_rate,
    )


__all__ = ["CouplingEstimate", "couple_barrier_traffic"]
