"""Hot-spot (tree-saturation) workloads for the multistage network.

Pfister & Norton showed that even a small fraction of traffic aimed at a
single "hot" memory module saturates the tree of switches feeding it and
collapses the bandwidth seen by *all* processors.  The paper motivates
adaptive backoff as a software remedy for exactly this congestion, and
Section 8 proposes applying backoff to network accesses themselves.

:class:`HotspotWorkload` is a closed-loop workload: each of ``P``
processors repeatedly thinks for ``think_time`` cycles, then issues a
request that targets the hot module with probability ``hot_fraction``
and a uniformly random module otherwise.  :func:`hotspot_sweep` runs the
workload across hot fractions and backoff policies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.network.multistage import (
    MultistageNetwork,
    NetworkMessage,
    NetworkRunResult,
    Workload,
)
from repro.network.netbackoff import ImmediateRetry, NetworkBackoffPolicy
from repro.sim.rng import spawn_stream


class HotspotWorkload(Workload):
    """Closed-loop hot-spot traffic for :class:`MultistageNetwork`."""

    def __init__(
        self,
        num_ports: int,
        hot_fraction: float,
        hot_dest: int = 0,
        think_time: int = 4,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if not 0 <= hot_dest < num_ports:
            raise ValueError("hot_dest out of range")
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self.num_ports = num_ports
        self.hot_fraction = hot_fraction
        self.hot_dest = hot_dest
        self.think_time = think_time
        self._rng = spawn_stream(seed, f"hotspot:{num_ports}:{hot_fraction}")

    def _pick_dest(self) -> int:
        if self._rng.random() < self.hot_fraction:
            return self.hot_dest
        return int(self._rng.integers(self.num_ports))

    def initial_messages(self) -> List[NetworkMessage]:
        # Stagger initial issues across the think window so the network
        # does not see an artificial time-zero burst.
        messages = []
        for source in range(self.num_ports):
            issue = int(self._rng.integers(self.think_time + 1))
            messages.append(
                NetworkMessage(source=source, dest=self._pick_dest(), issue_time=issue)
            )
        return messages

    def on_complete(
        self, message: NetworkMessage, time: int
    ) -> Optional[NetworkMessage]:
        return NetworkMessage(
            source=message.source,
            dest=self._pick_dest(),
            issue_time=time + self.think_time,
        )


def hotspot_sweep(
    num_ports: int,
    hot_fractions: Sequence[float],
    policies: Sequence[NetworkBackoffPolicy],
    horizon: int = 20_000,
    hold_time: int = 4,
    think_time: int = 4,
    seed: int = 0,
) -> Dict[str, Dict[float, NetworkRunResult]]:
    """Run the hot-spot workload for every (policy, hot fraction) pair.

    Returns:
        ``{policy_name: {hot_fraction: NetworkRunResult}}``.
    """
    results: Dict[str, Dict[float, NetworkRunResult]] = {}
    for policy in policies:
        per_fraction: Dict[float, NetworkRunResult] = {}
        for fraction in hot_fractions:
            network = MultistageNetwork(
                num_ports=num_ports, hold_time=hold_time, backoff=policy
            )
            workload = HotspotWorkload(
                num_ports=num_ports,
                hot_fraction=fraction,
                think_time=think_time,
                seed=seed,
            )
            per_fraction[fraction] = network.run(workload, horizon)
        results[policy.name] = per_fraction
    return results


def uniform_baseline_throughput(
    num_ports: int,
    horizon: int = 20_000,
    hold_time: int = 4,
    think_time: int = 4,
    seed: int = 0,
) -> float:
    """Throughput with zero hot-spot traffic and immediate retry."""
    network = MultistageNetwork(
        num_ports=num_ports, hold_time=hold_time, backoff=ImmediateRetry()
    )
    workload = HotspotWorkload(
        num_ports=num_ports, hot_fraction=0.0, think_time=think_time, seed=seed
    )
    return network.run(workload, horizon).throughput


__all__ = ["HotspotWorkload", "hotspot_sweep", "uniform_baseline_throughput"]
