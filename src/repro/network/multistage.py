"""Circuit-switched multistage (Omega) network simulator.

Supports the Section 8 extension study: what happens when the *network
controller* backs off after a collision in an unbuffered
circuit-switched network, instead of resubmitting every cycle.

Topology and routing
--------------------

An Omega network with ``P = 2**n`` ports has ``n`` stages of 2x2
switches connected by perfect shuffles.  Destination-tag routing is
used: starting from position ``source``, at stage ``k`` the message
moves to line ``((pos << 1) & (P-1)) | bit_{n-1-k}(dest)``; after ``n``
stages the position equals ``dest``.  Each ``(stage, line)`` pair is a
link resource; a circuit claims all ``n`` links on its path for
``hold_time`` cycles (the round trip).  Two circuits that need the same
link at overlapping times collide; the loser learns the *depth* (number
of stages traversed) of the collision, consults its backoff policy, and
retries.

The simulation is event-driven over attempt times, so idle cycles cost
nothing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import GRANT_DROP, GRANT_DUP, get_fault_plan
from repro.network.netbackoff import (
    CollisionInfo,
    ImmediateRetry,
    NetworkBackoffPolicy,
)
from repro.obs.tracer import get_tracer
from repro.sim.stats import Histogram, RunningStats


@dataclass
class NetworkMessage:
    """One memory request traversing the network."""

    source: int
    dest: int
    issue_time: int
    tries: int = 0
    completed_time: Optional[int] = None
    attempts: int = 0

    @property
    def latency(self) -> Optional[int]:
        if self.completed_time is None:
            return None
        return self.completed_time - self.issue_time


@dataclass
class NetworkRunResult:
    """Aggregate outcome of a multistage-network run."""

    horizon: int
    completed: int = 0
    collisions: int = 0
    attempts: int = 0
    #: Circuit grants lost to fault injection (the message retried).
    dropped_grants: int = 0
    #: Circuit grants duplicated by fault injection (extra attempt charged).
    duplicated_grants: int = 0
    latency: RunningStats = field(default_factory=RunningStats)
    attempts_per_message: RunningStats = field(default_factory=RunningStats)
    collision_depths: Histogram = field(default_factory=Histogram)

    @property
    def throughput(self) -> float:
        """Completed messages per cycle."""
        if self.horizon <= 0:
            return 0.0
        return self.completed / self.horizon

    @property
    def collision_rate(self) -> float:
        """Collisions per attempt."""
        if not self.attempts:
            return 0.0
        return self.collisions / self.attempts


class Workload:
    """Source of messages for :class:`MultistageNetwork`.

    Subclasses implement :meth:`initial_messages` (open-loop traffic
    and/or the first request of each closed-loop processor) and
    optionally :meth:`on_complete` to issue a follow-up request.
    """

    def initial_messages(self) -> List[NetworkMessage]:
        raise NotImplementedError

    def on_complete(
        self, message: NetworkMessage, time: int
    ) -> Optional[NetworkMessage]:
        """Called when ``message`` completes; may return a successor."""
        return None


class MultistageNetwork:
    """A ``P``-port circuit-switched Omega network."""

    def __init__(
        self,
        num_ports: int,
        hold_time: int = 4,
        backoff: Optional[NetworkBackoffPolicy] = None,
    ) -> None:
        if num_ports < 2 or num_ports & (num_ports - 1):
            raise ValueError(f"num_ports must be a power of two >= 2, got {num_ports}")
        if hold_time < 1:
            raise ValueError("hold_time must be >= 1")
        self.num_ports = num_ports
        self.num_stages = num_ports.bit_length() - 1
        self.hold_time = hold_time
        self.backoff = backoff if backoff is not None else ImmediateRetry()
        # busy_until[stage][line]: first cycle the link is free again.
        self._busy_until: List[List[int]] = [
            [0] * num_ports for _ in range(self.num_stages)
        ]
        # Outstanding (issued, not completed) messages per destination:
        # the queue-length signal for feedback backoff.
        self._dest_pending: Dict[int, int] = {}

    def route_lines(self, source: int, dest: int) -> List[Tuple[int, int]]:
        """The (stage, line) resources on the path from source to dest."""
        if not 0 <= source < self.num_ports:
            raise ValueError(f"source {source} out of range")
        if not 0 <= dest < self.num_ports:
            raise ValueError(f"dest {dest} out of range")
        mask = self.num_ports - 1
        pos = source
        lines = []
        for stage in range(self.num_stages):
            dest_bit = (dest >> (self.num_stages - 1 - stage)) & 1
            pos = ((pos << 1) & mask) | dest_bit
            lines.append((stage, pos))
        return lines

    def _attempt(self, message: NetworkMessage, time: int) -> Tuple[bool, int]:
        """Try to claim the full path at ``time``.

        Returns ``(success, depth)`` where depth is the number of stages
        traversed before the collision (== num_stages on success).
        """
        path = self.route_lines(message.source, message.dest)
        for depth, (stage, line) in enumerate(path, start=1):
            if self._busy_until[stage][line] > time:
                return False, depth
        release = time + self.hold_time
        for stage, line in path:
            self._busy_until[stage][line] = release
        return True, self.num_stages

    def run(self, workload: Workload, horizon: int) -> NetworkRunResult:
        """Drive ``workload`` through the network until ``horizon``.

        Messages still in flight at the horizon are abandoned (they count
        toward attempts/collisions but not completions).
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        result = NetworkRunResult(horizon=horizon)
        heap: List[Tuple[int, int, NetworkMessage]] = []
        seq = 0
        tracer = get_tracer()
        trace_on = tracer.enabled
        plan = get_fault_plan()

        def push(message: NetworkMessage, when: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (when, seq, message))
            seq += 1

        for message in workload.initial_messages():
            self._dest_pending[message.dest] = (
                self._dest_pending.get(message.dest, 0) + 1
            )
            push(message, message.issue_time)

        while heap:
            time, __, message = heapq.heappop(heap)
            if time >= horizon:
                break
            message.attempts += 1
            result.attempts += 1
            success, depth = self._attempt(message, time)
            if success and plan is not None:
                outcome = plan.grant_outcome("network.grant", message.source, time)
                if outcome == GRANT_DROP:
                    # The grant (or its acknowledgement) is lost: the
                    # circuit held its links for the round trip but the
                    # requester saw nothing, so it retries afterwards.
                    result.dropped_grants += 1
                    push(message, time + self.hold_time + 1)
                    continue
                if outcome == GRANT_DUP:
                    # A duplicated grant: the duplicate consumed one
                    # extra network attempt's worth of resources.
                    result.duplicated_grants += 1
                    result.attempts += 1
            if success:
                message.completed_time = time + self.hold_time
                self._dest_pending[message.dest] -= 1
                result.completed += 1
                result.latency.add(message.latency)  # type: ignore[arg-type]
                result.attempts_per_message.add(message.attempts)
                successor = workload.on_complete(message, message.completed_time)
                if successor is not None:
                    self._dest_pending[successor.dest] = (
                        self._dest_pending.get(successor.dest, 0) + 1
                    )
                    push(successor, successor.issue_time)
            else:
                message.tries += 1
                result.collisions += 1
                result.collision_depths.add(depth)
                info = CollisionInfo(
                    depth=depth,
                    stages=self.num_stages,
                    tries=message.tries,
                    round_trip=self.hold_time,
                    queue_length=self._dest_pending.get(message.dest, 1) - 1,
                )
                delay = self.backoff.delay(info)
                if delay < 0:
                    raise ValueError(
                        f"backoff policy {self.backoff!r} returned negative delay"
                    )
                if trace_on:
                    tracer.count("network.collisions")
                    tracer.observe("network.hotspot_queue_length", info.queue_length)
                    tracer.observe("network.collision_depth", depth)
                push(message, time + 1 + delay)
        if trace_on:
            tracer.count("network.attempts", result.attempts)
            tracer.count("network.completions", result.completed)
            tracer.emit(
                "network.run",
                ports=self.num_ports,
                policy=self.backoff.name,
                horizon=horizon,
                completed=result.completed,
                collisions=result.collisions,
                attempts=result.attempts,
            )
        return result
