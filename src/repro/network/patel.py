"""Patel-style analytic bandwidth model for multistage networks.

The paper notes that its barrier traffic rates "might also be input into
a more complex model of a multistage interconnection network such as
that proposed by Patel [17] if network contention results are desired",
while cautioning that Patel's model ignores hot-spot contention.  We
implement the classic recurrence for delta networks built from a x b
crossbar switches (Patel, IEEE ToC 1981):

    m_{i+1} = 1 - (1 - m_i / b) ** a

where ``m_i`` is the probability that a given link *into* stage ``i``
carries a request in a cycle, ``m_0`` is the per-processor request rate,
and the network's normalised bandwidth is ``m_n`` (requests accepted per
output per cycle).  For the 2x2 switches of an Omega network,
``a = b = 2``.

The model assumes uniformly distributed destinations and no buffering —
blocked requests are dropped and regenerated, so it is an *upper bound*
under hot-spot traffic, which is exactly why the simulator in
:mod:`repro.network.multistage` exists.
"""

from __future__ import annotations

import math
from typing import List


def patel_stage_rates(
    request_rate: float, num_stages: int, switch_size: int = 2
) -> List[float]:
    """Per-stage link utilisation ``[m_0, m_1, ..., m_n]``.

    Args:
        request_rate: probability a processor issues a request per cycle
            (``m_0``), in [0, 1].
        num_stages: number of switching stages (``log_b P``).
        switch_size: a = b of the a x b crossbar switches.
    """
    if not 0.0 <= request_rate <= 1.0:
        raise ValueError("request_rate must be in [0, 1]")
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if switch_size < 2:
        raise ValueError("switch_size must be >= 2")
    rates = [request_rate]
    m = request_rate
    for __ in range(num_stages):
        m = 1.0 - (1.0 - m / switch_size) ** switch_size
        rates.append(m)
    return rates


def patel_bandwidth(
    request_rate: float, num_ports: int, switch_size: int = 2
) -> float:
    """Normalised bandwidth (accepted requests/port/cycle) of a P-port net."""
    if num_ports < 2 or num_ports & (num_ports - 1):
        raise ValueError(f"num_ports must be a power of two >= 2, got {num_ports}")
    num_stages = int(math.log2(num_ports))
    if switch_size != 2:
        # For b-ary switches the stage count is log_b(P); require exact.
        num_stages = round(math.log(num_ports, switch_size))
        if switch_size**num_stages != num_ports:
            raise ValueError(
                f"num_ports {num_ports} is not a power of switch_size {switch_size}"
            )
    return patel_stage_rates(request_rate, num_stages, switch_size)[-1]


def patel_acceptance_probability(
    request_rate: float, num_ports: int, switch_size: int = 2
) -> float:
    """Probability an issued request is accepted by the network."""
    if request_rate == 0.0:
        return 1.0
    return patel_bandwidth(request_rate, num_ports, switch_size) / request_rate


__all__ = [
    "patel_stage_rates",
    "patel_bandwidth",
    "patel_acceptance_probability",
]
