"""The paper's memory-module contention model (Section 3).

    "We assume that in a network cycle only one processor can access the
    barrier variable or the barrier flag.  If a processor is denied
    access to the variable in a network cycle it repeats the access to
    the variable in the next network cycle."

A naive implementation steps every cycle and replays every denied
attempt.  :class:`MemoryModule` collapses that loop exactly: if a
processor starts requesting at cycle ``t`` and the module is serving
earlier requests until cycle ``g``, the processor was denied in cycles
``t .. g-1`` and granted at ``g`` — it made ``g - t + 1`` network
accesses.  Requests must therefore be presented in non-decreasing
ready-time order (the simulators do this with a global event heap),
which realises earliest-request-first arbitration; for processors that
continuously re-poll, this is equivalent to round-robin service.
"""

from __future__ import annotations

from typing import List, Tuple


class MemoryModule:
    """A memory module that grants exactly one access per network cycle.

    Attributes:
        name: label used in error messages and reports.
        next_free: the first cycle at which the module can grant a new
            access.
        total_accesses: network accesses made against this module,
            *including* denied (retried) cycles, per the paper's counting
            convention.
        total_grants: accesses that actually completed.
        busy_cycles: number of cycles in which the module granted an
            access (utilisation numerator).
        outage_cycles: denied cycles attributable to outage windows
            (fault injection) rather than contention.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.next_free = 0
        self.total_accesses = 0
        self.total_grants = 0
        self.busy_cycles = 0
        self.outage_cycles = 0
        self._last_ready = 0
        self._outages: List[Tuple[int, int]] = []

    def reset(self) -> None:
        """Return the module to its initial idle state (keeps no outages)."""
        self.next_free = 0
        self.total_accesses = 0
        self.total_grants = 0
        self.busy_cycles = 0
        self.outage_cycles = 0
        self._last_ready = 0
        self._outages = []

    # -- fault injection ----------------------------------------------

    def add_outage(self, start: int, end: int) -> None:
        """Declare the half-open cycle window ``[start, end)`` dead.

        During an outage the module grants nothing; a processor whose
        grant would land inside the window keeps retrying (each denied
        cycle is charged as a network access, per the paper's counting)
        and is granted at the first live cycle.  Zero-length windows
        (``end <= start``) are no-ops.
        """
        if start < 0:
            raise ValueError(f"outage start must be non-negative, got {start}")
        if end <= start:
            return
        self._outages.append((int(start), int(end)))
        self._outages.sort()

    @property
    def outages(self) -> Tuple[Tuple[int, int], ...]:
        """The declared outage windows, sorted by start cycle."""
        return tuple(self._outages)

    def _next_live_cycle(self, cycle: int) -> int:
        """The first cycle >= ``cycle`` outside every outage window."""
        for start, end in self._outages:
            if cycle < start:
                break
            if cycle < end:
                cycle = end
        return cycle

    def request(self, ready_time: int) -> Tuple[int, int]:
        """Serve one access that became ready at ``ready_time``.

        Args:
            ready_time: the cycle at which the processor first presents
                the access.  Must be >= every previously presented
                ready time (earliest-request-first arbitration).

        Returns:
            ``(grant_time, accesses)``: the cycle at which the access
            succeeds, and the number of network accesses consumed
            (1 plus the number of denied cycles).
        """
        if ready_time < 0:
            raise ValueError(f"ready_time must be non-negative, got {ready_time}")
        if ready_time < self._last_ready:
            raise ValueError(
                f"module {self.name!r}: requests must arrive in non-decreasing "
                f"ready-time order (got {ready_time} after {self._last_ready})"
            )
        self._last_ready = ready_time
        grant_time = max(ready_time, self.next_free)
        if self._outages:
            live = self._next_live_cycle(grant_time)
            self.outage_cycles += live - grant_time
            grant_time = live
        self.next_free = grant_time + 1
        accesses = grant_time - ready_time + 1
        self.total_accesses += accesses
        self.total_grants += 1
        self.busy_cycles += 1
        return grant_time, accesses

    def peek_grant_time(self, ready_time: int) -> int:
        """The grant time a request at ``ready_time`` would receive now."""
        grant_time = max(ready_time, self.next_free)
        if self._outages:
            grant_time = self._next_live_cycle(grant_time)
        return grant_time

    @property
    def contention_accesses(self) -> int:
        """Accesses wasted on denied cycles."""
        return self.total_accesses - self.total_grants

    def utilisation(self, horizon: int) -> float:
        """Fraction of cycles in [0, horizon) the module spent granting."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_cycles, horizon) / horizon

    def __repr__(self) -> str:
        return (
            f"MemoryModule({self.name!r}, grants={self.total_grants}, "
            f"accesses={self.total_accesses})"
        )
