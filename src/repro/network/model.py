"""The two-module network of Section 3.

    "We also assume that the barrier variable and flag are in different
    memory modules, so simultaneous requests to the two by different
    processors can be satisfied."

The :class:`NetworkModel` owns one :class:`~repro.network.module.MemoryModule`
for the barrier variable and one for the barrier flag, and exposes the
traffic totals the evaluation section reports.  Memory latency is one
network cycle (the paper's "processors can access any memory over the
network in one network cycle"); the latency shows up implicitly in the
grant-time arithmetic, because a granted access occupies exactly one
cycle of its module.
"""

from __future__ import annotations

from repro.network.module import MemoryModule


class NetworkModel:
    """Contention model with separate barrier-variable and flag modules."""

    def __init__(self) -> None:
        self.variable_module = MemoryModule("barrier-variable")
        self.flag_module = MemoryModule("barrier-flag")

    def reset(self) -> None:
        self.variable_module.reset()
        self.flag_module.reset()

    @property
    def total_accesses(self) -> int:
        """All network accesses made against both synchronization modules."""
        return self.variable_module.total_accesses + self.flag_module.total_accesses

    @property
    def total_grants(self) -> int:
        return self.variable_module.total_grants + self.flag_module.total_grants

    @property
    def contention_accesses(self) -> int:
        """Accesses that were denied and retried (pure contention waste)."""
        return (
            self.variable_module.contention_accesses
            + self.flag_module.contention_accesses
        )

    def publish(self, tracer) -> None:
        """Report this network's traffic totals to an obs tracer.

        Emits one ``network.totals`` event and adds the per-module
        access/denied totals to the ``network.*`` counters.  Call once
        per episode, after the simulation that owns the network ends.
        """
        if not tracer.enabled:
            return
        for module in (self.variable_module, self.flag_module):
            tracer.count(f"network.{module.name}.accesses", module.total_accesses)
            tracer.count(f"network.{module.name}.denied", module.contention_accesses)
        tracer.emit(
            "network.totals",
            variable_accesses=self.variable_module.total_accesses,
            flag_accesses=self.flag_module.total_accesses,
            grants=self.total_grants,
            denied=self.contention_accesses,
        )

    def __repr__(self) -> str:
        return (
            f"NetworkModel(variable={self.variable_module!r}, "
            f"flag={self.flag_module!r})"
        )
