"""Network-access backoff strategies (Section 8).

The paper sketches five ways a network controller can pick a backoff
interval after a collision in an unbuffered circuit-switched network:

1. proportional to the network depth the message traversed before
   colliding ("the deeper a message travels, the greater the network
   resource that it ties up");
2. *inversely* proportional to the depth traversed ("the deeper a
   message travels before colliding, the less congested the network is
   expected to be");
3. a constant proportional to the average round-trip time to memory;
4. exponential in the number of previous unsuccessful tries;
5. proportional to the memory-module queue length, using feedback in
   the style of Scott & Sohi.

Each strategy is a :class:`NetworkBackoffPolicy`; the multistage network
simulator (:mod:`repro.network.multistage`) calls
:meth:`NetworkBackoffPolicy.delay` with a :class:`CollisionInfo`
describing the failed attempt and waits the returned number of cycles
before retrying.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CollisionInfo:
    """Everything a backoff policy may condition on after a collision.

    Attributes:
        depth: stages the message traversed before colliding (1-based;
            a collision in the first stage has depth 1).
        stages: total number of stages in the network.
        tries: unsuccessful attempts so far, including this one.
        round_trip: the network's average round-trip time in cycles.
        queue_length: occupancy of the destination module's queue at the
            time of the attempt (0 if the network does not model queues).
    """

    depth: int
    stages: int
    tries: int
    round_trip: int
    queue_length: int = 0


class NetworkBackoffPolicy:
    """Base class: maps a collision to a non-negative retry delay."""

    name = "abstract"

    def delay(self, info: CollisionInfo) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ImmediateRetry(NetworkBackoffPolicy):
    """No backoff: resubmit on the next cycle (the baseline)."""

    name = "immediate"

    def delay(self, info: CollisionInfo) -> int:
        return 0


class DepthProportionalBackoff(NetworkBackoffPolicy):
    """Strategy 1: wait ``factor * depth`` cycles.

    Rationale: a message that collided deep in the network tied up many
    stage resources; delaying it longer relieves the congested path.
    """

    name = "depth-proportional"

    def __init__(self, factor: int = 2) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor

    def delay(self, info: CollisionInfo) -> int:
        return self.factor * info.depth

    def __repr__(self) -> str:
        return f"DepthProportionalBackoff(factor={self.factor})"


class InverseDepthBackoff(NetworkBackoffPolicy):
    """Strategy 2: wait ``factor * (stages - depth + 1)`` cycles.

    Rationale: surviving many stages before colliding suggests a lightly
    loaded network, so retry sooner.
    """

    name = "inverse-depth"

    def __init__(self, factor: int = 2) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor

    def delay(self, info: CollisionInfo) -> int:
        remaining = max(info.stages - info.depth + 1, 1)
        return self.factor * remaining

    def __repr__(self) -> str:
        return f"InverseDepthBackoff(factor={self.factor})"


class ConstantRoundTripBackoff(NetworkBackoffPolicy):
    """Strategy 3: wait a constant multiple of the round-trip time."""

    name = "round-trip"

    def __init__(self, multiple: float = 1.0) -> None:
        if multiple <= 0:
            raise ValueError("multiple must be positive")
        self.multiple = multiple

    def delay(self, info: CollisionInfo) -> int:
        return max(int(self.multiple * info.round_trip), 1)

    def __repr__(self) -> str:
        return f"ConstantRoundTripBackoff(multiple={self.multiple})"


class ExponentialRetryBackoff(NetworkBackoffPolicy):
    """Strategy 4: wait ``base ** tries`` cycles, optionally capped.

    This is the classic Ethernet-style exponential backoff, made
    deterministic per the paper's argument that determinism preserves
    the serialization established by the first contention episode.
    """

    name = "exponential"

    def __init__(self, base: int = 2, cap: int = 4096) -> None:
        if base < 2:
            raise ValueError("base must be >= 2")
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.base = base
        self.cap = cap

    def delay(self, info: CollisionInfo) -> int:
        exponent = min(info.tries, 32)
        return min(self.base**exponent, self.cap)

    def __repr__(self) -> str:
        return f"ExponentialRetryBackoff(base={self.base}, cap={self.cap})"


class QueueFeedbackBackoff(NetworkBackoffPolicy):
    """Strategy 5: wait proportionally to the destination queue length.

    Models the Scott & Sohi feedback scheme: the memory module exports
    its queue occupancy, and processors damp their request rate when the
    queue is long.
    """

    name = "queue-feedback"

    def __init__(self, factor: int = 1) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor

    def delay(self, info: CollisionInfo) -> int:
        return self.factor * info.queue_length

    def __repr__(self) -> str:
        return f"QueueFeedbackBackoff(factor={self.factor})"


ALL_STRATEGIES = (
    ImmediateRetry,
    DepthProportionalBackoff,
    InverseDepthBackoff,
    ConstantRoundTripBackoff,
    ExponentialRetryBackoff,
    QueueFeedbackBackoff,
)
