"""Packet-switched multistage network with finite switch queues.

The paper's motivation rests on Pfister & Norton's hot-spot result:

    "a widely-shared synchronization variable (such as in a barrier
    synchronization) will result in heavy traffic to the same location
    in memory and cause hot-spot contention problems [19] ... only a
    small percentage of all data accesses to the same 'hot' module can
    cause tree saturation in the interconnection network and a
    corresponding severe drop in the effective memory bandwidth."

The circuit-switched simulator (:mod:`repro.network.multistage`) models
collisions; *tree saturation* is a buffered-network phenomenon, so this
module adds a packet-switched Omega network: every switch output port
has a FIFO queue of capacity ``queue_capacity``; a full queue
back-pressures the previous stage; the queues feeding the hot memory
module fill first and the congestion spreads backward in a tree,
throttling processors that never reference the hot module at all.

The Scott & Sohi feedback signal of Section 8 — "the state information
found in the queues at the memory modules" — is available here for
real: a blocked injection consults the destination module's queue
occupancy through its :class:`~repro.network.netbackoff.NetworkBackoffPolicy`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.network.netbackoff import (
    CollisionInfo,
    ImmediateRetry,
    NetworkBackoffPolicy,
)
from repro.sim.rng import spawn_stream
from repro.sim.stats import RunningStats


@dataclass
class _Packet:
    """One request packet in flight."""

    dest: int
    injected_at: int
    path: Tuple[Tuple[int, int], ...]
    hop: int = 0  # index into path of the queue currently holding it

    @property
    def is_hot(self) -> bool:
        return self.dest == 0  # by convention the hot module is port 0


@dataclass
class PacketRunResult:
    """Outcome of one packet-switched network run."""

    horizon: int
    num_ports: int
    delivered_hot: int = 0
    delivered_cold: int = 0
    injected: int = 0
    injection_blocked: int = 0
    latency_hot: RunningStats = field(default_factory=RunningStats)
    latency_cold: RunningStats = field(default_factory=RunningStats)

    @property
    def delivered(self) -> int:
        return self.delivered_hot + self.delivered_cold

    @property
    def cold_throughput(self) -> float:
        """Delivered non-hot packets per port per cycle — the bandwidth
        everyone *else* gets, which tree saturation destroys."""
        if not self.horizon or not self.num_ports:
            return 0.0
        return self.delivered_cold / (self.horizon * self.num_ports)

    @property
    def hot_throughput(self) -> float:
        if not self.horizon:
            return 0.0
        return self.delivered_hot / self.horizon

    @property
    def blocked_fraction(self) -> float:
        attempts = self.injected + self.injection_blocked
        if not attempts:
            return 0.0
        return self.injection_blocked / attempts


class PacketSwitchedNetwork:
    """A buffered Omega network, stepped cycle by cycle.

    Args:
        num_ports: processors/modules (power of two).
        queue_capacity: per-switch-output FIFO depth (Pfister-Norton
            use small values; default 4).
        memory_service: packets a memory module consumes per cycle.
    """

    def __init__(
        self,
        num_ports: int,
        queue_capacity: int = 4,
        memory_service: int = 1,
    ) -> None:
        if num_ports < 2 or num_ports & (num_ports - 1):
            raise ValueError(f"num_ports must be a power of two >= 2, got {num_ports}")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if memory_service < 1:
            raise ValueError("memory_service must be >= 1")
        self.num_ports = num_ports
        self.num_stages = num_ports.bit_length() - 1
        self.queue_capacity = queue_capacity
        self.memory_service = memory_service
        self._queues: Dict[Tuple[int, int], Deque[_Packet]] = {}

    def _queue(self, stage: int, line: int) -> Deque[_Packet]:
        key = (stage, line)
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        return queue

    def route(self, source: int, dest: int) -> Tuple[Tuple[int, int], ...]:
        """Queue sequence (stage, line) from source to dest."""
        mask = self.num_ports - 1
        pos = source
        path = []
        for stage in range(self.num_stages):
            dest_bit = (dest >> (self.num_stages - 1 - stage)) & 1
            pos = ((pos << 1) & mask) | dest_bit
            path.append((stage, pos))
        return tuple(path)

    def dest_queue_length(self, dest: int) -> int:
        """Occupancy of the final-stage queue feeding module ``dest`` —
        the Scott & Sohi feedback signal."""
        return len(self._queue(self.num_stages - 1, dest))

    def run(
        self,
        horizon: int,
        injection_rate: float,
        hot_fraction: float,
        backoff: Optional[NetworkBackoffPolicy] = None,
        proactive: bool = False,
        seed: int = 0,
    ) -> PacketRunResult:
        """Open-loop run: each port injects with ``injection_rate``.

        A processor whose injection is blocked (first-stage queue full)
        consults ``backoff`` for how long to pause before its next
        injection attempt; ``ImmediateRetry`` retries next cycle.

        With ``proactive=True`` the processor consults ``backoff``
        *before* injecting, using the destination module's queue
        occupancy — Section 8's Scott & Sohi throttle: "have the
        processors back off sending requests by some time proportional
        to the length of the queue".  Requests to congested modules are
        postponed instead of being pumped into the saturating tree.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError("injection_rate must be in [0, 1]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        policy = backoff if backoff is not None else ImmediateRetry()
        rng = spawn_stream(seed, f"packet:{self.num_ports}:{hot_fraction}")
        result = PacketRunResult(horizon=horizon, num_ports=self.num_ports)

        # Per-port injection state.
        next_try = [0] * self.num_ports
        blocked_tries = [0] * self.num_ports
        pending: List[Optional[int]] = [None] * self.num_ports  # queued dest

        last_stage = self.num_stages - 1
        for now in range(horizon):
            # 1. Memory modules drain their final-stage queues.
            for line in range(self.num_ports):
                queue = self._queues.get((last_stage, line))
                if not queue:
                    continue
                for __ in range(min(self.memory_service, len(queue))):
                    packet = queue.popleft()
                    latency = now - packet.injected_at + 1
                    if packet.is_hot:
                        result.delivered_hot += 1
                        result.latency_hot.add(latency)
                    else:
                        result.delivered_cold += 1
                        result.latency_cold.add(latency)

            # 2. Forward packets stage by stage, back to front, one
            #    acceptance per queue per cycle (2x2 switch arbitration).
            for stage in range(last_stage - 1, -1, -1):
                accepted: Dict[Tuple[int, int], int] = {}
                for line in range(self.num_ports):
                    queue = self._queues.get((stage, line))
                    if not queue:
                        continue
                    packet = queue[0]
                    next_key = packet.path[packet.hop + 1]
                    target = self._queue(*next_key)
                    if accepted.get(next_key, 0) >= 1:
                        continue
                    if len(target) >= self.queue_capacity:
                        continue
                    queue.popleft()
                    packet.hop += 1
                    target.append(packet)
                    accepted[next_key] = accepted.get(next_key, 0) + 1

            # 3. Injections.
            for port in range(self.num_ports):
                if now < next_try[port]:
                    continue
                dest = pending[port]
                if dest is None:
                    if rng.random() >= injection_rate:
                        continue
                    dest = 0 if rng.random() < hot_fraction else int(
                        rng.integers(self.num_ports)
                    )
                if proactive:
                    occupancy = self.dest_queue_length(dest)
                    if occupancy:
                        info = CollisionInfo(
                            depth=1,
                            stages=self.num_stages,
                            tries=blocked_tries[port],
                            round_trip=2 * self.num_stages,
                            queue_length=occupancy,
                        )
                        delay = policy.delay(info)
                        if delay > 0:
                            pending[port] = dest
                            next_try[port] = now + delay
                            continue
                path = self.route(port, dest)
                entry = self._queue(*path[0])
                if len(entry) < self.queue_capacity:
                    entry.append(_Packet(dest=dest, injected_at=now, path=path))
                    result.injected += 1
                    pending[port] = None
                    blocked_tries[port] = 0
                else:
                    result.injection_blocked += 1
                    pending[port] = dest
                    blocked_tries[port] += 1
                    info = CollisionInfo(
                        depth=1,
                        stages=self.num_stages,
                        tries=blocked_tries[port],
                        round_trip=2 * self.num_stages,
                        queue_length=self.dest_queue_length(dest),
                    )
                    next_try[port] = now + 1 + max(policy.delay(info), 0)
        return result


def tree_saturation_sweep(
    num_ports: int = 64,
    hot_fractions: Sequence[float] = (0.0, 0.01, 0.02, 0.04, 0.08, 0.16),
    injection_rate: float = 0.4,
    horizon: int = 5_000,
    queue_capacity: int = 4,
    backoff: Optional[NetworkBackoffPolicy] = None,
    proactive: bool = False,
    seed: int = 0,
) -> Dict[float, PacketRunResult]:
    """Cold-traffic bandwidth vs hot-spot fraction (the Pfister-Norton curve)."""
    results: Dict[float, PacketRunResult] = {}
    for fraction in hot_fractions:
        network = PacketSwitchedNetwork(
            num_ports=num_ports, queue_capacity=queue_capacity
        )
        results[fraction] = network.run(
            horizon=horizon,
            injection_rate=injection_rate,
            hot_fraction=fraction,
            backoff=backoff,
            proactive=proactive,
            seed=seed,
        )
    return results


__all__ = [
    "PacketSwitchedNetwork",
    "PacketRunResult",
    "tree_saturation_sweep",
]
