"""Interconnection-network substrate.

- :mod:`repro.network.module` — the paper's Section 3 contention model:
  a memory module grants exactly one access per network cycle and a
  denied access is retried (and counted) every cycle.
- :mod:`repro.network.model` — the two-module (barrier variable + flag)
  network used by the barrier simulator.
- :mod:`repro.network.multistage` — a circuit-switched Omega network
  simulator for the Section 8 network-backoff extensions.
- :mod:`repro.network.netbackoff` — the five Section 8 network backoff
  strategies.
- :mod:`repro.network.hotspot` — hot-spot / tree-saturation workloads.
- :mod:`repro.network.patel` — Patel-style analytic bandwidth model.
"""

from repro.network.module import MemoryModule
from repro.network.model import NetworkModel
from repro.network.multistage import (
    MultistageNetwork,
    NetworkMessage,
    NetworkRunResult,
)
from repro.network.netbackoff import (
    ConstantRoundTripBackoff,
    DepthProportionalBackoff,
    ExponentialRetryBackoff,
    ImmediateRetry,
    InverseDepthBackoff,
    NetworkBackoffPolicy,
    QueueFeedbackBackoff,
)
from repro.network.coupling import CouplingEstimate, couple_barrier_traffic
from repro.network.hotspot import HotspotWorkload, hotspot_sweep
from repro.network.packet import (
    PacketRunResult,
    PacketSwitchedNetwork,
    tree_saturation_sweep,
)
from repro.network.patel import patel_bandwidth, patel_stage_rates

__all__ = [
    "MemoryModule",
    "NetworkModel",
    "MultistageNetwork",
    "NetworkMessage",
    "NetworkRunResult",
    "NetworkBackoffPolicy",
    "ImmediateRetry",
    "DepthProportionalBackoff",
    "InverseDepthBackoff",
    "ConstantRoundTripBackoff",
    "ExponentialRetryBackoff",
    "QueueFeedbackBackoff",
    "HotspotWorkload",
    "hotspot_sweep",
    "CouplingEstimate",
    "couple_barrier_traffic",
    "PacketSwitchedNetwork",
    "PacketRunResult",
    "tree_saturation_sweep",
    "patel_bandwidth",
    "patel_stage_rates",
]
