"""repro — Adaptive Backoff Synchronization Techniques, reproduced.

A production-quality reproduction of Agarwal & Cherian, *Adaptive
Backoff Synchronization Techniques* (ISCA 1989): software-only backoff
policies that use synchronization state to reduce the memory traffic of
busy-wait barriers, evaluated on a cycle-exact multiprocessor
simulation substrate.

Quick start::

    from repro import simulate_barrier, NoBackoff, ExponentialFlagBackoff

    baseline = simulate_barrier(64, 1000, NoBackoff())
    backoff = simulate_barrier(64, 1000, ExponentialFlagBackoff(base=2))
    print(backoff.savings_vs(baseline))   # ~0.97 at A=1000, N=64

Packages:

- :mod:`repro.core` — backoff policies, barrier algorithms, locks.
- :mod:`repro.barrier` — the barrier simulator, analytic models,
  sweeps, and the queueing / combining-tree / resource extensions.
- :mod:`repro.network` — memory-module contention model, multistage
  circuit-switched network, network backoff.
- :mod:`repro.memory` — directory-based cache-coherence simulator.
- :mod:`repro.trace` — synthetic SPMD applications and the post-mortem
  trace scheduler.
- :mod:`repro.analysis` — experiment registry regenerating every paper
  table and figure.
- :mod:`repro.obs` — observability: structured tracing, counters,
  per-run manifests and the ``python -m repro profile`` pipeline.
- :mod:`repro.exec` — parallel sweep execution (``--jobs``) and the
  content-addressed result cache (``--cache``), bit-identical to the
  serial path.
"""

from repro.analysis.experiments import EXPERIMENTS, ExperimentResult, run
from repro.barrier.application import ApplicationSimulator, simulate_application
from repro.barrier.arrivals import (
    EmpiricalArrivals,
    FixedArrivals,
    UniformArrivals,
)
from repro.barrier.hardware import hardware_baselines
from repro.barrier.metrics import BarrierAggregate, BarrierRunResult
from repro.barrier.models import (
    expected_span,
    model1_accesses,
    model2_accesses,
    model_prediction,
)
from repro.barrier.queueing import (
    QueueingBarrierSimulator,
    simulate_blocking_barrier,
    simulate_threshold_barrier,
)
from repro.barrier.resource import ResourceSimulator, simulate_resource
from repro.barrier.simulator import BarrierSimulator, simulate_barrier
from repro.barrier.sweep import (
    PAPER_A_VALUES,
    PAPER_N_VALUES,
    sweep_accesses,
    sweep_waiting_time,
)
from repro.barrier.tree import TreeBarrierSimulator, simulate_tree_barrier
from repro.barrier.validation import ValidationResult, validate_uniform_model
from repro.core.backoff import (
    AdaptiveBackoff,
    BackoffPolicy,
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    ProportionalBackoff,
    RandomizedExponentialBackoff,
    ThresholdQueueBackoff,
    VariableBackoff,
    paper_policies,
)
from repro.core.selection import (
    PolicyAdvisor,
    Recommendation,
    SynchronizationProfile,
)
from repro.core.barrier import (
    BlockingBarrier,
    CombiningTreeBarrier,
    SingleVariableBarrier,
    TangYewBarrier,
)
from repro.core.locks import BackoffLock, TestAndSetLock, TestAndTestAndSetLock
from repro.exec import ExecConfig, ExecStats, ResultCache, execution, get_stats
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.obs import (
    NullTracer,
    Tracer,
    get_tracer,
    profile_experiment,
    set_tracer,
    tracing,
)
from repro.trace.apps import build_app
from repro.trace.io import load_trace, save_trace
from repro.trace.scheduler import PostMortemScheduler

__version__ = "1.0.0"

__all__ = [
    # Backoff policies.
    "BackoffPolicy",
    "NoBackoff",
    "VariableBackoff",
    "LinearFlagBackoff",
    "ExponentialFlagBackoff",
    "ThresholdQueueBackoff",
    "ProportionalBackoff",
    "RandomizedExponentialBackoff",
    "AdaptiveBackoff",
    "paper_policies",
    "PolicyAdvisor",
    "Recommendation",
    "SynchronizationProfile",
    # Barrier algorithms.
    "TangYewBarrier",
    "SingleVariableBarrier",
    "CombiningTreeBarrier",
    "BlockingBarrier",
    # Locks.
    "TestAndSetLock",
    "TestAndTestAndSetLock",
    "BackoffLock",
    # Simulation.
    "BarrierSimulator",
    "simulate_barrier",
    "TreeBarrierSimulator",
    "simulate_tree_barrier",
    "QueueingBarrierSimulator",
    "simulate_blocking_barrier",
    "simulate_threshold_barrier",
    "ResourceSimulator",
    "simulate_resource",
    "ApplicationSimulator",
    "simulate_application",
    "UniformArrivals",
    "FixedArrivals",
    "EmpiricalArrivals",
    "BarrierRunResult",
    "BarrierAggregate",
    # Analytic models and baselines.
    "model1_accesses",
    "model2_accesses",
    "model_prediction",
    "expected_span",
    "hardware_baselines",
    # Sweeps.
    "sweep_accesses",
    "sweep_waiting_time",
    "PAPER_N_VALUES",
    "PAPER_A_VALUES",
    # Coherence substrate.
    "CoherenceConfig",
    "CoherenceSimulator",
    # Traces.
    "build_app",
    "PostMortemScheduler",
    "save_trace",
    "load_trace",
    # Validation.
    "ValidationResult",
    "validate_uniform_model",
    # Experiments.
    "EXPERIMENTS",
    "ExperimentResult",
    "run",
    # Observability.
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "profile_experiment",
    # Execution.
    "ExecConfig",
    "ExecStats",
    "ResultCache",
    "execution",
    "get_stats",
    "__version__",
]
