"""The result type every experiment produces.

Lives in its own module so spec modules, the runner, and the
``repro.analysis`` compatibility shim can all import it without
touching the registry machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"
