"""Declarative experiment specs and the registry that holds them.

An :class:`ExperimentSpec` declares everything the repo needs to know
about one paper artifact:

- identity (``id``, ``title``, the paper ``section`` it reproduces,
  and a one-line ``summary``),
- a typed parameter schema (:class:`Param`) with defaults, so the CLI
  can parse values and reject unknown names instead of silently
  dropping them,
- the sweep ``axis`` whose values decompose the experiment into
  independently runnable points (the unit of parallelism, caching and
  fault checkpointing),
- ``run_point``, a callable producing one point's JSON-native payload,
- ``aggregate``, which folds the payload mapping back into the
  :class:`~repro.registry.result.ExperimentResult` the seed runners
  produced — byte-identical text and data.

Spec modules under :mod:`repro.registry.experiments` call
:func:`register` at import time; :func:`load_specs` imports them
lazily so ``import repro`` stays cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.registry.result import ExperimentResult


class ParameterError(ValueError):
    """An unknown or malformed experiment parameter."""


#: Parameter kinds the schema understands: scalars, comma-separated
#: sequences, and ``N:A`` pair lists (the ``determinism`` sweep axis).
PARAM_KINDS = ("int", "float", "str", "ints", "floats", "strs", "pairs")

_SEQUENCE_KINDS = ("ints", "floats", "strs", "pairs")


@dataclass(frozen=True)
class Param:
    """One declared experiment parameter."""

    name: str
    kind: str
    default: Any
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ValueError(
                f"parameter {self.name!r}: unknown kind {self.kind!r}; "
                f"valid kinds: {', '.join(PARAM_KINDS)}"
            )

    def parse(self, text: str) -> Any:
        """Parse a CLI string into this parameter's type."""
        try:
            if self.kind == "int":
                return int(text)
            if self.kind == "float":
                return float(text)
            if self.kind == "str":
                return text
            parts = [part for part in text.split(",") if part]
            if self.kind == "ints":
                return tuple(int(part) for part in parts)
            if self.kind == "floats":
                return tuple(float(part) for part in parts)
            if self.kind == "strs":
                return tuple(parts)
            pairs = []
            for part in parts:
                first, _, second = part.partition(":")
                pairs.append((int(first), int(second)))
            return tuple(pairs)
        except ValueError:
            raise ParameterError(
                f"parameter {self.name!r} expects {self.kind} "
                f"(e.g. {self.example()}), got {text!r}"
            ) from None

    def example(self) -> str:
        """A sample CLI value, for error messages and ``--describe``."""
        return {
            "int": "64",
            "float": "0.5",
            "str": "FFT",
            "ints": "4,8,16",
            "floats": "0.0,0.1",
            "strs": "FFT,SIMPLE",
            "pairs": "16:1000,64:1000",
        }[self.kind]

    def coerce(self, value: Any) -> Any:
        """Normalise an API-supplied value (sequences become tuples)."""
        if self.kind not in _SEQUENCE_KINDS:
            return value
        try:
            items = tuple(value)
        except TypeError:
            raise ParameterError(
                f"parameter {self.name!r} expects a sequence ({self.kind}), "
                f"got {value!r}"
            ) from None
        if self.kind == "pairs":
            return tuple(tuple(item) for item in items)
        return items


#: Key label for each recognised sweep axis, mirroring the historical
#: ``experiment_points`` keys the fault checkpoints are stored under.
AXIS_KEY_FORMATS: Dict[str, Callable[[Any], str]] = {
    "n_values": lambda v: f"N={v}",
    "a_values": lambda v: f"A={v}",
    "cpu_counts": lambda v: f"P={v}",
    "hot_fractions": lambda v: f"hot={v}",
    "apps": lambda v: f"app={v}",
    "points": lambda v: f"N={v[0]},A={v[1]}",
}


@dataclass
class ExperimentSpec:
    """A declaratively registered experiment."""

    id: str
    title: str
    section: str
    summary: str
    params: Tuple[Param, ...]
    run_point: Callable[..., dict]
    aggregate: Callable[[Dict[str, dict], Dict[str, Any]], ExperimentResult]
    axis: Optional[str] = None
    _runner: Optional[Callable[..., ExperimentResult]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        names = [param.name for param in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"experiment {self.id!r}: duplicate parameters")
        if self.axis is not None:
            if self.axis not in names:
                raise ValueError(
                    f"experiment {self.id!r}: axis {self.axis!r} is not a "
                    "declared parameter"
                )
            if self.axis not in AXIS_KEY_FORMATS:
                raise ValueError(
                    f"experiment {self.id!r}: axis {self.axis!r} has no "
                    "point-key format"
                )

    # -- parameter schema ------------------------------------------------

    def param_names(self) -> List[str]:
        return [param.name for param in self.params]

    def get_param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise ParameterError(
            f"experiment {self.id!r} has no parameter {name!r}; "
            f"valid parameters: {', '.join(sorted(self.param_names()))}"
        )

    def resolve(self, overrides: Dict[str, Any]) -> Dict[str, Any]:
        """Defaults merged with ``overrides``; unknown names rejected."""
        resolved = {param.name: param.coerce(param.default)
                    for param in self.params}
        for name, value in overrides.items():
            resolved[name] = self.get_param(name).coerce(value)
        return resolved

    # -- sweep decomposition ---------------------------------------------

    def axis_key(self, value: Any) -> str:
        assert self.axis is not None
        return AXIS_KEY_FORMATS[self.axis](value)

    def points(self, full_params: Dict[str, Any]) -> Dict[str, dict]:
        """Decompose fully resolved params into per-point kwargs.

        Returns an ordered ``{point_key: run_point_kwargs}`` mapping;
        each entry pins the sweep axis to a single value.  Experiments
        with no axis run as one point keyed ``"all"``.
        """
        if self.axis is None:
            return {"all": dict(full_params)}
        values = list(full_params[self.axis])
        if not values:
            raise ValueError(
                f"experiment {self.id!r}: axis {self.axis!r} has no values"
            )
        return {
            self.axis_key(value): {**full_params, self.axis: (value,)}
            for value in values
        }

    def sparse_points(self, overrides: Dict[str, Any]) -> Dict[str, dict]:
        """Decompose into points carrying only the caller's overrides.

        The historical :func:`repro.analysis.experiments.experiment_points`
        contract, preserved because fault checkpoints digest their point
        kwargs: every point's kwargs are ``overrides`` with the sweep
        axis pinned to one value, defaults left implicit.
        """
        base = {
            name: self.get_param(name).coerce(value)
            for name, value in overrides.items()
        }
        if self.axis is None:
            return {"all": base}
        values = base.pop(self.axis, None)
        if values is None:
            values = self.get_param(self.axis).coerce(
                self.get_param(self.axis).default
            )
        values = list(values)
        if not values:
            raise ValueError(
                f"experiment {self.id!r}: axis {self.axis!r} has no values"
            )
        return {
            self.axis_key(value): {**base, self.axis: (value,)}
            for value in values
        }

    # -- presentation ----------------------------------------------------

    def describe(self) -> str:
        """A human-readable schema dump for ``--describe``."""
        lines = [
            f"experiment : {self.id}",
            f"title      : {self.title}",
            f"section    : {self.section}",
            f"summary    : {self.summary}",
            "sweep axis : "
            + (f"{self.axis} (one point per value)"
               if self.axis else "none (single point)"),
            "parameters :",
        ]
        width = max(len(param.name) for param in self.params)
        for param in self.params:
            line = (
                f"  {param.name.ljust(width)}  {param.kind:<7}"
                f" default={param.default!r}"
            )
            if param.doc:
                line += f"  — {param.doc}"
            lines.append(line)
        return "\n".join(lines)

    def runner(self) -> Callable[..., ExperimentResult]:
        """A legacy-style ``run_*`` callable (memoised per spec)."""
        if self._runner is None:
            spec = self

            def run_experiment(**kwargs: Any) -> ExperimentResult:
                from repro.registry.runner import run

                return run(spec.id, **kwargs)

            run_experiment.__name__ = f"run_{self.id}"
            run_experiment.__qualname__ = run_experiment.__name__
            run_experiment.__doc__ = self.summary
            self._runner = run_experiment
        return self._runner


# -- the registry --------------------------------------------------------

_REGISTRY: Dict[str, ExperimentSpec] = {}
_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (spec modules call this on import)."""
    if spec.id in _REGISTRY:
        raise ValueError(f"duplicate experiment id {spec.id!r}")
    _REGISTRY[spec.id] = spec
    return spec


def load_specs() -> None:
    """Import every spec module exactly once (idempotent, reentrant)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    import repro.registry.experiments  # noqa: F401  (registers on import)


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up a spec by id; raises ``KeyError`` listing known ids."""
    load_specs()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def experiment_ids() -> List[str]:
    """Sorted ids of every registered experiment."""
    load_specs()
    return sorted(_REGISTRY)


def all_specs() -> List[ExperimentSpec]:
    """Every registered spec, sorted by id."""
    return [_REGISTRY[experiment_id] for experiment_id in experiment_ids()]
