"""Declarative experiment specs and the registry that holds them.

An :class:`ExperimentSpec` declares everything the repo needs to know
about one paper artifact:

- identity (``id``, ``title``, the paper ``section`` it reproduces,
  and a one-line ``summary``),
- a typed parameter schema (:class:`Param`) with defaults, so the CLI
  can parse values and reject unknown names instead of silently
  dropping them,
- the sweep ``axis`` whose values decompose the experiment into
  independently runnable points (the unit of parallelism, caching and
  fault checkpointing),
- ``run_point``, a callable producing one point's JSON-native payload,
- ``aggregate``, which folds the payload mapping back into the
  :class:`~repro.registry.result.ExperimentResult` the seed runners
  produced — byte-identical text and data.

Spec modules under :mod:`repro.registry.experiments` call
:func:`register` at import time; :func:`load_specs` imports them
lazily so ``import repro`` stays cheap and cycle-free.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.registry.result import ExperimentResult


class ParameterError(ValueError):
    """An unknown or malformed experiment parameter."""


class UnknownExperimentError(KeyError):
    """An experiment id that is not in the registry.

    Subclasses ``KeyError`` so historical ``except KeyError`` callers
    keep working; carries did-you-mean ``suggestions`` so the CLI can
    print one consistent, helpful error across subcommands.
    """

    def __init__(self, experiment_id: str, known: Sequence[str]) -> None:
        self.experiment_id = experiment_id
        self.known = list(known)
        self.suggestions = difflib.get_close_matches(
            experiment_id, self.known, n=3, cutoff=0.5
        )
        message = f"unknown experiment {experiment_id!r}"
        if self.suggestions:
            message += "; did you mean " + " or ".join(
                repr(s) for s in self.suggestions
            ) + "?"
        message += f"; known: {', '.join(self.known)}"
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError wraps its message in quotes; undo that.
        return self.args[0]


#: Parameter kinds the schema understands: scalars, comma-separated
#: sequences, and ``N:A`` pair lists (the ``determinism`` sweep axis).
PARAM_KINDS = ("int", "float", "str", "ints", "floats", "strs", "pairs")

_SEQUENCE_KINDS = ("ints", "floats", "strs", "pairs")

#: Default fuzz domains by parameter *name*.  The registry's parameter
#: vocabulary is deliberately shared across experiments (``seed`` is
#: always a root seed, ``scale`` always a trace-size multiplier), so a
#: name-keyed table gives every experiment a safe, *cheap* domain for
#: schema-derived fuzzing (see repro.check.fuzz) without per-spec
#: boilerplate.  A spec can override any entry via ``Param(fuzz=...)``.
#: Values mirror the miniature configurations the tier-1 tests use.
DEFAULT_FUZZ_DOMAINS: Dict[str, Dict[str, Any]] = {
    "repetitions": {"type": "int", "lo": 1, "hi": 3},
    "seed": {"type": "int", "lo": 0, "hi": 2**32 - 1},
    # Choices (not a float range) so the per-process trace cache is
    # shared across fuzz examples.
    "scale": {"type": "choice", "values": [0.05, 0.1, 0.2]},
    "num_cpus": {"type": "choice", "values": [4, 8, 16]},
    "num_processors": {"type": "int", "lo": 1, "hi": 16},
    "interval_a": {"type": "int", "lo": 0, "hi": 200},
    "cpu_counts": {
        "type": "seq", "min_size": 1, "max_size": 2, "unique": True,
        "element": {"type": "choice", "values": [4, 8, 16]},
    },
    "n_values": {
        "type": "seq", "min_size": 1, "max_size": 3, "unique": True,
        "element": {"type": "int", "lo": 1, "hi": 16},
    },
    "a_values": {
        "type": "seq", "min_size": 1, "max_size": 3, "unique": True,
        "element": {"type": "int", "lo": 0, "hi": 200},
    },
    "points": {
        "type": "pairs", "min_size": 1, "max_size": 2,
        "first": {"type": "int", "lo": 1, "hi": 8},
        "second": {"type": "int", "lo": 0, "hi": 200},
    },
    "hot_fractions": {
        "type": "seq", "min_size": 1, "max_size": 2, "unique": True,
        "element": {"type": "choice", "values": [0.0, 0.05, 0.1, 0.2]},
    },
    "apps": {
        "type": "seq", "min_size": 1, "max_size": 2, "unique": True,
        "element": {"type": "choice", "values": ["FFT", "SIMPLE", "WEATHER"]},
    },
    "app": {"type": "choice", "values": ["FFT", "SIMPLE", "WEATHER"]},
    "pointers": {
        "type": "seq", "min_size": 1, "max_size": 2, "unique": True,
        "element": {"type": "int", "lo": 1, "hi": 8},
    },
    "degrees": {
        "type": "seq", "min_size": 1, "max_size": 2, "unique": True,
        "element": {"type": "int", "lo": 2, "hi": 4},
    },
    "bins": {"type": "int", "lo": 1, "hi": 6},
    "horizon": {"type": "int", "lo": 200, "hi": 1000},
    "num_ports": {"type": "choice", "values": [4, 8, 16]},
    "injection_rate": {"type": "float", "lo": 0.05, "hi": 0.5},
    "hold_time": {"type": "int", "lo": 1, "hi": 8},
    "threshold": {"type": "int", "lo": 16, "hi": 256},
    "overhead": {"type": "int", "lo": 10, "hi": 100},
    "work_interval": {"type": "int", "lo": 50, "hi": 300},
    "rounds": {"type": "int", "lo": 1, "hi": 3},
    "jitter": {"type": "float", "lo": 0.0, "hi": 0.3},
    "barrier_period": {"type": "float", "lo": 500.0, "hi": 2000.0},
    "background_rate": {"type": "float", "lo": 0.0, "hi": 0.5},
    "base": {"type": "int", "lo": 2, "hi": 8},
    "num_pointers": {"type": "int", "lo": 1, "hi": 8},
    # Never "numpy": an explicit numpy request errors when the [fast]
    # extra is missing, and fuzzing must stay runnable without it
    # ("" defers to the ambient default).
    "backend": {"type": "choice", "values": ["", "auto", "python"]},
}


@dataclass(frozen=True)
class Param:
    """One declared experiment parameter.

    ``fuzz`` optionally overrides the parameter's fuzz domain — the
    declarative value space schema-derived fuzzing draws from (see
    :meth:`fuzz_domain`).  It stays plain data (no hypothesis import)
    so the registry remains dependency-free; :mod:`repro.check.fuzz`
    turns domains into strategies.
    """

    name: str
    kind: str
    default: Any
    doc: str = ""
    fuzz: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ValueError(
                f"parameter {self.name!r}: unknown kind {self.kind!r}; "
                f"valid kinds: {', '.join(PARAM_KINDS)}"
            )

    def parse(self, text: str) -> Any:
        """Parse a CLI string into this parameter's type."""
        try:
            if self.kind == "int":
                return int(text)
            if self.kind == "float":
                return float(text)
            if self.kind == "str":
                return text
            parts = [part for part in text.split(",") if part]
            if self.kind == "ints":
                return tuple(int(part) for part in parts)
            if self.kind == "floats":
                return tuple(float(part) for part in parts)
            if self.kind == "strs":
                return tuple(parts)
            pairs = []
            for part in parts:
                first, _, second = part.partition(":")
                pairs.append((int(first), int(second)))
            return tuple(pairs)
        except ValueError:
            raise ParameterError(
                f"parameter {self.name!r} expects {self.kind} "
                f"(e.g. {self.example()}), got {text!r}"
            ) from None

    def example(self) -> str:
        """A sample CLI value, for error messages and ``--describe``."""
        return {
            "int": "64",
            "float": "0.5",
            "str": "FFT",
            "ints": "4,8,16",
            "floats": "0.0,0.1",
            "strs": "FFT,SIMPLE",
            "pairs": "16:1000,64:1000",
        }[self.kind]

    def format(self, value: Any) -> str:
        """Render ``value`` back into the CLI text :meth:`parse` accepts.

        The inverse of :meth:`parse`; lets tooling (the fuzz suite's
        shrunk-failure repro lines) turn any schema value into a
        ``--param NAME=VALUE`` argument.
        """
        if self.kind in ("int", "float", "str"):
            return str(value)
        if self.kind == "pairs":
            return ",".join(f"{int(a)}:{int(b)}" for a, b in value)
        return ",".join(str(item) for item in value)

    def fuzz_domain(self) -> Dict[str, Any]:
        """The declarative fuzz domain for this parameter.

        Resolution order: an explicit ``fuzz=`` override on the Param,
        then the name-keyed :data:`DEFAULT_FUZZ_DOMAINS` table, then a
        constant domain pinning the declared default (so fuzzing a spec
        with a brand-new parameter name is safe-by-default until a
        domain is declared for it).
        """
        if self.fuzz is not None:
            return dict(self.fuzz)
        domain = DEFAULT_FUZZ_DOMAINS.get(self.name)
        if domain is not None:
            return dict(domain)
        if self.kind in _SEQUENCE_KINDS:
            return {"type": "const", "value": self.coerce(self.default)}
        return {"type": "const", "value": self.default}

    def coerce(self, value: Any) -> Any:
        """Normalise an API-supplied value (sequences become tuples)."""
        if self.kind not in _SEQUENCE_KINDS:
            return value
        try:
            items = tuple(value)
        except TypeError:
            raise ParameterError(
                f"parameter {self.name!r} expects a sequence ({self.kind}), "
                f"got {value!r}"
            ) from None
        if self.kind == "pairs":
            return tuple(tuple(item) for item in items)
        return items


#: Key label for each recognised sweep axis, mirroring the historical
#: ``experiment_points`` keys the fault checkpoints are stored under.
AXIS_KEY_FORMATS: Dict[str, Callable[[Any], str]] = {
    "n_values": lambda v: f"N={v}",
    "a_values": lambda v: f"A={v}",
    "cpu_counts": lambda v: f"P={v}",
    "hot_fractions": lambda v: f"hot={v}",
    "apps": lambda v: f"app={v}",
    "points": lambda v: f"N={v[0]},A={v[1]}",
}


@dataclass
class ExperimentSpec:
    """A declaratively registered experiment."""

    id: str
    title: str
    section: str
    summary: str
    params: Tuple[Param, ...]
    run_point: Callable[..., dict]
    aggregate: Callable[[Dict[str, dict], Dict[str, Any]], ExperimentResult]
    axis: Optional[str] = None
    _runner: Optional[Callable[..., ExperimentResult]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        names = [param.name for param in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"experiment {self.id!r}: duplicate parameters")
        if self.axis is not None:
            if self.axis not in names:
                raise ValueError(
                    f"experiment {self.id!r}: axis {self.axis!r} is not a "
                    "declared parameter"
                )
            if self.axis not in AXIS_KEY_FORMATS:
                raise ValueError(
                    f"experiment {self.id!r}: axis {self.axis!r} has no "
                    "point-key format"
                )

    # -- parameter schema ------------------------------------------------

    def param_names(self) -> List[str]:
        return [param.name for param in self.params]

    def get_param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise ParameterError(
            f"experiment {self.id!r} has no parameter {name!r}; "
            f"valid parameters: {', '.join(sorted(self.param_names()))}"
        )

    def resolve(self, overrides: Dict[str, Any]) -> Dict[str, Any]:
        """Defaults merged with ``overrides``; unknown names rejected."""
        resolved = {param.name: param.coerce(param.default)
                    for param in self.params}
        for name, value in overrides.items():
            resolved[name] = self.get_param(name).coerce(value)
        return resolved

    # -- sweep decomposition ---------------------------------------------

    def axis_key(self, value: Any) -> str:
        assert self.axis is not None
        return AXIS_KEY_FORMATS[self.axis](value)

    def points(self, full_params: Dict[str, Any]) -> Dict[str, dict]:
        """Decompose fully resolved params into per-point kwargs.

        Returns an ordered ``{point_key: run_point_kwargs}`` mapping;
        each entry pins the sweep axis to a single value.  Experiments
        with no axis run as one point keyed ``"all"``.
        """
        if self.axis is None:
            return {"all": dict(full_params)}
        values = list(full_params[self.axis])
        if not values:
            raise ValueError(
                f"experiment {self.id!r}: axis {self.axis!r} has no values"
            )
        return {
            self.axis_key(value): {**full_params, self.axis: (value,)}
            for value in values
        }

    def sparse_points(self, overrides: Dict[str, Any]) -> Dict[str, dict]:
        """Decompose into points carrying only the caller's overrides.

        The historical :func:`repro.analysis.experiments.experiment_points`
        contract, preserved because fault checkpoints digest their point
        kwargs: every point's kwargs are ``overrides`` with the sweep
        axis pinned to one value, defaults left implicit.
        """
        base = {
            name: self.get_param(name).coerce(value)
            for name, value in overrides.items()
        }
        if self.axis is None:
            return {"all": base}
        values = base.pop(self.axis, None)
        if values is None:
            values = self.get_param(self.axis).coerce(
                self.get_param(self.axis).default
            )
        values = list(values)
        if not values:
            raise ValueError(
                f"experiment {self.id!r}: axis {self.axis!r} has no values"
            )
        return {
            self.axis_key(value): {**base, self.axis: (value,)}
            for value in values
        }

    # -- presentation ----------------------------------------------------

    def describe(self) -> str:
        """A human-readable schema dump for ``--describe``."""
        lines = [
            f"experiment : {self.id}",
            f"title      : {self.title}",
            f"section    : {self.section}",
            f"summary    : {self.summary}",
            "sweep axis : "
            + (f"{self.axis} (one point per value)"
               if self.axis else "none (single point)"),
            "parameters :",
        ]
        width = max(len(param.name) for param in self.params)
        for param in self.params:
            line = (
                f"  {param.name.ljust(width)}  {param.kind:<7}"
                f" default={param.default!r}"
            )
            if param.doc:
                line += f"  — {param.doc}"
            lines.append(line)
        return "\n".join(lines)

    def runner(self) -> Callable[..., ExperimentResult]:
        """A legacy-style ``run_*`` callable (memoised per spec)."""
        if self._runner is None:
            spec = self

            def run_experiment(**kwargs: Any) -> ExperimentResult:
                from repro.registry.runner import run

                return run(spec.id, **kwargs)

            run_experiment.__name__ = f"run_{self.id}"
            run_experiment.__qualname__ = run_experiment.__name__
            run_experiment.__doc__ = self.summary
            self._runner = run_experiment
        return self._runner


# -- the registry --------------------------------------------------------

_REGISTRY: Dict[str, ExperimentSpec] = {}
_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (spec modules call this on import)."""
    if spec.id in _REGISTRY:
        raise ValueError(f"duplicate experiment id {spec.id!r}")
    _REGISTRY[spec.id] = spec
    return spec


def load_specs() -> None:
    """Import every spec module exactly once (idempotent, reentrant)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    import repro.registry.experiments  # noqa: F401  (registers on import)


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up a spec by id.

    Raises :class:`UnknownExperimentError` (a ``KeyError``) listing the
    known ids and carrying did-you-mean suggestions.
    """
    load_specs()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise UnknownExperimentError(experiment_id, sorted(_REGISTRY)) from None


def experiment_ids() -> List[str]:
    """Sorted ids of every registered experiment."""
    load_specs()
    return sorted(_REGISTRY)


def all_specs() -> List[ExperimentSpec]:
    """Every registered spec, sorted by id."""
    return [_REGISTRY[experiment_id] for experiment_id in experiment_ids()]
