"""Run registered experiments: resolve params, dispatch points, aggregate.

This is the single entry point behind ``python -m repro
experiment/run/profile``, the faults resilient runner, and the
benchmark harness.  Dispatch:

- **Serial** (default, and always when a fault plan is installed,
  because injectors keep process-global state): every point's
  ``run_point`` executes in-process, in spec order, with the caller's
  tracer active — the same events the monolithic seed runners emitted.
- **Engine** (ambient :class:`~repro.exec.context.ExecConfig` active):
  points go through :func:`repro.exec.engine.execute_experiment_points`
  and gain ``--jobs`` fan-out and the content-addressed ``--cache`` for
  free.

Every path JSON-round-trips point payloads (:func:`canonical_payload`),
so a payload computed inline, in a pool worker, or replayed from a warm
cache is the same object by construction and aggregates are
byte-identical across modes.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.exec.cache import canonical_payload
from repro.exec.context import get_exec_config
from repro.faults.plan import get_fault_plan
from repro.obs.tracer import get_tracer
from repro.registry.result import ExperimentResult
from repro.registry.spec import ExperimentSpec, experiment_ids, get_spec


def _dispatch(spec: ExperimentSpec, kwargs: Dict[str, Any]) -> ExperimentResult:
    params = spec.resolve(kwargs)
    points = spec.points(params)
    config = get_exec_config()
    if config.active and get_fault_plan() is None:
        from repro.exec.engine import execute_experiment_points

        seed = int(params.get("seed") or 0)
        payloads = execute_experiment_points(spec.id, points, seed, config)
    else:
        payloads = {
            key: canonical_payload(spec.run_point(**point_kwargs))
            for key, point_kwargs in points.items()
        }
    return spec.aggregate(payloads, params)


def run(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one experiment by id (see :func:`repro.registry.all_specs`)."""
    spec = get_spec(experiment_id)
    tracer = get_tracer()
    if not tracer.enabled:
        return _dispatch(spec, kwargs)
    tracer.emit("experiment.start", experiment=experiment_id, config=kwargs)
    with tracer.timer(f"experiment.{experiment_id}"):
        result = _dispatch(spec, kwargs)
    tracer.count("experiment.runs")
    tracer.emit("experiment.end", experiment=experiment_id, title=result.title)
    return result


def experiment_points(experiment_id: str, **overrides: Any) -> Dict[str, dict]:
    """Decompose an experiment into independently runnable sweep points.

    Returns an ordered mapping ``{point_key: runner_kwargs}`` such that
    running the experiment once per entry covers the same parameter
    space as one full run — the unit of checkpointing for the resilient
    runner (:func:`repro.faults.runner.run_experiment_resilient`).
    Each point carries only the caller's overrides, with the spec's
    sweep axis pinned to a single value (keys like ``"N=64"``);
    experiments with no axis run as one point keyed ``"all"``.
    """
    return get_spec(experiment_id).sparse_points(overrides)


def main(argv: Sequence[str]) -> int:
    if len(argv) < 2:
        print("usage: python -m repro.registry <id> [...]")
        print("experiments:", ", ".join(experiment_ids()))
        return 1
    for experiment_id in argv[1:]:
        print(run(experiment_id))
        print()
    return 0
