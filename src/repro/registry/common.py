"""Shared state and helpers used by several spec modules.

The trace cache is the load-bearing piece: scheduling a 64-cpu
application is the expensive step of every trace-driven experiment, and
several experiments (and several points of one experiment) reuse the
same trace.  The cache is per-process, so pool workers each build their
own — point payloads stay pure data and the cache never crosses a
process boundary.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.trace.apps import build_app
from repro.trace.scheduler import PostMortemScheduler, ScheduledTrace

_TRACE_CACHE: Dict[Tuple[str, int, float], ScheduledTrace] = {}

APP_NAMES = ("FFT", "SIMPLE", "WEATHER")

#: Paper values for cross-reference in reports (Table 1 caption).
PAPER_SYNC_FRACTIONS = {"FFT": 0.2, "SIMPLE": 5.3, "WEATHER": 7.9}

TABLE_POINTERS = (2, 3, 4, 5, 64)


def scheduled_trace(app: str, num_cpus: int, scale: float = 1.0) -> ScheduledTrace:
    """The multiprocessor trace for (app, P, scale), cached per process."""
    key = (app.upper(), num_cpus, scale)
    if key not in _TRACE_CACHE:
        program = build_app(app, scale=scale)
        _TRACE_CACHE[key] = PostMortemScheduler(program, num_cpus).run()
    return _TRACE_CACHE[key]


def coherence_stats(
    app: str,
    num_cpus: int,
    num_pointers: int,
    cache_sync: bool,
    scale: float,
):
    """Run the directory-coherence simulator over a cached trace."""
    trace = scheduled_trace(app, num_cpus, scale)
    simulator = CoherenceSimulator(
        CoherenceConfig(
            num_cpus=num_cpus,
            num_pointers=num_pointers,
            cache_sync=cache_sync,
        )
    )
    return simulator.run(trace)
