"""Spec modules: every paper artifact, one declarative registration each.

Importing this package registers every experiment
(:func:`repro.registry.spec.register` runs at module import).  Grouped
by substrate:

- :mod:`~repro.registry.experiments.coherence` — directory/snoopy
  coherence studies over scheduled traces (Tables 1-2, Figure 1, the
  combining-tree and bus-vs-directory ablations).
- :mod:`~repro.registry.experiments.traces` — trace statistics and
  model validation (Table 3, Figure 3, the FFT traffic case study).
- :mod:`~repro.registry.experiments.barrier` — barrier-simulator
  sweeps (Figures 4-10, hardware baselines, coherent barriers).
- :mod:`~repro.registry.experiments.network` — network contention
  studies (netbackoff, tree saturation, Patel coupling).
- :mod:`~repro.registry.experiments.extensions` — Section 8 and
  ablation extensions (resource, combining, queueing, determinism,
  schedules, application).
- :mod:`~repro.registry.experiments.scale` — the 1024+-processor
  scaling study (flat vs combining-tree vs hierarchical barriers).
"""

from repro.registry.experiments import (  # noqa: F401
    barrier,
    coherence,
    extensions,
    network,
    scale,
    traces,
)
