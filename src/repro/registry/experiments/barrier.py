"""Barrier-simulator experiments: Figures 4-10, hardware, coherent.

Figures 5-10 share one point function (:func:`barrier_sweep_point`):
a single (N, A) slice of the paper-policy sweep carrying every metric
both figure families need.  The accesses figures (5-7) and the
waiting-time figures (8-10) differ only in their aggregate step, which
replaces the two near-identical ``_figure_accesses`` /
``_figure_waiting`` helpers the monolithic runner maintained.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.figures import render_ascii_plot, render_series, savings_column
from repro.analysis.tables import render_table
from repro.barrier.hardware import hardware_baselines
from repro.barrier.models import model1_accesses, model2_accesses
from repro.barrier.simulator import simulate_barrier
from repro.barrier.sweep import PAPER_A_VALUES, PAPER_N_VALUES, sweep
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.registry.result import ExperimentResult
from repro.registry.spec import ExperimentSpec, Param, register
from repro.sim.stats import Series

# -- figure4 -------------------------------------------------------------


def _figure4_point(repetitions, n_values, a_values, seed, backend=""):
    (n,) = n_values
    sim = []
    for interval_a in a_values:
        point = simulate_barrier(
            n, interval_a, NoBackoff(), repetitions=repetitions, seed=seed,
            backend=backend,
        )
        sim.append(point.mean_accesses)
    return {"sim": sim}


def _figure4_aggregate(points, params):
    n_values = params["n_values"]
    series: Dict[str, Series] = {}
    data: Dict[str, Dict[int, float]] = {}
    for a_index, interval_a in enumerate(params["a_values"]):
        sim_curve = Series(label=f"A={interval_a} (Sim)")
        for n in n_values:
            sim_curve.add(n, points[f"N={n}"]["sim"][a_index])
        series[sim_curve.label] = sim_curve
        data[f"sim_A{interval_a}"] = dict(zip(sim_curve.xs, sim_curve.ys))
    model1_curve = Series(label="Model 1 (A<<N)")
    for n in n_values:
        model1_curve.add(n, model1_accesses(n))
    series[model1_curve.label] = model1_curve
    for interval_a in params["a_values"]:
        if interval_a == 0:
            continue
        model_curve = Series(label=f"A={interval_a} (Model 2)")
        for n in n_values:
            model_curve.add(n, model2_accesses(n, interval_a))
        series[model_curve.label] = model_curve
        data[f"model2_A{interval_a}"] = dict(zip(model_curve.xs, model_curve.ys))
    data["model1"] = dict(zip(model1_curve.xs, model1_curve.ys))
    text = render_series(
        series,
        title="Figure 4: model predictions vs simulation (network accesses/process)",
    )
    return ExperimentResult("figure4", "model vs simulation", text, data)


register(
    ExperimentSpec(
        id="figure4",
        title="model vs simulation",
        section="Section 6, Figure 4",
        summary="Figure 4: analytic models vs no-backoff simulation.",
        params=(
            Param("repetitions", "int", 100),
            Param("n_values", "ints", PAPER_N_VALUES),
            Param("a_values", "ints", PAPER_A_VALUES),
            Param("seed", "int", 0),
            Param("backend", "str", "",
                  "episode engine: python|numpy|auto; '' = the ambient "
                  "--backend default"),
        ),
        axis="n_values",
        run_point=_figure4_point,
        aggregate=_figure4_aggregate,
    )
)


# -- figures 5-10: one shared point function ----------------------------


def barrier_sweep_point(
    n: int, interval_a: int, repetitions: int, seed: int, backend: str = ""
) -> List[list]:
    """One (N, A) slice of the paper-policy sweep, every figure metric.

    Returns ``[label, mean_accesses, mean_waiting_time,
    mean_waiting_p95]`` per policy, in :func:`repro.core.backoff
    .paper_policies` order — the shared payload of Figures 5-7
    (accesses) and Figures 8-10 (waiting times).
    """
    results = sweep((n,), interval_a, None, repetitions, seed, backend=backend)
    return [
        [
            label,
            aggregates[0].mean_accesses,
            aggregates[0].mean_waiting_time,
            aggregates[0].mean_waiting_p95,
        ]
        for label, aggregates in results.items()
    ]


def _policy_series(points, n_values, metric_index: int) -> Dict[str, Series]:
    """Rebuild per-policy curves from point payloads, label-major."""
    first = points[f"N={n_values[0]}"]["policies"]
    series: Dict[str, Series] = {}
    for policy_index, entry in enumerate(first):
        curve = Series(label=entry[0])
        for n in n_values:
            curve.add(n, points[f"N={n}"]["policies"][policy_index][metric_index])
        series[entry[0]] = curve
    return series


def _accesses_aggregate(figure_id, interval_a, points, params):
    series = _policy_series(points, params["n_values"], 1)
    baseline = series["Without Backoff"]
    extras = {
        label: savings_column(baseline, curve)
        for label, curve in series.items()
        if label != "Without Backoff"
    }
    text = render_series(
        series,
        title=(
            f"{figure_id}: network accesses per process, A = {interval_a}"
        ),
    )
    savings_series = {
        f"{label} savings %": curve for label, curve in extras.items()
    }
    text += "\n\n" + render_series(savings_series, float_format="%.1f")
    text += "\n\n" + render_ascii_plot(
        series, title="(accesses/process vs N, log2 x-axis)"
    )
    data = {
        label: dict(zip(curve.xs, curve.ys)) for label, curve in series.items()
    }
    return ExperimentResult(
        figure_id.lower().replace(" ", ""),
        f"backoff accesses, A={interval_a}",
        text,
        data,
    )


def _waiting_aggregate(figure_id, interval_a, points, params):
    series = _policy_series(points, params["n_values"], 2)
    tail_curves = _policy_series(points, params["n_values"], 3)
    tails = {
        f"{label} p95": Series(
            label=f"{label} p95", xs=curve.xs, ys=curve.ys
        )
        for label, curve in tail_curves.items()
    }
    text = render_series(
        series,
        title=f"{figure_id}: waiting time per process (cycles), A = {interval_a}",
    )
    text += "\n\n" + render_series(
        tails,
        title="95th-percentile waiting times (overshoot lives in the tail)",
    )
    text += "\n\n" + render_ascii_plot(
        series, title="(waiting cycles vs N, log2 x-axis)"
    )
    data = {
        label: dict(zip(curve.xs, curve.ys)) for label, curve in series.items()
    }
    return ExperimentResult(
        figure_id.lower().replace(" ", ""),
        f"waiting times, A={interval_a}",
        text,
        data,
    )


def _register_sweep_figure(number: int, interval_a: int, family: str) -> None:
    figure_id = f"Figure {number}"

    def run_point(repetitions, n_values, seed, backend=""):
        (n,) = n_values
        return {
            "policies": barrier_sweep_point(
                n, interval_a, repetitions, seed, backend=backend
            )
        }

    if family == "accesses":
        summary = f"Figure {number}: accesses vs N at A = {interval_a}."
        title = f"backoff accesses, A={interval_a}"
        section = "Section 6, Figures 5-7"

        def aggregate(points, params):
            return _accesses_aggregate(figure_id, interval_a, points, params)

    else:
        summary = f"Figure {number}: waiting time vs N at A = {interval_a}."
        title = f"waiting times, A={interval_a}"
        section = "Section 7, Figures 8-10"

        def aggregate(points, params):
            return _waiting_aggregate(figure_id, interval_a, points, params)

    register(
        ExperimentSpec(
            id=figure_id.lower().replace(" ", ""),
            title=title,
            section=section,
            summary=summary,
            params=(
                Param("repetitions", "int", 100),
                Param("n_values", "ints", PAPER_N_VALUES),
                Param("seed", "int", 0),
                Param("backend", "str", "",
                      "episode engine: python|numpy|auto; '' = the ambient "
                      "--backend default"),
            ),
            axis="n_values",
            run_point=run_point,
            aggregate=aggregate,
        )
    )


_register_sweep_figure(5, 0, "accesses")
_register_sweep_figure(6, 100, "accesses")
_register_sweep_figure(7, 1000, "accesses")
_register_sweep_figure(8, 0, "waiting")
_register_sweep_figure(9, 100, "waiting")
_register_sweep_figure(10, 1000, "waiting")


# -- hardware ------------------------------------------------------------


def _hardware_point(repetitions, n_values, a_values, seed, backend=""):
    (n,) = n_values
    baselines = hardware_baselines(n)
    best_backoff = None
    for interval_a in a_values:
        point = simulate_barrier(
            n,
            interval_a,
            ExponentialFlagBackoff(base=2),
            repetitions=repetitions,
            seed=seed,
            backend=backend,
        )
        if best_backoff is None or point.mean_accesses < best_backoff:
            best_backoff = point.mean_accesses
    return {
        "baselines": [[name, value] for name, value in baselines.items()],
        "best_backoff": best_backoff,
    }


def _hardware_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[int, float]] = {"backoff": {}}
    for n in params["n_values"]:
        payload = points[f"N={n}"]
        baselines = {name: value for name, value in payload["baselines"]}
        for name, value in baselines.items():
            data.setdefault(name, {})[n] = value
        data["backoff"][n] = payload["best_backoff"]
        rows.append(
            [
                n,
                payload["best_backoff"],
                baselines["invalidating bus"],
                baselines["updating bus"],
                baselines["full-map directory"],
                baselines["Hoshino gate"],
            ]
        )
    text = render_table(
        [
            "N",
            "base-2 backoff (best A)",
            "inval. bus",
            "update bus",
            "directory",
            "Hoshino",
        ],
        rows,
        title="Section 5.1: accesses/processor vs hardware-supported barriers",
        float_format="%.1f",
    )
    return ExperimentResult("hardware", "hardware barrier comparison", text, data)


register(
    ExperimentSpec(
        id="hardware",
        title="hardware barrier comparison",
        section="Section 5.1",
        summary="Section 5.1: base-2 flag backoff vs hardware barrier baselines.",
        params=(
            Param("repetitions", "int", 100),
            Param("n_values", "ints", (4, 8, 16, 32, 64, 128)),
            Param("a_values", "ints", PAPER_A_VALUES, "candidate A values"),
            Param("seed", "int", 0),
            Param("backend", "str", "",
                  "episode engine: python|numpy|auto; '' = the ambient "
                  "--backend default"),
        ),
        axis="n_values",
        run_point=_hardware_point,
        aggregate=_hardware_aggregate,
    )
)


# -- coherent_barrier ----------------------------------------------------


def _coherent_barrier_point(num_processors, interval_a, repetitions, seed):
    from repro.barrier.coherent import simulate_coherent_barrier

    schemes = [
        "snoopy-update",
        "snoopy-invalidate-fiw",
        "snoopy-invalidate",
        "directory",
        "uncached",
    ]
    means = []
    for scheme in schemes:
        stats = simulate_coherent_barrier(
            num_processors,
            scheme,
            interval_a=interval_a,
            repetitions=repetitions,
            seed=seed,
        )
        means.append([scheme, stats.mean])
    backoff_stats = simulate_coherent_barrier(
        num_processors,
        "uncached",
        interval_a=interval_a,
        policy=ExponentialFlagBackoff(base=2),
        repetitions=repetitions,
        seed=seed,
    )
    return {"schemes": means, "backoff_mean": backoff_stats.mean}


def _coherent_barrier_aggregate(points, params):
    labels = {
        "snoopy-update": "updating bus (paper ~2)",
        "snoopy-invalidate-fiw": "inval. bus + fetch-intent-write (paper ~2)",
        "snoopy-invalidate": "invalidating bus (paper ~3)",
        "directory": "full-map directory (paper ~4)",
        "uncached": "uncached, continuous spin",
    }
    payload = points["all"]
    rows = []
    data: Dict[str, float] = {}
    for scheme, mean in payload["schemes"]:
        data[scheme] = mean
        rows.append([labels[scheme], mean])
    data["uncached-b2"] = payload["backoff_mean"]
    rows.append(["uncached + base-2 backoff (the paper's proposal)",
                 payload["backoff_mean"]])
    text = render_table(
        ["Scheme", "transactions/processor"],
        rows,
        title=(
            f"Section 5.1 by simulation: one barrier episode, N="
            f"{params['num_processors']}, A={params['interval_a']}"
        ),
        float_format="%.2f",
    )
    text += (
        "\nSimulated counts sit ~1-2 above the paper's idealized "
        "constants because the paper's accounting drops the "
        "post-release re-fetch; the ordering (update < invalidating "
        "bus < directory << uncached) and the software-backoff "
        "rapprochement are reproduced by simulation."
    )
    return ExperimentResult(
        "coherent_barrier", "barriers through coherence protocols", text, data
    )


register(
    ExperimentSpec(
        id="coherent_barrier",
        title="barriers through coherence protocols",
        section="Section 5.1 (simulation)",
        summary="Section 5.1 by simulation: barriers through coherence protocols.",
        params=(
            Param("num_processors", "int", 64),
            Param("interval_a", "int", 100),
            Param("repetitions", "int", 20),
            Param("seed", "int", 0),
        ),
        run_point=_coherent_barrier_point,
        aggregate=_coherent_barrier_aggregate,
    )
)
