"""Section 8 and ablation experiments: locks, trees, queueing, schedules."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.tables import render_table
from repro.barrier.queueing import (
    simulate_blocking_barrier,
    simulate_threshold_barrier,
)
from repro.barrier.resource import simulate_resource
from repro.barrier.simulator import simulate_barrier
from repro.barrier.tree import simulate_tree_barrier
from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    RandomizedExponentialBackoff,
    paper_policies,
)
from repro.core.locks import BackoffLock, TestAndSetLock, TestAndTestAndSetLock
from repro.registry.result import ExperimentResult
from repro.registry.spec import ExperimentSpec, Param, register

# -- resource ------------------------------------------------------------


def _resource_point(repetitions, n_values, hold_time, seed):
    (n,) = n_values
    strategies = [
        TestAndSetLock(),
        TestAndTestAndSetLock(),
        BackoffLock(hold_time=hold_time),
    ]
    entries = []
    for strategy in strategies:
        aggregate = simulate_resource(
            n,
            strategy,
            hold_time=hold_time,
            repetitions=repetitions,
            seed=seed,
        )
        entries.append(
            [strategy.name, aggregate.mean_accesses, aggregate.mean_makespan]
        )
    return {"strategies": entries}


def _resource_aggregate(points, params):
    n_values = params["n_values"]
    first = points[f"N={n_values[0]}"]["strategies"]
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for strategy_index, entry in enumerate(first):
        name = entry[0]
        per_n: Dict[int, Tuple[float, float]] = {}
        for n in n_values:
            cell = points[f"N={n}"]["strategies"][strategy_index]
            per_n[n] = (cell[1], cell[2])
            rows.append([name, n, cell[1], cell[2]])
        data[name] = per_n
    text = render_table(
        ["Strategy", "N", "accesses/proc", "makespan"],
        rows,
        title=f"Section 8: resource waiting (hold time {params['hold_time']})",
        float_format="%.1f",
    )
    return ExperimentResult("resource", "resource waiting backoff", text, data)


register(
    ExperimentSpec(
        id="resource",
        title="resource waiting backoff",
        section="Section 8 (locks)",
        summary="Section 8: resource waiting — TAS vs TTAS vs proportional backoff.",
        params=(
            Param("repetitions", "int", 50),
            Param("n_values", "ints", (4, 8, 16, 32, 64)),
            Param("hold_time", "int", 8, "critical-section length"),
            Param("seed", "int", 0),
        ),
        axis="n_values",
        run_point=_resource_point,
        aggregate=_resource_aggregate,
    )
)


# -- combining -----------------------------------------------------------


def _combining_point(repetitions, n_values, a_values, degrees, seed):
    (n,) = n_values
    a_cells = []
    for interval_a in a_values:
        flat = simulate_barrier(
            n, interval_a, NoBackoff(), repetitions=repetitions, seed=seed
        )
        tree_cells = []
        for degree in degrees:
            tree = simulate_tree_barrier(
                n,
                interval_a,
                degree=degree,
                repetitions=repetitions,
                seed=seed,
            )
            tree_cells.append([tree.mean_accesses, tree.mean_waiting_time])
        a_cells.append([flat.mean_accesses, flat.mean_waiting_time, tree_cells])
    return {"a_cells": a_cells}


def _combining_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[Tuple[int, int], float]] = {"flat": {}}
    for n in params["n_values"]:
        payload = points[f"N={n}"]["a_cells"]
        for interval_a, cell in zip(params["a_values"], payload):
            flat_accesses, flat_waiting, tree_cells = cell
            data["flat"][(n, interval_a)] = flat_accesses
            rows.append(["flat", n, interval_a, flat_accesses, flat_waiting])
            for degree, tree_cell in zip(params["degrees"], tree_cells):
                key = f"tree-{degree}"
                data.setdefault(key, {})[(n, interval_a)] = tree_cell[0]
                rows.append([key, n, interval_a, tree_cell[0], tree_cell[1]])
    text = render_table(
        ["Barrier", "N", "A", "accesses/proc", "waiting"],
        rows,
        title="Combining-tree vs flat barrier (no backoff at nodes)",
        float_format="%.1f",
    )
    return ExperimentResult("combining", "combining-tree barriers", text, data)


register(
    ExperimentSpec(
        id="combining",
        title="combining-tree barriers",
        section="Sections 4 / 6",
        summary="Sections 4/6: combining-tree barriers vs the flat barrier.",
        params=(
            Param("repetitions", "int", 50),
            Param("n_values", "ints", (64, 256)),
            Param("a_values", "ints", (0, 100)),
            Param("degrees", "ints", (2, 4, 8), "combining-tree node degrees"),
            Param("seed", "int", 0),
        ),
        axis="n_values",
        run_point=_combining_point,
        aggregate=_combining_aggregate,
    )
)


# -- queueing ------------------------------------------------------------


def _queueing_point(repetitions, num_processors, a_values, threshold, overhead, seed):
    (interval_a,) = a_values
    spin = simulate_barrier(
        num_processors,
        interval_a,
        ExponentialFlagBackoff(base=2),
        repetitions=repetitions,
        seed=seed,
    )
    block = simulate_blocking_barrier(
        num_processors,
        interval_a,
        enqueue_overhead=overhead,
        wakeup_overhead=overhead,
        repetitions=repetitions,
        seed=seed,
    )
    hybrid = simulate_threshold_barrier(
        num_processors,
        interval_a,
        ExponentialFlagBackoff(base=2),
        threshold=threshold,
        enqueue_overhead=overhead,
        wakeup_overhead=overhead,
        repetitions=repetitions,
        seed=seed,
    )
    return {
        "schemes": [
            [label, point.mean_accesses, point.mean_waiting_time]
            for label, point in (
                ("spin-b2", spin),
                ("block", block),
                ("hybrid", hybrid),
            )
        ]
    }


def _queueing_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for interval_a in params["a_values"]:
        for label, accesses, waiting in points[f"A={interval_a}"]["schemes"]:
            data.setdefault(label, {})[interval_a] = (accesses, waiting)
            rows.append([label, interval_a, accesses, waiting])
    text = render_table(
        ["Scheme", "A", "accesses/proc", "waiting"],
        rows,
        title=(
            f"Spin vs block vs threshold-queue hybrid "
            f"(N={params['num_processors']}, overhead={params['overhead']}, "
            f"threshold={params['threshold']})"
        ),
        float_format="%.1f",
    )
    return ExperimentResult("queueing", "spin vs block vs hybrid", text, data)


register(
    ExperimentSpec(
        id="queueing",
        title="spin vs block vs hybrid",
        section="Sections 4 / 7",
        summary="Sections 4/7: spin vs block vs spin-then-queue hybrid.",
        params=(
            Param("repetitions", "int", 50),
            Param("num_processors", "int", 64),
            Param("a_values", "ints", (0, 100, 1000, 10_000)),
            Param("threshold", "int", 256, "spin cycles before blocking"),
            Param("overhead", "int", 100, "enqueue/wakeup overhead"),
            Param("seed", "int", 0),
        ),
        axis="a_values",
        run_point=_queueing_point,
        aggregate=_queueing_aggregate,
    )
)


# -- determinism ---------------------------------------------------------


def _determinism_point(repetitions, points, base, seed):
    ((n, interval_a),) = points
    deterministic = simulate_barrier(
        n,
        interval_a,
        ExponentialFlagBackoff(base=base),
        repetitions=repetitions,
        seed=seed,
    )
    randomized = simulate_barrier(
        n,
        interval_a,
        RandomizedExponentialBackoff(base=base, seed=seed),
        repetitions=repetitions,
        seed=seed,
    )
    return {
        "deterministic": [
            deterministic.mean_accesses,
            deterministic.mean_waiting_time,
        ],
        "randomized": [randomized.mean_accesses, randomized.mean_waiting_time],
    }


def _determinism_aggregate(point_payloads, params):
    rows = []
    data: Dict[Tuple[int, int], Dict[str, Tuple[float, float]]] = {}
    for n, interval_a in params["points"]:
        payload = point_payloads[f"N={n},A={interval_a}"]
        data[(n, interval_a)] = {
            "deterministic": tuple(payload["deterministic"]),
            "randomized": tuple(payload["randomized"]),
        }
        rows.append(
            [
                n,
                interval_a,
                payload["deterministic"][0],
                payload["randomized"][0],
                payload["deterministic"][1],
                payload["randomized"][1],
            ]
        )
    text = render_table(
        ["N", "A", "det. accesses", "rand. accesses", "det. wait", "rand. wait"],
        rows,
        title=(
            f"Determinism ablation: base-{params['base']} exponential flag "
            "backoff, deterministic vs randomized windows"
        ),
        float_format="%.1f",
    )
    text += (
        "\nPaper argument (Section 4.2): randomized retries destroy the "
        "serialization established by the first contention episode."
    )
    return ExperimentResult(
        "determinism", "deterministic vs randomized backoff", text, data
    )


register(
    ExperimentSpec(
        id="determinism",
        title="deterministic vs randomized backoff",
        section="Section 4.2 (ablation)",
        summary="Ablation: deterministic vs randomized exponential backoff.",
        params=(
            Param("repetitions", "int", 50),
            Param(
                "points",
                "pairs",
                ((16, 1000), (64, 1000), (256, 1000)),
                "(N, A) pairs",
            ),
            Param("base", "int", 2, "exponential base"),
            Param("seed", "int", 0),
        ),
        axis="points",
        run_point=_determinism_point,
        aggregate=_determinism_aggregate,
    )
)


# -- schedules -----------------------------------------------------------


def _schedules_point(repetitions, num_processors, a_values, seed):
    from repro.core.backoff import LinearFlagBackoff

    (interval_a,) = a_values
    policies = {
        "none": NoBackoff(),
        "linear c=1": LinearFlagBackoff(step=1),
        "linear c=4": LinearFlagBackoff(step=4),
        "linear c=16": LinearFlagBackoff(step=16),
        "exp b=2": ExponentialFlagBackoff(base=2),
        "exp b=8": ExponentialFlagBackoff(base=8),
    }
    entries = []
    for label, policy in policies.items():
        aggregate = simulate_barrier(
            num_processors,
            interval_a,
            policy,
            repetitions=repetitions,
            seed=seed,
        )
        entries.append(
            [label, aggregate.mean_accesses, aggregate.mean_waiting_time]
        )
    return {"schedules": entries}


def _schedules_aggregate(points, params):
    a_values = params["a_values"]
    first = points[f"A={a_values[0]}"]["schedules"]
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for schedule_index, entry in enumerate(first):
        label = entry[0]
        per_a: Dict[int, Tuple[float, float]] = {}
        for interval_a in a_values:
            cell = points[f"A={interval_a}"]["schedules"][schedule_index]
            per_a[interval_a] = (cell[1], cell[2])
            rows.append([label, interval_a, cell[1], cell[2]])
        data[label] = per_a
    text = render_table(
        ["Schedule", "A", "accesses/proc", "waiting"],
        rows,
        title=(
            f"Backoff schedule ablation (N={params['num_processors']}): "
            "linear vs exponential flag backoff"
        ),
        float_format="%.1f",
    )
    text += (
        "\nLinear schedules cut polling by ~sqrt of the span; the "
        "exponential family reaches the log-of-span floor the paper's "
        "Model 2 analysis predicts."
    )
    return ExperimentResult("schedules", "linear vs exponential schedules", text, data)


register(
    ExperimentSpec(
        id="schedules",
        title="linear vs exponential schedules",
        section="Section 4.2 (ablation)",
        summary="Ablation: linear vs exponential flag-backoff schedules.",
        params=(
            Param("repetitions", "int", 50),
            Param("num_processors", "int", 64),
            Param("a_values", "ints", (100, 1000, 10_000)),
            Param("seed", "int", 0),
        ),
        axis="a_values",
        run_point=_schedules_point,
        aggregate=_schedules_aggregate,
    )
)


# -- application ---------------------------------------------------------


def _application_point(
    repetitions, num_processors, work_interval, rounds, jitter, seed
):
    from repro.barrier.application import simulate_application

    entries = []
    for label, policy in paper_policies().items():
        aggregate = simulate_application(
            num_processors,
            work_interval,
            policy=policy,
            rounds=rounds,
            jitter=jitter,
            repetitions=repetitions,
            seed=seed,
        )
        entries.append(
            [
                label,
                aggregate.completion.mean,
                aggregate.accesses.mean,
                aggregate.traffic_rate.mean,
                aggregate.overhead.mean,
                aggregate.arrival_span.mean,
            ]
        )
    return {"policies": entries}


def _application_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for label, completion, accesses, traffic_rate, overhead, span in points[
        "all"
    ]["policies"]:
        data[label] = {
            "completion": completion,
            "accesses": accesses,
            "traffic_rate": traffic_rate,
            "overhead": overhead,
            "arrival_span": span,
        }
        rows.append(
            [
                label,
                completion,
                100 * overhead,
                accesses,
                1000 * traffic_rate,
                span,
            ]
        )
    text = render_table(
        [
            "Policy",
            "completion",
            "overhead %",
            "accesses/proc",
            "sync traffic (per 1000 cyc)",
            "emergent A",
        ],
        rows,
        title=(
            f"Application model: N={params['num_processors']}, "
            f"E~{params['work_interval']} "
            f"(+/-{int(100 * params['jitter'])}%), {params['rounds']} rounds"
        ),
        float_format="%.1f",
    )
    return ExperimentResult(
        "application", "end-to-end application slowdown", text, data
    )


register(
    ExperimentSpec(
        id="application",
        title="end-to-end application slowdown",
        section="Application model",
        summary="End-to-end application model: rounds of work + barriers.",
        params=(
            Param("repetitions", "int", 20),
            Param("num_processors", "int", 64),
            Param("work_interval", "int", 2000, "work cycles between barriers"),
            Param("rounds", "int", 10),
            Param("jitter", "float", 0.2, "work-interval jitter fraction"),
            Param("seed", "int", 0),
        ),
        run_point=_application_point,
        aggregate=_application_aggregate,
    )
)
