"""Coherence-substrate experiments: Tables 1-2, Figure 1, ablations.

Each spec's ``run_point`` produces pure data (lists of scalars); the
``aggregate`` step rebuilds the exact rows, dict shapes and rendered
text of the seed ``run_*`` functions, so results are byte-identical to
the monolithic implementation these specs replaced.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.analysis.tables import render_table
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.registry.common import (
    APP_NAMES,
    PAPER_SYNC_FRACTIONS,
    TABLE_POINTERS,
    coherence_stats,
    scheduled_trace,
)
from repro.registry.result import ExperimentResult
from repro.registry.spec import ExperimentSpec, Param, register
from repro.trace.apps import build_app
from repro.trace.scheduler import PostMortemScheduler

# -- table1 --------------------------------------------------------------


def _table1_point(scale, num_cpus, pointers, apps):
    (app,) = apps
    invalidations = []
    for pointer_count in pointers:
        stats = coherence_stats(app, num_cpus, pointer_count, True, scale)
        invalidations.append(
            [stats.data_invalidation_pct, stats.sync_invalidation_pct]
        )
    measured = 100 * scheduled_trace(app, num_cpus, scale).sync_fraction
    return {"invalidations": invalidations, "sync_pct_measured": measured}


def _table1_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for app in params["apps"]:
        payload = points[f"app={app}"]
        per_app: Dict[int, Tuple[float, float]] = {}
        for pointer_count, cell in zip(
            params["pointers"], payload["invalidations"]
        ):
            per_app[pointer_count] = (cell[0], cell[1])
            rows.append([app, pointer_count, cell[0], cell[1]])
        data[app] = per_app
    sync_fraction_rows = [
        [
            app,
            points[f"app={app}"]["sync_pct_measured"],
            PAPER_SYNC_FRACTIONS[app.upper()],
        ]
        for app in params["apps"]
    ]
    text = render_table(
        ["Application", "Pointers", "Non-Synch. %", "Synch. %"],
        rows,
        title=(
            "Table 1: references causing invalidations, Dir_i_NB, "
            f"{params['num_cpus']} CPUs"
        ),
        float_format="%.1f",
    )
    text += "\n\n" + render_table(
        ["Application", "sync refs % (measured)", "sync refs % (paper)"],
        sync_fraction_rows,
        float_format="%.2f",
    )
    return ExperimentResult("table1", "invalidations by reference class", text, data)


register(
    ExperimentSpec(
        id="table1",
        title="invalidations by reference class",
        section="Section 2, Table 1",
        summary="Table 1: % of sync / non-sync references causing invalidations.",
        params=(
            Param("scale", "float", 1.0, "trace size multiplier"),
            Param("num_cpus", "int", 64),
            # Include a full-map pointer count (>= the fuzzed num_cpus
            # choices) so fuzzing exercises the no-overflow path too.
            Param("pointers", "ints", TABLE_POINTERS, "directory pointer counts",
                  fuzz={"type": "seq", "min_size": 1, "max_size": 2,
                        "unique": True,
                        "element": {"type": "choice", "values": [1, 2, 4, 16]}}),
            Param("apps", "strs", APP_NAMES),
        ),
        axis="apps",
        run_point=_table1_point,
        aggregate=_table1_aggregate,
    )
)


# -- table2 --------------------------------------------------------------


def _table2_point(scale, num_cpus, pointers, apps):
    (app,) = apps
    traffic = []
    for pointer_count in pointers:
        stats = coherence_stats(app, num_cpus, pointer_count, False, scale)
        traffic.append(stats.sync_traffic_pct)
    return {"sync_traffic_pct": traffic}


def _table2_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[int, float]] = {}
    for app in params["apps"]:
        payload = points[f"app={app}"]
        per_app: Dict[int, float] = {}
        for pointer_count, traffic_pct in zip(
            params["pointers"], payload["sync_traffic_pct"]
        ):
            per_app[pointer_count] = traffic_pct
            rows.append([app, pointer_count, traffic_pct])
        data[app] = per_app
    text = render_table(
        ["Application", "Pointers", "Sync traffic %"],
        rows,
        title=(
            "Table 2: uncached synchronization traffic as % of total, "
            f"{params['num_cpus']} CPUs"
        ),
        float_format="%.1f",
    )
    return ExperimentResult("table2", "uncached sync traffic share", text, data)


register(
    ExperimentSpec(
        id="table2",
        title="uncached sync traffic share",
        section="Section 2, Table 2",
        summary="Table 2: sync traffic % of total, sync variables uncached.",
        params=(
            Param("scale", "float", 1.0, "trace size multiplier"),
            Param("num_cpus", "int", 64),
            # Include a full-map pointer count (>= the fuzzed num_cpus
            # choices) so fuzzing exercises the no-overflow path too.
            Param("pointers", "ints", TABLE_POINTERS, "directory pointer counts",
                  fuzz={"type": "seq", "min_size": 1, "max_size": 2,
                        "unique": True,
                        "element": {"type": "choice", "values": [1, 2, 4, 16]}}),
            Param("apps", "strs", APP_NAMES),
        ),
        axis="apps",
        run_point=_table2_point,
        aggregate=_table2_aggregate,
    )
)


# -- figure1 -------------------------------------------------------------


def _figure1_point(scale, num_cpus, app):
    stats = coherence_stats(app, num_cpus, num_cpus, True, scale)
    histogram = stats.write_invalidation_histogram
    invalidating = [(k, c) for k, c in histogram.items() if k >= 1]
    total = sum(c for __, c in invalidating) or 1
    fractions = [[int(k), c / total] for k, c in invalidating]
    at_most_3 = 100 * sum(c / total for k, c in invalidating if k <= 3)
    return {"fractions": fractions, "at_most_3_pct": at_most_3}


def _figure1_aggregate(points, params):
    payload = points["all"]
    fractions: Dict[int, float] = {
        int(k): fraction for k, fraction in payload["fractions"]
    }
    at_most_3 = payload["at_most_3_pct"]
    rows = []
    for k in sorted(fractions):
        if k <= 12 or fractions[k] >= 0.001:
            rows.append([k, 100 * fractions[k]])
    text = render_table(
        ["Invalidations x", "% of invalidating writes"],
        rows,
        title=(
            f"Figure 1: invalidation histogram, {params['app']}, "
            f"{params['num_cpus']} CPUs (DirNNB)"
        ),
        float_format="%.2f",
    )
    text += (
        f"\nInvalidating writes touching <= 3 caches: {at_most_3:.1f}% "
        "(paper: > 95%)"
    )
    return ExperimentResult(
        "figure1",
        "cache invalidation histogram",
        text,
        {"fractions": fractions, "at_most_3_pct": at_most_3},
    )


register(
    ExperimentSpec(
        id="figure1",
        title="cache invalidation histogram",
        section="Section 2, Figure 1",
        summary="Figure 1: invalidation histogram for SIMPLE, DirNNB, 64 CPUs.",
        params=(
            Param("scale", "float", 1.0, "trace size multiplier"),
            Param("num_cpus", "int", 64),
            Param("app", "str", "SIMPLE"),
        ),
        run_point=_figure1_point,
        aggregate=_figure1_aggregate,
    )
)


# -- tree_coherence ------------------------------------------------------


def _tree_coherence_point(scale, num_cpus, num_pointers, degrees, app):
    barriers = []

    def measure(label: str, style: str, degree: int) -> None:
        program = build_app(app, scale=scale)
        trace = PostMortemScheduler(
            program, num_cpus, barrier_style=style, tree_degree=degree
        ).run()
        simulator = CoherenceSimulator(
            CoherenceConfig(num_cpus=num_cpus, num_pointers=num_pointers)
        )
        stats = simulator.run(trace)
        barriers.append(
            [
                label,
                stats.sync_invalidation_pct,
                stats.data_invalidation_pct,
                100 * trace.sync_fraction,
            ]
        )

    measure("flat", "flat", num_cpus)
    for degree in degrees:
        measure(f"tree-{degree}", "tree", degree)
    return {"barriers": barriers}


def _tree_coherence_aggregate(points, params):
    rows = []
    data: Dict[str, Tuple[float, float]] = {}
    for label, sync_inv, data_inv, sync_refs in points["all"]["barriers"]:
        data[label] = (sync_inv, data_inv)
        rows.append([label, sync_inv, data_inv, sync_refs])
    text = render_table(
        ["Barrier", "sync inval %", "data inval %", "sync refs %"],
        rows,
        title=(
            f"Combining-tree coherence ablation: {params['app']}, "
            f"{params['num_cpus']} CPUs, Dir_{params['num_pointers']}_NB"
        ),
        float_format="%.1f",
    )
    text += (
        f"\nWith node degree < {params['num_pointers']} pointers the "
        "synchronization words never overflow the directory, so the sync "
        "invalidation rate collapses — the paper's Section 1 prescription."
    )
    return ExperimentResult(
        "tree_coherence", "combining trees vs directory pointers", text, data
    )


register(
    ExperimentSpec(
        id="tree_coherence",
        title="combining trees vs directory pointers",
        section="Section 1 (ablation)",
        summary="Ablation: combining-tree barriers under a limited-pointer directory.",
        params=(
            Param("scale", "float", 0.5, "trace size multiplier"),
            Param("num_cpus", "int", 64),
            Param("num_pointers", "int", 4, "directory pointer budget"),
            Param("degrees", "ints", (3, 8), "combining-tree node degrees"),
            Param("app", "str", "SIMPLE"),
        ),
        run_point=_tree_coherence_point,
        aggregate=_tree_coherence_aggregate,
    )
)


# -- bus_vs_directory ----------------------------------------------------


def _bus_vs_directory_point(scale, num_cpus, app, pointers):
    from repro.memory.snoopy import SnoopyConfig, SnoopySimulator

    trace = scheduled_trace(app, num_cpus, scale)
    protocols = []

    for protocol in ("invalidate", "update"):
        simulator = SnoopySimulator(
            SnoopyConfig(num_cpus=num_cpus, protocol=protocol)
        )
        stats = simulator.run(trace)
        sync_share = (
            100.0 * stats.sync_bus_transactions / stats.bus_transactions
            if stats.bus_transactions
            else 0.0
        )
        per_ref = stats.bus_transactions / max(stats.refs, 1)
        protocols.append([f"snoopy-{protocol}", sync_share, per_ref])

    for pointer_count in pointers:
        simulator = CoherenceSimulator(
            CoherenceConfig(num_cpus=num_cpus, num_pointers=pointer_count)
        )
        stats = simulator.run(trace)
        sync_share = (
            100.0 * stats.sync_traffic / stats.total_traffic
            if stats.total_traffic
            else 0.0
        )
        per_ref = stats.total_traffic / max(stats.refs, 1)
        protocols.append([f"directory-{pointer_count}ptr", sync_share, per_ref])

    return {"protocols": protocols}


def _bus_vs_directory_aggregate(points, params):
    rows = []
    data: Dict[str, Tuple[float, float]] = {}
    for label, sync_share, per_ref in points["all"]["protocols"]:
        data[label] = (sync_share, per_ref)
        rows.append([label, sync_share, per_ref])
    text = render_table(
        ["Protocol", "sync share of traffic %", "transactions/ref"],
        rows,
        title=(
            f"Section 2.1: snoopy bus vs directory on {params['app']} "
            f"({params['num_cpus']} CPUs, scale {params['scale']})"
        ),
        float_format="%.2f",
    )
    text += (
        "\nThe bus broadcasts: one transaction per write no matter how "
        "many copies exist, so synchronization's share of bus traffic "
        "stays modest.  The limited-pointer directory pays per-copy "
        "invalidations and pointer-overflow evictions on the widely "
        "shared synchronization words — which is the paper's case for "
        "scaling trouble."
    )
    return ExperimentResult(
        "bus_vs_directory", "snoopy bus vs directory", text, data
    )


register(
    ExperimentSpec(
        id="bus_vs_directory",
        title="snoopy bus vs directory",
        section="Section 2.1",
        summary="Section 2.1's contrast: snoopy bus vs limited-pointer directory.",
        params=(
            Param("scale", "float", 0.5, "trace size multiplier"),
            Param("num_cpus", "int", 32),
            Param("app", "str", "SIMPLE"),
            Param("pointers", "ints", (2, 4), "directory pointer counts"),
        ),
        run_point=_bus_vs_directory_point,
        aggregate=_bus_vs_directory_aggregate,
    )
)
