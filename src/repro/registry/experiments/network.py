"""Network-contention experiments: netbackoff, saturation, coupling."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.tables import render_table
from repro.barrier.simulator import simulate_barrier
from repro.core.backoff import paper_policies
from repro.network.hotspot import hotspot_sweep
from repro.network.netbackoff import (
    ConstantRoundTripBackoff,
    DepthProportionalBackoff,
    ExponentialRetryBackoff,
    ImmediateRetry,
    InverseDepthBackoff,
    QueueFeedbackBackoff,
)
from repro.registry.result import ExperimentResult
from repro.registry.spec import ExperimentSpec, Param, register

# -- netbackoff ----------------------------------------------------------


def _netbackoff_point(num_ports, hot_fractions, horizon, seed):
    (fraction,) = hot_fractions
    policies = [
        ImmediateRetry(),
        DepthProportionalBackoff(),
        InverseDepthBackoff(),
        ConstantRoundTripBackoff(),
        ExponentialRetryBackoff(),
        QueueFeedbackBackoff(),
    ]
    results = hotspot_sweep(
        num_ports=num_ports,
        hot_fractions=(fraction,),
        policies=policies,
        horizon=horizon,
        seed=seed,
    )
    return {
        "policies": [
            [
                policy_name,
                per_fraction[fraction].throughput,
                per_fraction[fraction].attempts_per_message.mean,
                per_fraction[fraction].latency.mean,
            ]
            for policy_name, per_fraction in results.items()
        ]
    }


def _netbackoff_aggregate(points, params):
    hot_fractions = params["hot_fractions"]
    first = points[f"hot={hot_fractions[0]}"]["policies"]
    rows = []
    data: Dict[str, Dict[float, Tuple[float, float]]] = {}
    for policy_index, entry in enumerate(first):
        policy_name = entry[0]
        per: Dict[float, Tuple[float, float]] = {}
        for fraction in hot_fractions:
            cell = points[f"hot={fraction}"]["policies"][policy_index]
            per[fraction] = (cell[1], cell[2])
            rows.append([policy_name, fraction, cell[1], cell[2], cell[3]])
        data[policy_name] = per
    text = render_table(
        ["Policy", "hot frac", "throughput", "attempts/msg", "latency"],
        rows,
        title=(
            f"Section 8: network backoff under hot-spot traffic "
            f"({params['num_ports']}-port Omega)"
        ),
        float_format="%.3f",
    )
    return ExperimentResult("netbackoff", "network access backoff", text, data)


register(
    ExperimentSpec(
        id="netbackoff",
        title="network access backoff",
        section="Section 8 (network)",
        summary="Section 8: network-access backoff in a circuit-switched net.",
        params=(
            # Omega networks need a power-of-two port count, which the
            # generic name-keyed fuzz table cannot know — declare it.
            Param("num_ports", "int", 64,
                  fuzz={"type": "choice", "values": [4, 8, 16]}),
            Param("hot_fractions", "floats", (0.0, 0.05, 0.1, 0.2)),
            Param("horizon", "int", 20_000, "simulated cycles"),
            Param("seed", "int", 0),
        ),
        axis="hot_fractions",
        run_point=_netbackoff_point,
        aggregate=_netbackoff_aggregate,
    )
)


# -- tree_saturation -----------------------------------------------------


def _tree_saturation_point(num_ports, hot_fractions, injection_rate, horizon, seed):
    from repro.network.packet import tree_saturation_sweep

    (fraction,) = hot_fractions
    variants = {
        "immediate": dict(backoff=None, proactive=False),
        "feedback-reactive": dict(
            backoff=QueueFeedbackBackoff(factor=2), proactive=False
        ),
        "feedback-proactive": dict(
            backoff=QueueFeedbackBackoff(factor=2), proactive=True
        ),
    }
    entries = []
    for label, options in variants.items():
        sweep_result = tree_saturation_sweep(
            num_ports=num_ports,
            hot_fractions=(fraction,),
            injection_rate=injection_rate,
            horizon=horizon,
            seed=seed,
            **options,
        )
        outcome = sweep_result[fraction]
        entries.append(
            [
                label,
                outcome.cold_throughput,
                outcome.hot_throughput,
                outcome.latency_cold.mean,
                outcome.blocked_fraction,
            ]
        )
    return {"variants": entries}


def _tree_saturation_aggregate(points, params):
    hot_fractions = params["hot_fractions"]
    first = points[f"hot={hot_fractions[0]}"]["variants"]
    rows = []
    data: Dict[str, Dict[float, Tuple[float, float]]] = {}
    for variant_index, entry in enumerate(first):
        label = entry[0]
        per: Dict[float, Tuple[float, float]] = {}
        for fraction in hot_fractions:
            cell = points[f"hot={fraction}"]["variants"][variant_index]
            per[fraction] = (cell[1], cell[3])
            rows.append([label, fraction, cell[1], cell[2], cell[3], cell[4]])
        data[label] = per
    text = render_table(
        [
            "Policy",
            "hot frac",
            "cold thr/port",
            "hot thr",
            "cold latency",
            "blocked frac",
        ],
        rows,
        title=(
            f"Tree saturation ({params['num_ports']}-port buffered Omega, "
            f"injection {params['injection_rate']}/cycle)"
        ),
        float_format="%.3f",
    )
    text += (
        "\nCold bandwidth collapses as a few percent of references go "
        "hot (Pfister-Norton); queue feedback cannot restore bandwidth "
        "(the hot module's service rate is the bottleneck) but the "
        "proactive throttle sharply cuts the latency everyone suffers."
    )
    return ExperimentResult(
        "tree_saturation", "hot-spot tree saturation", text, data
    )


register(
    ExperimentSpec(
        id="tree_saturation",
        title="hot-spot tree saturation",
        section="Section 8(5) / Pfister-Norton",
        summary="Hot-spot tree saturation in a buffered network (the motivation).",
        params=(
            Param("num_ports", "int", 64,
                  fuzz={"type": "choice", "values": [4, 8, 16]}),
            Param("hot_fractions", "floats", (0.0, 0.01, 0.02, 0.04, 0.08, 0.16)),
            Param("injection_rate", "float", 0.4, "requests/port/cycle"),
            Param("horizon", "int", 5_000, "simulated cycles"),
            Param("seed", "int", 0),
        ),
        axis="hot_fractions",
        run_point=_tree_saturation_point,
        aggregate=_tree_saturation_aggregate,
    )
)


# -- coupling ------------------------------------------------------------


def _coupling_point(
    repetitions, num_processors, interval_a, barrier_period, background_rate, seed
):
    from repro.network.coupling import couple_barrier_traffic

    entries = []
    for label, policy in paper_policies().items():
        aggregate = simulate_barrier(
            num_processors,
            interval_a,
            policy,
            repetitions=repetitions,
            seed=seed,
        )
        estimate = couple_barrier_traffic(
            num_ports=num_processors,
            background_rate=background_rate,
            barrier_accesses_per_process=aggregate.mean_accesses,
            barrier_period=barrier_period,
        )
        entries.append(
            [
                label,
                estimate.barrier_rate,
                estimate.offered_rate,
                estimate.acceptance_probability,
                estimate.effective_bandwidth,
            ]
        )
    baseline = next(e for e in entries if e[0] == "Without Backoff")
    relief = [
        [
            entry[0],
            -(1.0 - entry[3] / baseline[3]) if baseline[3] else -0.0,
        ]
        for entry in entries
        if entry[0] != "Without Backoff"
    ]
    return {"policies": entries, "relief": relief}


def _coupling_aggregate(points, params):
    payload = points["all"]
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for label, barrier_rate, offered, acceptance, bandwidth in payload["policies"]:
        data[label] = {
            "barrier_rate": barrier_rate,
            "offered": offered,
            "acceptance": acceptance,
            "bandwidth": bandwidth,
        }
        rows.append([label, barrier_rate, offered, acceptance, bandwidth])
    relief = {label: value for label, value in payload["relief"]}
    text = render_table(
        ["Policy", "barrier rate", "offered rate", "acceptance", "bandwidth"],
        rows,
        title=(
            f"Patel-coupled network estimate: N={params['num_processors']}, A="
            f"{params['interval_a']}, background {params['background_rate']}"
            f"/cycle, period {params['barrier_period']:.0f}"
        ),
        float_format="%.4f",
    )
    best = max(relief.items(), key=lambda item: item[1])
    text += (
        f"\nAcceptance-probability relief vs no backoff: best "
        f"{best[0]!r} at +{100 * best[1]:.2f}% (the paper cautions the "
        "Patel model ignores hot-spots, so this uniform-traffic relief "
        "is a lower bound)."
    )
    data["relief"] = relief
    return ExperimentResult("coupling", "Patel-coupled network estimate", text, data)


register(
    ExperimentSpec(
        id="coupling",
        title="Patel-coupled network estimate",
        section="Section 3 (Patel model)",
        summary="Section 3: feed barrier traffic rates into the Patel model.",
        params=(
            Param("repetitions", "int", 50),
            # N doubles as the Patel model's port count, which must be
            # a power of two >= 2 — narrower than the generic domain.
            Param("num_processors", "int", 64,
                  fuzz={"type": "choice", "values": [4, 8, 16]}),
            Param("interval_a", "int", 100),
            Param("barrier_period", "float", 2000.0),
            Param("background_rate", "float", 0.3),
            Param("seed", "int", 0),
        ),
        run_point=_coupling_point,
        aggregate=_coupling_aggregate,
    )
)
