"""Scaling study beyond the paper's 256 processors: the 1024+ regime.

The paper stops its sweeps at a few hundred processors.  Later work
(hierarchical barriers on 1024-core clusters, synchronization offload
near memory) shows the interesting regime for barrier design starts
where this paper's figures end.  The ``scale1024`` family extends the
Figure 4-10 methodology to N = 256..4096 and asks three questions:

- how far do the Section 5.1 analytic models (Model 1's ``5N/2``,
  Model 2's ``r/2 + 3N/2``) track the flat adaptive-backoff barrier
  as N grows past the paper's range?
- how much of the linear-in-N access cost do combining trees (degree
  4) and flatter *hierarchical* trees (degree 16, the two-level
  cluster shape) absorb, with memory-module counts scaling with N?
- what does the release broadcast cost in the interconnect itself,
  with :mod:`repro.network.multistage` Omega stages scaled as log2(N)?

Every barrier point dispatches through the exec engine (see
:func:`repro.barrier.sweep.sweep` / :func:`~repro.barrier.sweep
.sweep_tree`), so ``--jobs``, ``--cache``, checkpoint/resume and the
vectorized numpy kernels apply unchanged; N = 4096 is only reachable
in reasonable time because the tree points ride the batched kernel of
:mod:`repro.barrier.kernel_tree_numpy`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.tables import render_table
from repro.barrier.models import model1_accesses, model2_accesses, model_prediction
from repro.registry.result import ExperimentResult
from repro.registry.spec import ExperimentSpec, Param, register


def _policy(flag_base: int):
    from repro.core.backoff import AdaptiveBackoff

    return AdaptiveBackoff(multiplier=1, flag_base=flag_base)


def _tree_modules(n: int, degree: int) -> int:
    """Memory modules a degree-``degree`` combining tree over N uses.

    Two modules per tree node (counter variable + release flag), so the
    module count scales with N instead of staying at the flat
    barrier's fixed pair — the "modules scaled with N" axis of the
    study.
    """
    from repro.core.barrier import CombiningTreeBarrier

    tree = CombiningTreeBarrier(n, degree=degree)
    return 2 * sum(tree.level_sizes())


def _release_probe(n: int, horizon: int, seed: int) -> Dict[str, Any]:
    """One Omega-network hot-spot probe at ``num_ports`` = N.

    Models the release-wave read storm: every processor's final flag
    read targets one module, so the switch tree feeding it saturates
    (Pfister & Norton).  Stages scale as log2(N) — the network-side
    cost the barrier-side access counts do not show.
    """
    from repro.network.hotspot import HotspotWorkload
    from repro.network.multistage import MultistageNetwork

    ports = 2
    while ports < n:
        ports *= 2
    network = MultistageNetwork(num_ports=ports, hold_time=4)
    workload = HotspotWorkload(
        num_ports=ports, hot_fraction=0.05, think_time=4, seed=seed
    )
    result = network.run(workload, horizon)
    return {
        "ports": ports,
        "stages": network.num_stages,
        "collision_rate": result.collision_rate,
        "attempts_per_message": result.attempts_per_message.mean,
        "throughput": result.throughput,
    }


def _scale_point(
    repetitions,
    n_values,
    interval_a,
    tree_degree,
    hier_degree,
    flag_base,
    probe_horizon,
    seed,
    backend="",
):
    (n,) = n_values
    from repro.barrier.simulator import simulate_barrier
    from repro.barrier.tree import simulate_tree_barrier

    flat = simulate_barrier(
        n, interval_a, _policy(flag_base), repetitions=repetitions, seed=seed,
        backend=backend or None,
    )
    barriers: List[list] = [
        ["flat", flat.mean_accesses, flat.mean_waiting_time, 2, 1],
    ]
    for label, degree in (("tree", tree_degree), ("hier", hier_degree)):
        point = simulate_tree_barrier(
            n,
            interval_a,
            degree=degree,
            policy=_policy(flag_base),
            repetitions=repetitions,
            seed=seed,
            backend=backend or None,
        )
        from repro.core.barrier import CombiningTreeBarrier

        depth = CombiningTreeBarrier(n, degree=degree).depth
        barriers.append(
            [
                f"{label}-{degree}",
                point.mean_accesses,
                point.mean_waiting_time,
                _tree_modules(n, degree),
                depth,
            ]
        )
    payload: Dict[str, Any] = {
        "barriers": barriers,
        "models": [
            model1_accesses(n),
            model2_accesses(n, interval_a),
            model_prediction(n, interval_a),
        ],
    }
    if probe_horizon > 0:
        payload["network"] = _release_probe(n, probe_horizon, seed)
    return payload


def _scale_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[int, Any]] = {"model": {}}
    network_rows = []
    for n in params["n_values"]:
        payload = points[f"N={n}"]
        prediction = payload["models"][2]
        data["model"][n] = prediction
        for label, accesses, waiting, modules, depth in payload["barriers"]:
            data.setdefault(label, {})[n] = accesses
            ratio = accesses / prediction if prediction else 0.0
            rows.append([label, n, accesses, waiting, modules, depth, ratio])
        probe = payload.get("network")
        if probe:
            data.setdefault("network", {})[n] = probe
            network_rows.append(
                [
                    n,
                    probe["stages"],
                    probe["collision_rate"],
                    probe["attempts_per_message"],
                ]
            )
    text = render_table(
        ["Barrier", "N", "accesses/proc", "waiting", "modules", "depth",
         "sim/model"],
        rows,
        title=(
            f"Scaling to N={max(params['n_values'])}: flat adaptive "
            f"(base {params['flag_base']}) vs combining-tree "
            f"(degree {params['tree_degree']}) vs hierarchical "
            f"(degree {params['hier_degree']}), A={params['interval_a']}"
        ),
        float_format="%.1f",
    )
    text += (
        "\nsim/model is flat simulation over max(Model 1, Model 2); tree "
        "rows show how much of the linear-in-N term the hierarchy absorbs "
        "(modules scale with N instead of staying at one hot pair)."
    )
    if network_rows:
        text += "\n\n" + render_table(
            ["N", "Omega stages", "collision rate", "attempts/msg"],
            network_rows,
            title="Release-broadcast probe: hot-spot traffic, stages = log2(N)",
            float_format="%.2f",
        )
    return ExperimentResult(
        "scale1024", "scaling beyond the paper", text, data
    )


register(
    ExperimentSpec(
        id="scale1024",
        title="scaling beyond the paper",
        section="Extension (1024+ processors)",
        summary=(
            "Extension: N=256..4096 — flat adaptive backoff vs combining-"
            "tree vs hierarchical barriers, with Model 1/2 break points."
        ),
        params=(
            Param("repetitions", "int", 20),
            Param("n_values", "ints", (256, 512, 1024, 2048, 4096)),
            Param("interval_a", "int", 100, "arrival interval A"),
            Param("tree_degree", "int", 4, "combining-tree fan-in",
                  fuzz={"type": "choice", "values": [2, 3, 4]}),
            Param("hier_degree", "int", 16,
                  "hierarchical (cluster-level) fan-in",
                  fuzz={"type": "choice", "values": [2, 4, 8]}),
            Param("flag_base", "int", 2, "adaptive flag-backoff base",
                  fuzz={"type": "choice", "values": [2, 3, 4]}),
            Param("probe_horizon", "int", 400,
                  "Omega hot-spot probe horizon in cycles; 0 disables",
                  fuzz={"type": "int", "lo": 0, "hi": 120}),
            Param("seed", "int", 0),
            Param("backend", "str", "",
                  "episode engine: python|numpy|auto; '' = the ambient "
                  "--backend default"),
        ),
        axis="n_values",
        run_point=_scale_point,
        aggregate=_scale_aggregate,
    )
)
