"""Trace-statistics experiments: Table 3, Figure 3, validation, traffic."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.figures import render_series
from repro.analysis.tables import render_table
from repro.barrier.simulator import simulate_barrier
from repro.barrier.validation import validate_uniform_model
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.registry.common import APP_NAMES, coherence_stats, scheduled_trace
from repro.registry.result import ExperimentResult
from repro.registry.spec import ExperimentSpec, Param, register
from repro.sim.stats import Series

# -- table3 --------------------------------------------------------------


def _table3_point(scale, cpu_counts, apps):
    (num_cpus,) = cpu_counts
    intervals = []
    for app in apps:
        trace = scheduled_trace(app, num_cpus, scale)
        intervals.append([trace.mean_interval_a(), trace.mean_interval_e()])
    return {"intervals": intervals}


def _table3_aggregate(points, params):
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for app_index, app in enumerate(params["apps"]):
        per_app: Dict[int, Tuple[float, float]] = {}
        for num_cpus in params["cpu_counts"]:
            a_mean, e_mean = points[f"P={num_cpus}"]["intervals"][app_index]
            per_app[num_cpus] = (a_mean, e_mean)
            rows.append([app, num_cpus, a_mean, e_mean])
        data[app] = per_app
    text = render_table(
        ["Application", "Processors", "A", "E"],
        rows,
        title="Table 3: mean cycles between first/last arrivals (A) and barriers (E)",
        float_format="%.0f",
    )
    return ExperimentResult("table3", "barrier interval statistics", text, data)


register(
    ExperimentSpec(
        id="table3",
        title="barrier interval statistics",
        section="Section 5, Table 3",
        summary="Table 3: mean A and E intervals per application and CPU count.",
        params=(
            Param("scale", "float", 1.0, "trace size multiplier"),
            Param("cpu_counts", "ints", (16, 64)),
            Param("apps", "strs", APP_NAMES),
        ),
        axis="cpu_counts",
        run_point=_table3_point,
        aggregate=_table3_aggregate,
    )
)


# -- figure3 -------------------------------------------------------------


def _figure3_point(scale, num_cpus, apps, bins):
    (app,) = apps
    trace = scheduled_trace(app, num_cpus, scale)
    offsets = trace.arrival_offsets()
    span = max(offsets) if offsets else 1
    span = max(span, 1)
    counts = [0] * bins
    for offset in offsets:
        index = min(offset * bins // (span + 1), bins - 1)
        counts[index] += 1
    total = sum(counts) or 1
    return {"fractions": [count / total for count in counts]}


def _figure3_aggregate(points, params):
    num_cpus = params["num_cpus"]
    bins = params["bins"]
    series: Dict[str, Series] = {}
    data: Dict[str, List[float]] = {}
    for app in params["apps"]:
        fractions = points[f"app={app}"]["fractions"]
        curve = Series(label=f"{app}{num_cpus}")
        for b, fraction in enumerate(fractions):
            curve.add((b + 0.5) / bins, fraction)
        series[f"{app}{num_cpus}"] = curve
        data[app] = list(fractions)
    text = render_series(
        series,
        x_label="fraction of A",
        title=f"Figure 3: arrival distribution within A ({num_cpus} CPUs)",
        float_format="%.3f",
    )
    return ExperimentResult("figure3", "arrival distribution within A", text, data)


register(
    ExperimentSpec(
        id="figure3",
        title="arrival distribution within A",
        section="Section 5, Figure 3",
        summary="Figure 3: arrival distribution within the interval A.",
        params=(
            Param("scale", "float", 1.0, "trace size multiplier"),
            Param("num_cpus", "int", 16),
            Param("apps", "strs", APP_NAMES),
            Param("bins", "int", 10, "histogram bins across A"),
        ),
        axis="apps",
        run_point=_figure3_point,
        aggregate=_figure3_aggregate,
    )
)


# -- validation ----------------------------------------------------------


def _validation_point(scale, num_cpus, repetitions, apps, seed):
    (app,) = apps
    trace = scheduled_trace(app, num_cpus, scale)
    result = validate_uniform_model(trace, repetitions=repetitions, seed=seed)
    return {
        "uniform": result.uniform.mean_accesses,
        "empirical": result.empirical.mean_accesses,
        "error_pct": result.access_error_pct,
    }


def _validation_aggregate(points, params):
    rows = []
    data: Dict[str, float] = {}
    for app in params["apps"]:
        payload = points[f"app={app}"]
        data[app] = payload["error_pct"]
        rows.append(
            [app, payload["uniform"], payload["empirical"], payload["error_pct"]]
        )
    text = render_table(
        ["Application", "uniform model", "measured arrivals", "error %"],
        rows,
        title=(
            "Uniform-arrival model validation (accesses/process, "
            f"{params['num_cpus']} CPUs, no backoff)"
        ),
        float_format="%.1f",
    )
    return ExperimentResult("validation", "uniform-model validation", text, data)


register(
    ExperimentSpec(
        id="validation",
        title="uniform-model validation",
        section="Sections 5 / 7.1",
        summary="Validate the uniform-arrival model against measured arrivals.",
        params=(
            Param("scale", "float", 1.0, "trace size multiplier"),
            Param("num_cpus", "int", 64),
            Param("repetitions", "int", 100),
            Param("apps", "strs", APP_NAMES),
            Param("seed", "int", 0),
        ),
        axis="apps",
        run_point=_validation_point,
        aggregate=_validation_aggregate,
    )
)


# -- fft_traffic ---------------------------------------------------------


def _fft_traffic_point(scale, num_cpus, repetitions, seed):
    trace = scheduled_trace("FFT", num_cpus, scale)
    stats = coherence_stats("FFT", num_cpus, num_cpus, True, scale)
    cycles = max(trace.cycles, 1)
    base_rate = stats.data_traffic / (cycles * num_cpus)

    # Barrier period: one barrier every (A + E) cycles in the trace.
    period = max(trace.mean_interval_a() + trace.mean_interval_e(), 1.0)
    interval_a = max(int(round(trace.mean_interval_a())), 1)

    def barrier_rate(policy) -> float:
        point = simulate_barrier(
            num_cpus, interval_a, policy, repetitions=repetitions, seed=seed
        )
        return point.mean_accesses / period

    no_backoff_rate = barrier_rate(NoBackoff())
    base8_rate = barrier_rate(ExponentialFlagBackoff(base=8))

    # Trace-measured synchronization traffic rate (sync uncached: two
    # transactions per sync reference), for model validation.
    measured_sync_rate = 2 * trace.sync_refs / (cycles * num_cpus)

    return {
        "base_rate": base_rate,
        "with_barriers": base_rate + no_backoff_rate,
        "with_base8": base_rate + base8_rate,
        "measured": base_rate + measured_sync_rate,
    }


def _fft_traffic_aggregate(points, params):
    payload = points["all"]
    data = {
        "base_rate": payload["base_rate"],
        "with_barriers": payload["with_barriers"],
        "with_base8": payload["with_base8"],
        "measured": payload["measured"],
    }
    rows = [
        ["base data traffic (no sync)", data["base_rate"]],
        ["+ barriers, no backoff (model)", data["with_barriers"]],
        ["+ barriers, base-8 backoff (model)", data["with_base8"]],
        ["+ sync refs, trace-measured", data["measured"]],
    ]
    text = render_table(
        ["Configuration", "accesses/cycle/processor"],
        rows,
        title=(
            f"Section 7.1: FFT average network traffic "
            f"({params['num_cpus']} CPUs)"
        ),
        float_format="%.4f",
    )
    text += (
        "\nPaper: 0.133 base -> 0.136 with barriers -> 0.134 with base-8 "
        "backoff; model 0.136 vs measured 0.135."
    )
    return ExperimentResult("fft_traffic", "FFT average traffic", text, data)


register(
    ExperimentSpec(
        id="fft_traffic",
        title="FFT average traffic",
        section="Section 7.1",
        summary="Section 7.1: FFT average network traffic with and without backoff.",
        params=(
            Param("scale", "float", 1.0, "trace size multiplier"),
            Param("num_cpus", "int", 64),
            Param("repetitions", "int", 100),
            Param("seed", "int", 0),
        ),
        run_point=_fft_traffic_point,
        aggregate=_fft_traffic_aggregate,
    )
)
