"""repro.registry — the declarative experiment registry.

Every paper artifact (Tables 1-3, Figures 1-10, the extension studies)
is declared as an :class:`ExperimentSpec` in a thin module under
:mod:`repro.registry.experiments`: a typed parameter schema, a sweep
axis decomposing the experiment into independent points, a per-point
``run_point`` callable, and an ``aggregate`` step rebuilding the
report.  :func:`run` executes a spec through the shared
:mod:`repro.exec` engine when an execution config is active, so every
experiment supports ``--jobs``, ``--cache``, fault plans and obs
manifests uniformly.

The core types import before the spec modules on purpose:
``repro.analysis.experiments`` (the compatibility shim) imports only
the names below, and the spec modules import analysis rendering
helpers, so loading the actual experiment definitions is deferred to
:func:`load_specs` / first registry access.
"""

from repro.registry.result import ExperimentResult
from repro.registry.runner import experiment_points, main, run
from repro.registry.spec import (
    AXIS_KEY_FORMATS,
    DEFAULT_FUZZ_DOMAINS,
    ExperimentSpec,
    Param,
    ParameterError,
    UnknownExperimentError,
    all_specs,
    experiment_ids,
    get_spec,
    load_specs,
    register,
)

__all__ = [
    "AXIS_KEY_FORMATS",
    "DEFAULT_FUZZ_DOMAINS",
    "ExperimentResult",
    "ExperimentSpec",
    "Param",
    "ParameterError",
    "UnknownExperimentError",
    "all_specs",
    "experiment_ids",
    "experiment_points",
    "get_spec",
    "load_specs",
    "main",
    "register",
    "run",
]
