"""The multiprocessor trace record format.

A trace is a time-ordered sequence of :class:`TraceRecord` objects.  The
paper's traces carry the same information: which processor issued the
reference, whether it reads, writes or atomically read-modify-writes
(fetch&add), the address, and whether the reference is a
synchronization reference (barrier variables, barrier flags, loop index
variables) or ordinary data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Op(Enum):
    """Memory operation kind."""

    READ = "read"
    WRITE = "write"
    RMW = "rmw"  # atomic read-modify-write (fetch&add)

    @property
    def is_write_like(self) -> bool:
        """True for operations that need exclusive ownership."""
        return self is not Op.READ


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference in a multiprocessor trace.

    Attributes:
        cpu: issuing processor id.
        op: operation kind.
        address: byte address.
        is_sync: True for synchronization references.
    """

    __slots__ = ("cpu", "op", "address", "is_sync")

    cpu: int
    op: Op
    address: int
    is_sync: bool

    def __post_init__(self) -> None:
        if self.cpu < 0:
            raise ValueError(f"cpu must be non-negative, got {self.cpu}")
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
