"""SPMD program skeletons in the Epex/Fortran style.

The paper's applications are written in the Single-Program-Multiple-Data
model: all processes execute the same program, and synchronization
constructs embedded in the code determine which sections each processor
executes.  The model has

- **parallel sections** (loops whose iterations are handed out by
  fetch&add self-scheduling),
- **serial sections** (one processor executes, the rest wait), and
- **replicate sections** (every processor executes its own copy).

A :class:`Program` is an ordered list of sections over an
:class:`AddressSpace`.  The post-mortem scheduler
(:mod:`repro.trace.scheduler`) turns a program into a multiprocessor
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple, Union

from repro.trace.record import Op

#: One reference of a section body: (operation, byte address).
Ref = Tuple[Op, int]

#: Iteration bodies may be a fixed list or a function of the iteration index.
RefsForIteration = Union[Sequence[Ref], Callable[[int], Sequence[Ref]]]


class AddressSpace:
    """A bump allocator that keeps logical regions block-aligned.

    Synchronization variables are given a block each so that they never
    false-share with data (the paper treats them as distinct words in
    distinct modules).
    """

    def __init__(self, block_bytes: int = 16) -> None:
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ValueError("block_bytes must be a positive power of two")
        self.block_bytes = block_bytes
        self._next = 0
        self.regions: List[Tuple[str, int, int]] = []  # (name, base, size)

    def alloc(self, name: str, size_bytes: int) -> int:
        """Reserve ``size_bytes`` (block-aligned); returns the base address."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        base = self._next
        rounded = -(-size_bytes // self.block_bytes) * self.block_bytes
        self._next += rounded
        self.regions.append((name, base, rounded))
        return base

    def alloc_sync(self, name: str) -> int:
        """Reserve one block for a synchronization variable."""
        return self.alloc(f"sync:{name}", self.block_bytes)

    @property
    def size(self) -> int:
        return self._next


@dataclass
class ParallelLoop:
    """A self-scheduled parallel loop.

    Attributes:
        name: label (used in reports).
        iterations: total iteration count.  The paper stresses that
            counts which are not nice multiples of the processor count
            produce load imbalance and hence synchronization waiting.
        body: the references one iteration issues — either a fixed
            sequence or a callable of the iteration index (so iteration
            lengths may vary, as they do in SIMPLE).
    """

    name: str
    iterations: int
    body: RefsForIteration

    def refs_for(self, iteration: int) -> Sequence[Ref]:
        if callable(self.body):
            return self.body(iteration)
        return self.body

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"loop {self.name!r}: iterations must be >= 1")


@dataclass
class SerialSection:
    """A section executed by exactly one processor while the rest wait."""

    name: str
    body: Sequence[Ref]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError(f"serial section {self.name!r} must have a body")


@dataclass
class ReplicateSection:
    """A section executed by every processor on private data.

    ``body_for(cpu)`` returns the references processor ``cpu`` issues.
    Replicate sections do not synchronize.
    """

    name: str
    body_for: Callable[[int], Sequence[Ref]]


Section = Union[ParallelLoop, SerialSection, ReplicateSection]


@dataclass
class Program:
    """An ordered SPMD program over an address space."""

    name: str
    address_space: AddressSpace
    sections: List[Section] = field(default_factory=list)

    def add(self, section: Section) -> "Program":
        self.sections.append(section)
        return self

    @property
    def num_barriers(self) -> int:
        """Barriers the scheduler will insert (one per loop/serial section)."""
        return sum(
            1
            for section in self.sections
            if isinstance(section, (ParallelLoop, SerialSection))
        )

    def __len__(self) -> int:
        return len(self.sections)
