"""Trace persistence: save/load scheduled traces as compressed npz.

Scheduling a full-scale application takes seconds and several
experiments reuse the same trace; persisting it makes runs across
processes (and papers-worth of pointer configurations) cheap.  The
format stores the compact column representation plus the barrier
observations, and round-trips exactly.
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from repro.trace.scheduler import BarrierObservation, ScheduledTrace

#: Format version written into every file (bump on layout changes).
FORMAT_VERSION = 1


def save_trace(trace: ScheduledTrace, path: Union[str, "os.PathLike"]) -> None:
    """Write ``trace`` to ``path`` (numpy .npz, compressed)."""
    cpus, ops, addresses, sync = trace.raw_columns()
    barriers = [
        {
            "section_name": barrier.section_name,
            "variable_address": barrier.variable_address,
            "flag_address": barrier.flag_address,
            "arrivals": barrier.arrivals,
            "first_poll_cycle": barrier.first_poll_cycle,
            "flag_set_cycle": barrier.flag_set_cycle,
        }
        for barrier in trace.barriers
    ]
    meta = {
        "version": FORMAT_VERSION,
        "num_cpus": trace.num_cpus,
        "program_name": trace.program_name,
        "cycles": trace.cycles,
        "barriers": barriers,
    }
    np.savez_compressed(
        path,
        cpus=np.asarray(cpus, dtype=np.int32),
        ops=np.asarray(ops, dtype=np.int8),
        addresses=np.asarray(addresses, dtype=np.int64),
        sync=np.asarray(sync, dtype=np.bool_),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_trace(path: Union[str, "os.PathLike"]) -> ScheduledTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        trace = ScheduledTrace(meta["num_cpus"], meta["program_name"])
        trace.cycles = meta["cycles"]
        cpus = data["cpus"].tolist()
        ops = data["ops"].tolist()
        addresses = data["addresses"].tolist()
        sync = data["sync"].tolist()
    trace._cpus = cpus
    trace._ops = ops
    trace._addresses = addresses
    trace._sync = [bool(s) for s in sync]
    trace.sync_refs = sum(trace._sync)
    for record in meta["barriers"]:
        observation = BarrierObservation(
            section_name=record["section_name"],
            variable_address=record["variable_address"],
            flag_address=record["flag_address"],
            arrivals=[tuple(pair) for pair in record["arrivals"]],
            first_poll_cycle=record["first_poll_cycle"],
            flag_set_cycle=record["flag_set_cycle"],
        )
        trace.barriers.append(observation)
    return trace
