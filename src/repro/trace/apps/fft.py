"""Synthetic FFT: the paper's best-balanced application.

    "The Fast Fourier Transform (FFT) application ... is a parallelized
    version of a Radix-2 FFT computation in two variables on a random
    array of complex numbers.  Since we used a problem size of 128, the
    parallel loops working on the 128x128 matrix contained 128-way
    parallelism. ... We traced two passes of the TF2 routine ... first
    by rows and then by columns.  FFT is an example of a highly uniform
    parallel application in which processors execute parallel loop
    iterations of approximately equal length and arrive at barriers
    within close intervals."

The model: two parallel loops ("tf2-rows", "tf2-cols") of
``problem_size`` iterations each.  Every iteration sweeps one row
(column) of the matrix — read/write per element, plus reads of a shared
twiddle-factor table — so every iteration has *identical* length.
With 64 processors and 128 iterations each processor claims exactly two
iterations per loop: near-perfect balance, tiny A, huge E, and a
synchronization-reference fraction well under a percent.
"""

from __future__ import annotations

from repro.trace.apps.base import alloc_matrix, element_address, stride_body
from repro.trace.program import AddressSpace, ParallelLoop, Program
from repro.trace.record import Op


def build_fft(problem_size: int = 128, block_bytes: int = 16) -> Program:
    """Build the synthetic FFT program.

    Args:
        problem_size: matrix dimension (the paper used 128).  The two
            loops each have ``problem_size`` iterations of identical
            length, so any processor count dividing ``problem_size``
            is perfectly balanced.
        block_bytes: cache-block size of the target memory system.
    """
    if problem_size < 2:
        raise ValueError("problem_size must be >= 2")
    space = AddressSpace(block_bytes=block_bytes)
    matrix = alloc_matrix(space, "fft-matrix", problem_size * problem_size)
    twiddle = alloc_matrix(space, "fft-twiddle", problem_size)

    def row_body(iteration: int):
        # Butterfly over one row: two read/write passes per element
        # (complex arithmetic), plus a twiddle-factor read per element.
        base = iteration * problem_size
        refs = stride_body(
            matrix, base, problem_size, reads_per_element=2, writes_per_element=2
        )
        for k in range(problem_size):
            refs.append((Op.READ, element_address(twiddle, k)))
        return refs

    def col_body(iteration: int):
        # Column pass: same work, strided through the matrix.
        refs = []
        for row in range(problem_size):
            address = element_address(matrix, row * problem_size + iteration)
            refs.append((Op.READ, address))
            refs.append((Op.READ, address))
            refs.append((Op.WRITE, address))
            refs.append((Op.WRITE, address))
        for k in range(problem_size):
            refs.append((Op.READ, element_address(twiddle, k)))
        return refs

    program = Program(name="FFT", address_space=space)
    program.add(ParallelLoop("tf2-rows", problem_size, row_body))
    program.add(ParallelLoop("tf2-cols", problem_size, col_body))
    return program
