"""Synthetic SIMPLE: many mixed loops, serial sections, uneven balance.

    "The SIMPLE code models hydrodynamic and thermal behavior of fluids
    in two dimensions. ... many of the parallel sections in SIMPLE do
    not contain fully 128-way parallelism.  The resulting distribution
    of work among the 64 processors in our simulations is uneven. ...
    SIMPLE contains a number of small and large parallel loops (20 in
    all) ... SIMPLE also contains many small serial sections (5) in
    which one processor executes the serial section while all the rest
    wait at the bottom. ... Parallel loop iteration lengths in SIMPLE
    vary occasionally, also contributing to more synchronization
    accesses due to more processor waiting at the end of parallel loops
    with uneven loop iterations."

The model: 20 parallel loops whose iteration counts are deliberately
*not* nice multiples of 64 and whose iteration lengths jitter around a
per-loop mean, 5 short serial sections, and replicate sections of
balanced per-processor local computation between loops (the SPMD model
executes replicate code on every processor with no synchronization).
Processors that run out of loop work — or wait below a serial section —
spin on the barrier flag, producing SIMPLE's characteristic
mid-single-digit synchronization-reference fraction and its A ~ E
interval structure at 64 processors.
"""

from __future__ import annotations

from repro.trace.apps.base import alloc_matrix, gather_body, stride_body
from repro.trace.program import (
    AddressSpace,
    ParallelLoop,
    Program,
    ReplicateSection,
    SerialSection,
)
from repro.sim.rng import spawn_stream

# (iterations, mean body length) for the 20 parallel loops.  Counts sit
# near — but not on — multiples of 64, plus a handful of genuinely small
# loops, mirroring "not all the parallel loops contained a nice multiple
# of iterations which could be distributed evenly among all processors".
_LOOP_SHAPES = [
    (128, 210),
    (124, 180),
    (126, 240),
    (120, 195),
    (64, 225),
    (122, 165),
    (56, 135),
    (128, 210),
    (124, 180),
    (60, 120),
    (126, 240),
    (120, 195),
    (128, 225),
    (124, 165),
    (40, 105),
    (126, 210),
    (64, 225),
    (122, 180),
    (52, 120),
    (124, 195),
]

#: Body lengths of the 5 small serial sections.
_SERIAL_LENGTHS = [30, 40, 25, 45, 35]

#: Per-processor length of the replicate (local-computation) sections.
_REPLICATE_LENGTH = 240


def build_simple(
    scale: float = 1.0, seed: int = 0, block_bytes: int = 16
) -> Program:
    """Build the synthetic SIMPLE program.

    Args:
        scale: multiplies loop iteration counts and body lengths; tests
            use ``scale < 1`` for miniature runs with identical
            structure.
        seed: seed for the per-iteration length jitter and gather
            address streams.
        block_bytes: cache-block size of the target memory system.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    space = AddressSpace(block_bytes=block_bytes)
    mesh_words = max(int(128 * 128 * min(scale, 1.0)), 256)
    mesh = alloc_matrix(space, "simple-mesh", mesh_words)
    coefficients = alloc_matrix(space, "simple-coefficients", 512)
    # One private scratch region per possible processor (128 is an upper
    # bound on the processor counts the experiments use).
    private_words = 256
    private = alloc_matrix(space, "simple-private", 128 * private_words)

    def replicate_body(section_id: int):
        length = max(int(_REPLICATE_LENGTH * scale), 4)

        def body_for(cpu: int):
            base = private + cpu * private_words * 8
            return stride_body(base, 0, max(length // 2, 1))

        return body_for

    program = Program(name="SIMPLE", address_space=space)
    serial_cursor = 0
    for loop_id, (iterations, mean_length) in enumerate(_LOOP_SHAPES):
        count = max(int(iterations * scale), 2)
        length = max(int(mean_length * scale), 4)

        def make_body(loop_id=loop_id, length=length, count=count):
            body_rng = spawn_stream(seed, f"simple-loop-{loop_id}")
            # Jittered per-iteration lengths, +/- 5% around the mean
            # ("iteration lengths vary occasionally").
            low = max(19 * length // 20, 2)
            high = length + length // 20 + 1
            jitter = body_rng.integers(low, high, size=count)

            def body(iteration: int):
                n = int(jitter[iteration % count])
                start = (loop_id * 977 + iteration * n) % max(mesh_words - n, 1)
                sweep = stride_body(mesh, start, max(2 * n // 5, 1))
                lookups = gather_body(
                    spawn_stream(seed, f"simple-{loop_id}-{iteration}"),
                    coefficients,
                    512,
                    max(n - len(sweep), 1),
                    write_fraction=0.03,
                )
                return sweep + lookups

            return body

        program.add(ParallelLoop(f"simple-loop-{loop_id}", count, make_body()))
        program.add(
            ReplicateSection(f"simple-local-{loop_id}", replicate_body(loop_id))
        )

        # Interleave the 5 serial sections after every 4th loop.
        if loop_id % 4 == 3 and serial_cursor < len(_SERIAL_LENGTHS):
            serial_length = max(int(_SERIAL_LENGTHS[serial_cursor] * scale), 4)
            serial_refs = gather_body(
                spawn_stream(seed, f"simple-serial-{serial_cursor}"),
                mesh,
                mesh_words,
                serial_length,
                write_fraction=0.1,
            )
            program.add(
                SerialSection(f"simple-serial-{serial_cursor}", serial_refs)
            )
            serial_cursor += 1
    return program
