"""Synthetic WEATHER: the paper's worst-balanced application.

    "The WEATHER code forecasts the weather ... the grid was 108 by 72.
    Parallel sections of the COMP1 routine, which calculates horizontal
    and vertical advection differences in the atmosphere, were traced.
    The load-balancing in this application is far worse than in FFT and
    SIMPLE, given that it was simulated with 64 processors.  Since the
    parallelism is derived by simultaneously working on rows/columns of
    the atmosphere grid, and the dimensions of the grid are not
    multiples of 64, many processors are forced to idle in parallel
    sections which are followed by barriers."

The model: each COMP1 pass is a row loop (108 iterations — 20 of 64
processors idle through the straggler round), a replicate section of
balanced per-processor local work, then a column loop (72 iterations —
56 processors idle through its straggler round).  The idle processors
spin on the barrier flag, which is why WEATHER's synchronization
fraction (~8 %) is the highest of the three applications and why its A
and E intervals are comparable in size at 64 processors.
"""

from __future__ import annotations

from repro.trace.apps.base import alloc_matrix, element_address, stride_body
from repro.trace.program import (
    AddressSpace,
    ParallelLoop,
    Program,
    ReplicateSection,
)
from repro.trace.record import Op

#: Grid extents from the paper.
GRID_ROWS = 108
GRID_COLS = 72

#: Per-processor length of the replicate (local-computation) sections.
_REPLICATE_LENGTH = 560


def build_weather(
    scale: float = 1.0, num_passes: int = 3, block_bytes: int = 16
) -> Program:
    """Build the synthetic WEATHER program.

    Args:
        scale: multiplies grid extents and body lengths (tests shrink it).
        num_passes: COMP1 advection passes; each pass contributes one
            row loop, one replicate section and one column loop.
        block_bytes: cache-block size of the target memory system.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if num_passes < 1:
        raise ValueError("num_passes must be >= 1")
    rows = max(int(GRID_ROWS * scale), 3)
    cols = max(int(GRID_COLS * scale), 2)
    row_work = max(int(280 * scale), 4)  # refs per row iteration
    col_work = max(int(48 * scale), 4)  # refs per column iteration
    replicate_length = max(int(_REPLICATE_LENGTH * scale), 4)

    space = AddressSpace(block_bytes=block_bytes)
    grid = alloc_matrix(space, "weather-grid", rows * cols)
    state_vars = alloc_matrix(space, "weather-state", 9 * cols)
    private_words = 256
    private = alloc_matrix(space, "weather-private", 128 * private_words)

    def row_body(iteration: int):
        # Horizontal advection over one row: sweep part of the row with
        # multiple read/write passes, read the per-altitude state vars.
        span = min(cols, max(row_work // 4, 1))
        refs = stride_body(
            grid,
            iteration * cols,
            span,
            reads_per_element=2,
            writes_per_element=2,
        )
        for layer in range(9):
            refs.append((Op.READ, element_address(state_vars, layer * cols)))
        return refs

    def col_body(iteration: int):
        # Vertical advection over one column: short strided sweep.
        refs = []
        for step in range(max(col_work // 2, 1)):
            row = (step * 7) % rows
            address = element_address(grid, row * cols + iteration)
            refs.append((Op.READ, address))
            refs.append((Op.WRITE, address))
        return refs

    def replicate_body_for(cpu: int):
        base = private + cpu * private_words * 8
        return stride_body(base, 0, max(replicate_length // 2, 1))

    program = Program(name="WEATHER", address_space=space)
    for pass_id in range(num_passes):
        program.add(ParallelLoop(f"comp1-rows-{pass_id}", rows, row_body))
        program.add(
            ReplicateSection(f"comp1-local-{pass_id}", replicate_body_for)
        )
        program.add(ParallelLoop(f"comp1-cols-{pass_id}", cols, col_body))
    return program
