"""Shared helpers for the synthetic application builders."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.program import AddressSpace, Ref
from repro.trace.record import Op

#: Bytes per matrix/grid element in the synthetic address maps.
WORD_BYTES = 8


def element_address(base: int, index: int) -> int:
    """Byte address of the ``index``-th word of a region."""
    return base + index * WORD_BYTES


def stride_body(
    base: int,
    start: int,
    count: int,
    reads_per_element: int = 1,
    writes_per_element: int = 1,
) -> List[Ref]:
    """A loop-iteration body that sweeps ``count`` consecutive elements.

    Models a stencil/butterfly inner loop: each element is read
    ``reads_per_element`` times and written ``writes_per_element``
    times, in element order.
    """
    refs: List[Ref] = []
    for offset in range(start, start + count):
        address = element_address(base, offset)
        refs.extend((Op.READ, address) for __ in range(reads_per_element))
        refs.extend((Op.WRITE, address) for __ in range(writes_per_element))
    return refs


def gather_body(
    rng: np.random.Generator,
    shared_base: int,
    shared_words: int,
    length: int,
    write_fraction: float = 0.3,
) -> List[Ref]:
    """A body of ``length`` references scattered over a shared region.

    Models irregular access (table lookups, coefficient reads): each
    reference picks a uniformly random word and is a write with
    probability ``write_fraction``.
    """
    refs: List[Ref] = []
    indices = rng.integers(shared_words, size=length)
    writes = rng.random(length) < write_fraction
    for index, is_write in zip(indices, writes):
        op = Op.WRITE if is_write else Op.READ
        refs.append((op, element_address(shared_base, int(index))))
    return refs


def interleave(*bodies: List[Ref]) -> List[Ref]:
    """Round-robin interleave several reference streams into one body."""
    result: List[Ref] = []
    cursors = [0] * len(bodies)
    remaining = sum(len(body) for body in bodies)
    while remaining:
        for which, body in enumerate(bodies):
            if cursors[which] < len(body):
                result.append(body[cursors[which]])
                cursors[which] += 1
                remaining -= 1
    return result


def alloc_matrix(space: AddressSpace, name: str, words: int) -> int:
    """Reserve a region of ``words`` elements; returns the base address."""
    return space.alloc(name, words * WORD_BYTES)
