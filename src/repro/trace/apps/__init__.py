"""Synthetic models of the paper's three applications.

The paper traced FFT, SIMPLE and WEATHER (Epex/Fortran, SPMD) on an IBM
S/370 via PSIMUL.  Those traces are not available; these modules build
:class:`~repro.trace.program.Program` objects with the same *structure*
— the property the paper's measurements actually depend on:

- **FFT** — few, large, perfectly balanced parallel loops (128-way);
  tiny arrival spread A, enormous inter-barrier interval E, ~0.2 %
  synchronization references.
- **SIMPLE** — 20 parallel loops of mixed sizes plus 5 serial sections;
  uneven iteration counts and lengths; ~5 % synchronization references.
- **WEATHER** — parallel loops over a 108 x 72 grid whose extents are
  not multiples of 64, forcing many processors to idle at barriers;
  ~8 % synchronization references.

Each builder accepts a ``scale`` knob so tests can run miniature
versions of the same structure.
"""

from repro.trace.apps.fft import build_fft
from repro.trace.apps.simple import build_simple
from repro.trace.apps.weather import build_weather

APP_BUILDERS = {
    "FFT": build_fft,
    "SIMPLE": build_simple,
    "WEATHER": build_weather,
}


def build_app(name: str, scale: float = 1.0, block_bytes: int = 16):
    """Build an application program by name at the given scale.

    ``scale`` shrinks the problem uniformly (FFT's problem size, the
    other apps' loop counts and body lengths) while preserving the
    structure the experiments depend on.
    """
    key = name.upper()
    if key == "FFT":
        problem_size = max(int(128 * scale), 4)
        return build_fft(problem_size=problem_size, block_bytes=block_bytes)
    if key == "SIMPLE":
        return build_simple(scale=scale, block_bytes=block_bytes)
    if key == "WEATHER":
        return build_weather(scale=scale, block_bytes=block_bytes)
    raise KeyError(f"unknown application {name!r}; have FFT, SIMPLE, WEATHER")


__all__ = [
    "build_fft",
    "build_simple",
    "build_weather",
    "build_app",
    "APP_BUILDERS",
]
