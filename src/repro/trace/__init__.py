"""Applications and post-mortem trace scheduling (Appendix A methodology).

- :mod:`repro.trace.record` — the multiprocessor trace record format.
- :mod:`repro.trace.program` — SPMD program skeletons (parallel loops,
  serial sections, replicate sections) in the Epex/Fortran style.
- :mod:`repro.trace.apps` — synthetic FFT, SIMPLE and WEATHER models.
- :mod:`repro.trace.scheduler` — the post-mortem scheduler that replays
  a program onto P processors with fetch&add self-scheduling, Tang–Yew
  barriers and round-robin reference issue.
"""

from repro.trace.record import Op, TraceRecord
from repro.trace.program import (
    AddressSpace,
    ParallelLoop,
    Program,
    ReplicateSection,
    SerialSection,
)
from repro.trace.io import load_trace, save_trace
from repro.trace.scheduler import (
    BarrierObservation,
    PostMortemScheduler,
    ScheduledTrace,
)

__all__ = [
    "Op",
    "TraceRecord",
    "AddressSpace",
    "Program",
    "ParallelLoop",
    "SerialSection",
    "ReplicateSection",
    "PostMortemScheduler",
    "ScheduledTrace",
    "BarrierObservation",
    "save_trace",
    "load_trace",
]
