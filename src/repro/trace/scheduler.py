"""Post-mortem scheduling of SPMD programs onto P processors.

Implements the paper's Appendix A methodology:

    "In EPEX/FORTRAN, synchronization constructs at the beginning of
    parallel and serial sections perform F&As on shared variables to
    determine task assignments to processes.  Barriers and waits at the
    end of loops and serial sections are simulated by arriving
    processors first incrementing a shared variable through a F&A and
    then polling a barrier flag until it is set by the last arriving
    processor. ... Our scheduler simulates a parallel execution of this
    trace, assigning processors references from the trace on a
    round-robin basis.  We assume that processors make a memory
    reference every cycle."

Every active processor issues exactly one memory reference per cycle.
Loop iterations are claimed by fetch&add on a per-loop index variable;
each loop and serial section ends in a barrier.  Two barrier styles are
supported:

- ``barrier_style="flat"`` (default): the Tang–Yew two-variable barrier
  the paper studies — fetch&add on the barrier variable, per-cycle
  polling of the barrier flag, last arrival writes the flag.
- ``barrier_style="tree"``: a software combining tree (Yew, Tseng &
  Lawrie) of Tang–Yew barriers with ``tree_degree``-way nodes.  The
  paper proposes this as the fix for directory-pointer overflow: "as
  long as the degree of the nodes in the combining tree is less than
  the number of pointers in the cache-directory, then synchronization
  variables will not result in extra invalidation traffic."

Internally the flat barrier *is* a one-node tree, so both styles share
one code path.  Barrier synchronization words alternate between two
address sets (the standard sense-reversal trick), so the same words are
re-shared across the whole run — exactly the widespread sharing the
paper studies.

Fetch&adds are atomic read-modify-writes of one memory word: only one
is granted per cycle per variable; a denied processor stalls and
retries, and only the granted operation enters the trace.  This is the
serialization the paper observes "at the loop index assignment" in FFT.

The scheduler records, per barrier: every processor's arrival time at
the (leaf) barrier variable, the first flag-poll time, and the
flag-set time.  These yield the paper's A and E intervals (Table 3)
and the arrival distribution within A (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.tracer import get_tracer
from repro.trace.program import (
    ParallelLoop,
    Program,
    ReplicateSection,
    SerialSection,
)
from repro.trace.record import Op, TraceRecord

# Per-cpu state machine codes.
_FETCH = 0  # issue F&A on the loop index variable
_BODY = 1  # issue the next body reference
_BAR_INC = 2  # issue F&A on the current barrier node's variable
_SET_FLAG = 3  # issue a flag write (node release)
_POLL = 4  # issue a flag read at the current barrier node
_TICKET = 5  # issue F&A on a serial-section ticket
_SERIAL_BODY = 6  # issue the next serial-body reference

_OP_CODES = {Op.READ: 0, Op.WRITE: 1, Op.RMW: 2}
_OPS = {0: Op.READ, 1: Op.WRITE, 2: Op.RMW}


@dataclass
class BarrierObservation:
    """What the scheduler saw at one barrier instance.

    Arrivals are recorded at the *leaf* barrier variable (for a flat
    barrier, the only one); ``flag_set_cycle`` is the root release.
    """

    section_name: str
    variable_address: int
    flag_address: int
    arrivals: List[Tuple[int, int]] = field(default_factory=list)  # (cpu, cycle)
    first_poll_cycle: Optional[int] = None
    flag_set_cycle: Optional[int] = None

    @property
    def first_arrival(self) -> int:
        return min(cycle for __, cycle in self.arrivals)

    @property
    def last_arrival(self) -> int:
        return max(cycle for __, cycle in self.arrivals)

    @property
    def interval_a(self) -> int:
        """Paper's A: first flag poll to flag set (clamped at 0)."""
        if self.flag_set_cycle is None:
            raise ValueError("barrier never completed")
        if self.first_poll_cycle is None:
            return 0  # single processor: nobody polled
        return max(self.flag_set_cycle - self.first_poll_cycle, 0)

    @property
    def arrival_span(self) -> int:
        """Last arrival minus first arrival at the barrier variable."""
        return self.last_arrival - self.first_arrival

    def arrival_offsets(self) -> List[int]:
        """Per-processor arrival offsets from the first arrival (Fig. 3)."""
        first = self.first_arrival
        return sorted(cycle - first for __, cycle in self.arrivals)


class ScheduledTrace:
    """The output of the post-mortem scheduler.

    Stores the trace compactly (parallel lists of ints) and yields
    :class:`TraceRecord` objects on iteration.
    """

    def __init__(self, num_cpus: int, program_name: str) -> None:
        self.num_cpus = num_cpus
        self.program_name = program_name
        self._cpus: List[int] = []
        self._ops: List[int] = []
        self._addresses: List[int] = []
        self._sync: List[bool] = []
        self.barriers: List[BarrierObservation] = []
        self.cycles = 0
        self.sync_refs = 0

    def append(self, cpu: int, op: Op, address: int, is_sync: bool) -> None:
        self._cpus.append(cpu)
        self._ops.append(_OP_CODES[op])
        self._addresses.append(address)
        self._sync.append(is_sync)
        if is_sync:
            self.sync_refs += 1

    def __len__(self) -> int:
        return len(self._cpus)

    def __iter__(self) -> Iterator[TraceRecord]:
        for cpu, op, address, sync in zip(
            self._cpus, self._ops, self._addresses, self._sync
        ):
            yield TraceRecord(cpu=cpu, op=_OPS[op], address=address, is_sync=sync)

    def raw_columns(self) -> Tuple[List[int], List[int], List[int], List[bool]]:
        """The compact storage: (cpus, op codes, addresses, sync flags).

        Op codes follow ``{0: READ, 1: WRITE, 2: RMW}``.  Used by the
        trace persistence layer; most callers should iterate records.
        """
        return self._cpus, self._ops, self._addresses, self._sync

    @property
    def sync_fraction(self) -> float:
        """Fraction of references that are synchronization references."""
        if not self._cpus:
            return 0.0
        return self.sync_refs / len(self._cpus)

    # ------------------------------------------------------------------
    # Table 3 / Figure 3 measurements.
    # ------------------------------------------------------------------

    def interval_a_values(self) -> List[int]:
        """A for every barrier (first poll to flag set)."""
        return [barrier.interval_a for barrier in self.barriers]

    def interval_e_values(self) -> List[int]:
        """E between consecutive barriers (last arrival to next first arrival)."""
        values = []
        for previous, current in zip(self.barriers, self.barriers[1:]):
            values.append(max(current.first_arrival - previous.last_arrival, 0))
        return values

    def mean_interval_a(self) -> float:
        values = self.interval_a_values()
        return sum(values) / len(values) if values else 0.0

    def mean_interval_e(self) -> float:
        values = self.interval_e_values()
        return sum(values) / len(values) if values else 0.0

    def arrival_offsets(self) -> List[int]:
        """Pooled per-barrier arrival offsets (Figure 3 raw data)."""
        offsets: List[int] = []
        for barrier in self.barriers:
            offsets.extend(barrier.arrival_offsets())
        return offsets


class _BarrierNode:
    """One node of a barrier's (possibly one-node) combining tree."""

    __slots__ = (
        "parent",
        "expected",
        "count",
        "variable_address",
        "flag_address",
        "flag_set_cycle",
    )

    def __init__(
        self,
        parent: Optional[int],
        expected: int,
        variable_address: int,
        flag_address: int,
    ) -> None:
        self.parent = parent
        self.expected = expected
        self.count = 0
        self.variable_address = variable_address
        self.flag_address = flag_address
        self.flag_set_cycle: Optional[int] = None


class _BarrierTree:
    """Barrier instance state: nodes, leaf assignment, observation."""

    __slots__ = ("nodes", "leaf_of", "observation")

    def __init__(
        self,
        nodes: List[_BarrierNode],
        leaf_of: List[int],
        observation: BarrierObservation,
    ) -> None:
        self.nodes = nodes
        self.leaf_of = leaf_of
        self.observation = observation

    def child_toward(self, node_id: int, cpu: int) -> int:
        """The child of ``node_id`` on cpu's path up from its leaf."""
        current = self.leaf_of[cpu]
        while (
            self.nodes[current].parent is not None
            and self.nodes[current].parent != node_id
        ):
            current = self.nodes[current].parent
        if self.nodes[current].parent != node_id:
            raise AssertionError(
                f"cpu {cpu} is not a descendant of node {node_id}"
            )
        return current


class _SectionRuntime:
    """Shared state of one section instance (index counter + barrier)."""

    __slots__ = ("counter", "index_address", "tree")

    def __init__(self, index_address: int, tree: Optional[_BarrierTree]):
        self.counter = 0
        self.index_address = index_address
        self.tree = tree


class PostMortemScheduler:
    """Replays a :class:`~repro.trace.program.Program` onto P processors.

    Args:
        program: the SPMD program to schedule.
        num_cpus: processor count.
        barrier_style: ``"flat"`` (Tang-Yew, the paper's subject) or
            ``"tree"`` (software combining tree).
        tree_degree: fan-in of each combining-tree node (>= 2), used
            only when ``barrier_style="tree"``.
    """

    def __init__(
        self,
        program: Program,
        num_cpus: int,
        barrier_style: str = "flat",
        tree_degree: int = 4,
    ) -> None:
        if num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        if barrier_style not in ("flat", "tree"):
            raise ValueError(
                f"barrier_style must be 'flat' or 'tree', got {barrier_style!r}"
            )
        if barrier_style == "tree" and tree_degree < 2:
            raise ValueError("tree_degree must be >= 2")
        self.program = program
        self.num_cpus = num_cpus
        self.barrier_style = barrier_style
        self.tree_degree = tree_degree if barrier_style == "tree" else num_cpus
        self._barrier_index = 0
        # Barrier node words, keyed (parity, level, group) and allocated
        # lazily: two alternating sets give sense-reversing reuse, so
        # the same words stay widely re-shared across the run.
        self._node_addresses: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        # Per-section synchronization words, allocated on first entry.
        self._section_sync_addr: Dict[int, int] = {}
        self._rmw_last_grant: Dict[int, int] = {}
        # Observability state, armed by run() when a tracer is active.
        self._trace_on = False
        self._rmw_stalls = 0

    #: Cycles between ``sched.progress`` events while tracing.
    PROGRESS_INTERVAL = 4096

    # ------------------------------------------------------------------
    # Address management.
    # ------------------------------------------------------------------

    def _sync_addr_for(self, section_idx: int, kind: str) -> int:
        if section_idx not in self._section_sync_addr:
            self._section_sync_addr[section_idx] = (
                self.program.address_space.alloc_sync(f"{kind}-{section_idx}")
            )
        return self._section_sync_addr[section_idx]

    def _node_addr(self, parity: int, level: int, group: int) -> Tuple[int, int]:
        key = (parity, level, group)
        if key not in self._node_addresses:
            space = self.program.address_space
            label = f"barrier-{parity}-L{level}G{group}"
            self._node_addresses[key] = (
                space.alloc_sync(f"{label}-var"),
                space.alloc_sync(f"{label}-flag"),
            )
        return self._node_addresses[key]

    def _build_barrier_tree(self, section_name: str) -> _BarrierTree:
        """Create the (possibly one-node) tree for a new barrier."""
        parity = self._barrier_index % 2
        self._barrier_index += 1
        degree = max(self.tree_degree, 2)
        nodes: List[_BarrierNode] = []
        level_start: List[int] = []
        level_shapes: List[Tuple[int, int]] = []  # (participants, groups)
        participants = self.num_cpus
        while True:
            groups = -(-participants // degree)
            level_shapes.append((participants, groups))
            if groups == 1:
                break
            participants = groups
        for level, (count, groups) in enumerate(level_shapes):
            level_start.append(len(nodes))
            for group in range(groups):
                lo = group * degree
                hi = min(lo + degree, count)
                var_addr, flag_addr = self._node_addr(parity, level, group)
                nodes.append(
                    _BarrierNode(
                        parent=None,
                        expected=hi - lo,
                        variable_address=var_addr,
                        flag_address=flag_addr,
                    )
                )
        for level in range(len(level_shapes) - 1):
            __, groups = level_shapes[level]
            for group in range(groups):
                child = nodes[level_start[level] + group]
                child.parent = level_start[level + 1] + group // degree
        leaf_of = [level_start[0] + cpu // degree for cpu in range(self.num_cpus)]
        root = nodes[level_start[-1]]
        observation = BarrierObservation(
            section_name=section_name,
            variable_address=nodes[leaf_of[0]].variable_address,
            flag_address=root.flag_address,
        )
        return _BarrierTree(nodes, leaf_of, observation)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 5_000_000) -> ScheduledTrace:
        """Execute the program; returns the multiprocessor trace.

        Raises RuntimeError if the program does not finish within
        ``max_cycles`` (a safety net against mis-specified programs).
        """
        program = self.program
        num_cpus = self.num_cpus
        trace = ScheduledTrace(num_cpus, program.name)
        sections = program.sections

        state = [0] * num_cpus
        section_idx = [0] * num_cpus
        body: List[Optional[List[Tuple[Op, int]]]] = [None] * num_cpus
        body_pos = [0] * num_cpus
        bar_node = [0] * num_cpus  # current barrier-tree node per cpu
        done = [False] * num_cpus
        runtimes: Dict[int, _SectionRuntime] = {}
        active = num_cpus

        def runtime_for(idx: int) -> _SectionRuntime:
            runtime = runtimes.get(idx)
            if runtime is None:
                section = sections[idx]
                if isinstance(section, (ParallelLoop, SerialSection)):
                    kind = "index" if isinstance(section, ParallelLoop) else "ticket"
                    index_address = self._sync_addr_for(idx, kind)
                    tree = self._build_barrier_tree(section.name)
                    trace.barriers.append(tree.observation)
                    runtime = _SectionRuntime(index_address, tree)
                else:
                    runtime = _SectionRuntime(index_address=0, tree=None)
                runtimes[idx] = runtime
            return runtime

        def enter_section(cpu: int, idx: int) -> None:
            nonlocal active
            if idx >= len(sections):
                done[cpu] = True
                active -= 1
                return
            section_idx[cpu] = idx
            section = sections[idx]
            if isinstance(section, ParallelLoop):
                state[cpu] = _FETCH
            elif isinstance(section, SerialSection):
                state[cpu] = _TICKET
            else:  # ReplicateSection
                refs = list(section.body_for(cpu))
                if refs:
                    body[cpu] = refs
                    body_pos[cpu] = 0
                    state[cpu] = _BODY
                else:
                    enter_section(cpu, idx + 1)

        for cpu in range(num_cpus):
            enter_section(cpu, 0)

        tracer = get_tracer()
        trace_on = tracer.enabled
        self._trace_on = trace_on
        self._rmw_stalls = 0

        cycle = 0
        while active:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"program {program.name!r} exceeded {max_cycles} cycles "
                    f"({active} processors still active)"
                )
            for cpu in range(num_cpus):
                if done[cpu]:
                    continue
                self._step(
                    cpu,
                    cycle,
                    trace,
                    sections,
                    state,
                    section_idx,
                    body,
                    body_pos,
                    bar_node,
                    runtime_for,
                    enter_section,
                )
            cycle += 1
            if trace_on and cycle % self.PROGRESS_INTERVAL == 0:
                tracer.emit(
                    "sched.progress",
                    cycle=cycle,
                    active=active,
                    refs=len(trace),
                    barriers=len(trace.barriers),
                )
        trace.cycles = cycle
        if trace_on:
            self._publish(tracer, trace)
        self._trace_on = False
        return trace

    def _publish(self, tracer, trace: ScheduledTrace) -> None:
        """Report the finished schedule to the active tracer."""
        tracer.count("sched.runs")
        tracer.count("sched.cycles", trace.cycles)
        tracer.count("sched.refs", len(trace))
        tracer.count("sched.sync_refs", trace.sync_refs)
        tracer.count("sched.rmw_stalls", self._rmw_stalls)
        tracer.count("sched.barriers", len(trace.barriers))
        issued: Dict[int, int] = {}
        for cpu in trace.raw_columns()[0]:
            issued[cpu] = issued.get(cpu, 0) + 1
        for cpu in range(self.num_cpus):
            tracer.observe("sched.refs_per_cpu", issued.get(cpu, 0))
        for observation in trace.barriers:
            if observation.flag_set_cycle is None or not observation.arrivals:
                continue
            tracer.observe("sched.barrier_interval_a", observation.interval_a)
            tracer.observe("sched.barrier_arrival_span", observation.arrival_span)
            tracer.emit(
                "sched.barrier",
                section=observation.section_name,
                arrivals=len(observation.arrivals),
                first_arrival=observation.first_arrival,
                last_arrival=observation.last_arrival,
                flag_set=observation.flag_set_cycle,
                interval_a=observation.interval_a,
            )
        tracer.emit(
            "sched.run",
            program=trace.program_name,
            cpus=self.num_cpus,
            barrier_style=self.barrier_style,
            cycles=trace.cycles,
            refs=len(trace),
            sync_refs=trace.sync_refs,
            rmw_stalls=self._rmw_stalls,
            barriers=len(trace.barriers),
        )

    def _enter_barrier(self, cpu: int, runtime: _SectionRuntime, state, bar_node):
        tree = runtime.tree
        assert tree is not None
        bar_node[cpu] = tree.leaf_of[cpu]
        state[cpu] = _BAR_INC

    def _step(
        self,
        cpu: int,
        cycle: int,
        trace: ScheduledTrace,
        sections,
        state,
        section_idx,
        body,
        body_pos,
        bar_node,
        runtime_for,
        enter_section,
    ) -> None:
        """Issue at most one reference for ``cpu`` at ``cycle``."""
        idx = section_idx[cpu]
        current = state[cpu]
        runtime = runtime_for(idx)
        section = sections[idx]

        if current == _FETCH:
            if not self._grant_rmw(runtime.index_address, cycle):
                return  # stalled on the atomic; retry next cycle
            trace.append(cpu, Op.RMW, runtime.index_address, True)
            iteration = runtime.counter
            runtime.counter += 1
            if iteration < section.iterations:
                refs = list(section.refs_for(iteration))
                if refs:
                    body[cpu] = refs
                    body_pos[cpu] = 0
                    state[cpu] = _BODY
                # An empty body loops straight back to _FETCH.
            else:
                self._enter_barrier(cpu, runtime, state, bar_node)
            return

        if current == _TICKET:
            if not self._grant_rmw(runtime.index_address, cycle):
                return  # stalled on the atomic; retry next cycle
            trace.append(cpu, Op.RMW, runtime.index_address, True)
            ticket = runtime.counter
            runtime.counter += 1
            if ticket == 0:
                body[cpu] = list(section.body)
                body_pos[cpu] = 0
                state[cpu] = _SERIAL_BODY
            else:
                self._enter_barrier(cpu, runtime, state, bar_node)
            return

        if current == _BODY or current == _SERIAL_BODY:
            refs = body[cpu]
            op, address = refs[body_pos[cpu]]
            trace.append(cpu, op, address, False)
            body_pos[cpu] += 1
            if body_pos[cpu] >= len(refs):
                body[cpu] = None
                if current == _SERIAL_BODY:
                    self._enter_barrier(cpu, runtime, state, bar_node)
                elif isinstance(section, ParallelLoop):
                    state[cpu] = _FETCH
                else:  # replicate section body finished
                    enter_section(cpu, idx + 1)
            return

        tree = runtime.tree
        assert tree is not None
        node = tree.nodes[bar_node[cpu]]
        observation = tree.observation

        if current == _BAR_INC:
            if not self._grant_rmw(node.variable_address, cycle):
                return  # stalled on the atomic; retry next cycle
            trace.append(cpu, Op.RMW, node.variable_address, True)
            if bar_node[cpu] == tree.leaf_of[cpu]:
                observation.arrivals.append((cpu, cycle))
            node.count += 1
            if node.count == node.expected:
                if node.parent is None:
                    state[cpu] = _SET_FLAG  # release the root
                else:
                    bar_node[cpu] = node.parent  # ascend
            else:
                state[cpu] = _POLL
            return

        if current == _SET_FLAG:
            trace.append(cpu, Op.WRITE, node.flag_address, True)
            node.flag_set_cycle = cycle
            if node.parent is None:
                observation.flag_set_cycle = cycle
            if bar_node[cpu] == tree.leaf_of[cpu]:
                enter_section(cpu, idx + 1)
            else:
                bar_node[cpu] = tree.child_toward(bar_node[cpu], cpu)
            return

        if current == _POLL:
            trace.append(cpu, Op.READ, node.flag_address, True)
            if observation.first_poll_cycle is None:
                observation.first_poll_cycle = cycle
            if node.flag_set_cycle is not None and node.flag_set_cycle < cycle:
                if bar_node[cpu] == tree.leaf_of[cpu]:
                    enter_section(cpu, idx + 1)
                else:
                    # A winner at an interior node: release the child
                    # it ascended from.
                    bar_node[cpu] = tree.child_toward(bar_node[cpu], cpu)
                    state[cpu] = _SET_FLAG
            return

        raise AssertionError(f"unknown scheduler state {current}")

    def _grant_rmw(self, address: int, cycle: int) -> bool:
        """Grant at most one fetch&add per variable per cycle.

        Processors are stepped in cpu order within a cycle, so ties go
        to the lowest-numbered contender — a deterministic stand-in for
        the unspecified arbitration of the paper's network model.
        """
        if self._rmw_last_grant.get(address) == cycle:
            if self._trace_on:
                self._rmw_stalls += 1
            return False
        self._rmw_last_grant[address] = cycle
        return True
