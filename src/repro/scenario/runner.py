"""Run scenario matrices through the RunPlan execute spine."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from repro.exec.context import ExecConfig
from repro.exec.plan import FaultOptions, execute, resolve_exec_config
from repro.scenario.spec import ScenarioCell, ScenarioSpec, expand

__all__ = ["CellOutcome", "ScenarioRun", "run_scenario"]

#: Per-cell checkpoints (fault cells) live under this directory by
#: default, one subdirectory per cell so reruns resume cleanly.
DEFAULT_WORK_DIR = ".repro-scenario"


@dataclass
class CellOutcome:
    """One executed cell: its digest and health, never its wall time
    or recovery counters, feed the aggregate digest."""

    cell: ScenarioCell
    digest: str = ""
    status: str = "failed"  # "ok" | "degraded" | "failed"
    wall_time_seconds: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "degraded")


@dataclass
class ScenarioRun:
    """Everything one ``run_scenario`` call produced."""

    spec: ScenarioSpec
    outcomes: List[CellOutcome]
    config: ExecConfig

    @property
    def ok(self) -> bool:
        return all(outcome.status == "ok" for outcome in self.outcomes)


def run_scenario(
    spec: ScenarioSpec,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    work_dir: Optional[str] = None,
    on_cell: Optional[Callable[[CellOutcome], None]] = None,
) -> ScenarioRun:
    """Expand ``spec`` and execute every cell through one shared path.

    With an active exec config — explicit ``jobs``/``cache`` arguments
    or the ambient CLI config — each cell's plan runs through the
    parallel cache-aware engine, which fans its repetition shards
    across the worker pool; output is bit-identical to the serial
    loop, so the aggregate digest is the same serial, parallel, and
    cache-warmed (the same contract every other dispatch path obeys).

    A cell that raises is recorded as ``failed`` (with the error text)
    and the remaining cells still run: one broken cell should cost one
    cell, not the whole matrix.  Fault-plan cells checkpoint under
    ``work_dir`` (default ``.repro-scenario/<name>/``), one
    subdirectory per cell, so an interrupted matrix resumes.
    """
    cells = expand(spec)
    config = resolve_exec_config(jobs, cache, cache_dir)
    exec_config = config if config.active else None
    work = (
        work_dir
        if work_dir is not None
        else os.path.join(DEFAULT_WORK_DIR, spec.name)
    )
    outcomes: List[CellOutcome] = []
    for cell in cells:
        plan = cell.plan
        if exec_config is not None:
            plan = plan.with_exec(exec_config)
        if plan.fault_plan is not None and plan.faults is None:
            plan = replace(
                plan,
                faults=FaultOptions(
                    checkpoint_dir=os.path.join(
                        work, "checkpoints", f"cell-{cell.index:04d}"
                    )
                ),
            )
        try:
            result = execute(plan)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            outcome = CellOutcome(
                cell=cell,
                error=f"{type(error).__name__}: {error}",
            )
        else:
            if not result.ok:
                status = "failed"
            elif result.degraded:
                status = "degraded"
            else:
                status = "ok"
            outcome = CellOutcome(
                cell=cell,
                digest=result.digest,
                status=status,
                wall_time_seconds=result.wall_time_seconds,
            )
        outcomes.append(outcome)
        if on_cell is not None:
            on_cell(outcome)
    return ScenarioRun(spec=spec, outcomes=outcomes, config=config)
