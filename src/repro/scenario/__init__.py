"""Scenario matrices: declarative sweeps over registry experiments.

- :mod:`repro.scenario.spec` — file format, validation against each
  experiment's typed Param schema, expansion into
  :class:`~repro.exec.plan.RunPlan` cells.
- :mod:`repro.scenario.runner` — execute every cell through the shared
  RunPlan spine (worker fan-out, result cache, fault plans).
- :mod:`repro.scenario.report` — aggregate reports and baseline diffs.

CLI: ``python -m repro scenario run|describe|diff``.
See docs/scenarios.md.
"""

from __future__ import annotations

from repro.scenario.report import (
    diff_reports,
    load_report,
    render_diff,
    render_summary,
    scenario_report,
    write_report,
)
from repro.scenario.runner import CellOutcome, ScenarioRun, run_scenario
from repro.scenario.spec import (
    ScenarioBlock,
    ScenarioCell,
    ScenarioError,
    ScenarioSpec,
    expand,
    load_scenario,
    parse_scenario,
)

__all__ = [
    "CellOutcome",
    "ScenarioBlock",
    "ScenarioCell",
    "ScenarioError",
    "ScenarioRun",
    "ScenarioSpec",
    "diff_reports",
    "expand",
    "load_report",
    "load_scenario",
    "parse_scenario",
    "render_diff",
    "render_summary",
    "run_scenario",
    "scenario_report",
    "write_report",
]
