"""Scenario files: declarative matrices over registry experiments.

A scenario file (JSON always; YAML when PyYAML is importable) composes
experiment matrices::

    name: example
    description: two backoff policies at two machine sizes
    blocks:
      - experiment: determinism
        params: {repetitions: 5}
        axes:
          base: [2, 4]          # cartesian: every combination runs
          points: [[[2, 0]], [[4, 0]]]
          seed: [0, 1]          # special axis: the run seed
      - experiment: figure5
        params: {repetitions: 3, n_values: [2, 4]}
        fault_plan: "stragglers:probability=0.2"
        seed: 0

Every axis name is validated against the experiment's declared
:class:`~repro.registry.Param` schema — a typo'd axis fails with the
same schema-aware error text as ``--param`` on the CLI — except the
three special names:

- ``seed`` — the run seed (plain runs: injected when the spec declares
  a ``seed`` parameter; fault runs: the fault-schedule root seed),
- ``fault_plan`` — a fault-injection plan spec routed through the
  resilient runner (:mod:`repro.faults`),
- ``backend`` — the episode backend (``python``/``numpy``/``auto``).

``axes`` entries combine cartesian; ``zip`` entries advance in
lockstep (all value lists must share one length) and the zipped group
is crossed against the cartesian axes.  Each resulting cell is one
:class:`~repro.exec.plan.RunPlan`, so scenarios inherit the execution
layer wholesale: worker fan-out, the content-addressed cache,
supervision, and the digest contract.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exec.plan import RunPlan, validate_seed

__all__ = [
    "ScenarioBlock",
    "ScenarioCell",
    "ScenarioError",
    "ScenarioSpec",
    "expand",
    "load_scenario",
    "parse_scenario",
]

#: Axis names with scenario-level meaning rather than a Param schema.
SPECIAL_AXES = ("seed", "fault_plan", "backend")

_BLOCK_KEYS = frozenset(
    ("experiment", "params", "axes", "zip") + SPECIAL_AXES
)
_TOP_KEYS = frozenset(("name", "description", "baseline", "blocks"))


class ScenarioError(ValueError):
    """A scenario file failed validation (CLI: exit 2 usage error)."""


def _fmt(value: Any) -> str:
    """A compact, deterministic rendering of one axis value."""
    if isinstance(value, str):
        return value
    return json.dumps(value, separators=(",", ":"), sort_keys=True)


@dataclass(frozen=True)
class ScenarioBlock:
    """One experiment's matrix: fixed params plus varying axes."""

    experiment_id: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Cartesian axes, in file order: ``{name: (value, ...)}``.
    axes: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    #: Zipped axes: all tuples share one length and advance together.
    zipped: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    seed: Optional[int] = None
    fault_plan: Optional[str] = None
    backend: Optional[str] = None

    def cell_count(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        if self.zipped:
            count *= len(next(iter(self.zipped.values())))
        return count


@dataclass(frozen=True)
class ScenarioSpec:
    """A parsed, fully validated scenario file."""

    name: str
    blocks: Tuple[ScenarioBlock, ...]
    description: str = ""
    #: Optional default baseline report path for ``scenario run/diff``.
    baseline: Optional[str] = None

    def cell_count(self) -> int:
        return sum(block.cell_count() for block in self.blocks)


@dataclass(frozen=True)
class ScenarioCell:
    """One expanded matrix cell: a RunPlan plus its stable identity."""

    index: int
    block_index: int
    #: Stable id built from the experiment and the axis assignments;
    #: the unit of comparison for baseline diffs.
    cell_id: str
    plan: RunPlan


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioError(f"{what} must be a mapping, got {type(value).__name__}")
    return value


def _check_keys(data: Mapping[str, Any], allowed: frozenset, what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ScenarioError(
            f"{what}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(sorted(allowed))}"
        )


def _coerce_special(name: str, value: Any, seed_hint: int = 0) -> Any:
    """Validate a special-axis value; returns the coerced value."""
    if name == "seed":
        return validate_seed(value)
    if name == "fault_plan":
        from repro.faults.spec import parse_plan

        if not isinstance(value, str):
            raise ScenarioError(
                f"fault_plan must be a plan spec string, got {value!r}"
            )
        parse_plan(value, seed=seed_hint)
        return value
    if name == "backend":
        from repro.barrier.backend import validate_backend

        validate_backend(value)
        return value
    raise ScenarioError(f"not a special axis: {name!r}")  # pragma: no cover


def _parse_axis_map(
    raw: Any, spec, where: str, taken: set
) -> Dict[str, Tuple[Any, ...]]:
    """Validate one ``axes``/``zip`` mapping against the Param schema."""
    axes: Dict[str, Tuple[Any, ...]] = {}
    for name, values in _require_mapping(raw, where).items():
        if name in taken:
            raise ScenarioError(
                f"{where}: {name!r} is assigned more than once in this block"
            )
        taken.add(name)
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise ScenarioError(
                f"{where}: axis {name!r} must be a list of values, "
                f"got {values!r}"
            )
        if not values:
            raise ScenarioError(f"{where}: axis {name!r} is empty")
        if name in SPECIAL_AXES:
            axes[name] = tuple(_coerce_special(name, v) for v in values)
        else:
            param = spec.get_param(name)  # ParameterError lists valid names
            axes[name] = tuple(param.coerce(v) for v in values)
    return axes


def parse_scenario(data: Any, source: str = "<scenario>") -> ScenarioSpec:
    """Validate raw scenario data into a :class:`ScenarioSpec`.

    Experiment ids and parameter names fail with the registry's own
    errors (``UnknownExperimentError`` with a did-you-mean,
    ``ParameterError`` listing valid names) — the same text every CLI
    subcommand prints; structural problems raise :class:`ScenarioError`.
    """
    from repro.registry import get_spec

    data = _require_mapping(data, f"{source}: scenario")
    _check_keys(data, _TOP_KEYS, source)
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError(f"{source}: 'name' must be a non-empty string")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise ScenarioError(f"{source}: 'description' must be a string")
    baseline = data.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise ScenarioError(f"{source}: 'baseline' must be a path string")
    raw_blocks = data.get("blocks")
    if not isinstance(raw_blocks, Sequence) or not raw_blocks:
        raise ScenarioError(f"{source}: 'blocks' must be a non-empty list")

    blocks: List[ScenarioBlock] = []
    for i, raw in enumerate(raw_blocks):
        where = f"{source}: block {i}"
        raw = _require_mapping(raw, where)
        _check_keys(raw, _BLOCK_KEYS, where)
        experiment_id = raw.get("experiment")
        if not isinstance(experiment_id, str) or not experiment_id:
            raise ScenarioError(f"{where}: 'experiment' is required")
        spec = get_spec(experiment_id)  # UnknownExperimentError: exit 2

        taken: set = set()
        params: Dict[str, Any] = {}
        for pname, value in _require_mapping(
            raw.get("params", {}), f"{where}: params"
        ).items():
            if pname in SPECIAL_AXES:
                raise ScenarioError(
                    f"{where}: {pname!r} belongs at the block level or in "
                    f"axes, not under params"
                )
            taken.add(pname)
            params[pname] = spec.get_param(pname).coerce(value)

        axes = _parse_axis_map(raw.get("axes", {}), spec, f"{where}: axes", taken)
        zipped = _parse_axis_map(raw.get("zip", {}), spec, f"{where}: zip", taken)
        if zipped:
            lengths = {len(v) for v in zipped.values()}
            if len(lengths) > 1:
                raise ScenarioError(
                    f"{where}: zip axes must share one length, got "
                    f"{sorted(lengths)}"
                )

        scalars: Dict[str, Any] = {}
        for sname in SPECIAL_AXES:
            if sname in raw:
                if sname in taken:
                    raise ScenarioError(
                        f"{where}: {sname!r} is both a scalar and an axis"
                    )
                scalars[sname] = _coerce_special(sname, raw[sname])

        block = ScenarioBlock(
            experiment_id=experiment_id,
            params=params,
            axes=axes,
            zipped=zipped,
            seed=scalars.get("seed"),
            fault_plan=scalars.get("fault_plan"),
            backend=scalars.get("backend"),
        )
        has_fault_plan = (
            block.fault_plan is not None
            or "fault_plan" in axes
            or "fault_plan" in zipped
        )
        varies_seed = "seed" in axes or "seed" in zipped
        if (
            varies_seed
            and not has_fault_plan
            and "seed" not in spec.param_names()
        ):
            raise ScenarioError(
                f"{where}: experiment {experiment_id!r} does not declare a "
                f"'seed' parameter and no fault plan is set, so a seed axis "
                f"would run identical cells"
            )
        blocks.append(block)
    return ScenarioSpec(
        name=name,
        blocks=tuple(blocks),
        description=description,
        baseline=baseline,
    )


def load_scenario(path: str) -> ScenarioSpec:
    """Parse and validate a scenario file (.json, or .yaml with PyYAML)."""
    if not os.path.exists(path):
        raise ScenarioError(f"scenario file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:
            raise ScenarioError(
                f"{path}: reading YAML scenarios requires PyYAML; "
                f"install it or convert the file to JSON"
            ) from None
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"{path}: invalid JSON ({error})") from None
    return parse_scenario(data, source=os.path.basename(path))


def _cell_assignments(
    block: ScenarioBlock,
) -> List[List[Tuple[str, Any]]]:
    """Every cell's ``(name, value)`` assignments, in deterministic order."""
    axis_items = [
        [(name, value) for value in values]
        for name, values in block.axes.items()
    ]
    if block.zipped:
        names = list(block.zipped)
        rows = list(zip(*(block.zipped[name] for name in names)))
        axis_items.append(
            [tuple(zip(names, row)) for row in rows]  # one composite axis
        )
    cells: List[List[Tuple[str, Any]]] = []
    for combo in itertools.product(*axis_items):
        flat: List[Tuple[str, Any]] = []
        for entry in combo:
            if entry and isinstance(entry[0], tuple):  # zipped composite
                flat.extend(entry)
            else:
                flat.append(entry)
        cells.append(flat)
    return cells


def expand(spec: ScenarioSpec) -> List[ScenarioCell]:
    """Expand a scenario into one :class:`RunPlan` per matrix cell.

    Cell ids are stable across runs (experiment + axis assignments +
    the block's scalar specials), so aggregate reports from different
    runs of the same scenario diff cell-by-cell.
    """
    cells: List[ScenarioCell] = []
    seen: Dict[str, int] = {}
    index = 0
    for block_index, block in enumerate(spec.blocks):
        for assignments in _cell_assignments(block):
            params = dict(block.params)
            seed = block.seed
            fault_plan = block.fault_plan
            backend = block.backend
            id_parts = [block.experiment_id]
            for name, value in assignments:
                id_parts.append(f"{name}={_fmt(value)}")
                if name == "seed":
                    seed = value
                elif name == "fault_plan":
                    fault_plan = value
                elif name == "backend":
                    backend = value
                else:
                    params[name] = value
            for sname, svalue in (
                ("seed", block.seed),
                ("fault_plan", block.fault_plan),
                ("backend", block.backend),
            ):
                if svalue is not None:
                    id_parts.append(f"{sname}={_fmt(svalue)}")
            cell_id = "/".join(id_parts)
            if cell_id in seen:
                raise ScenarioError(
                    f"blocks {seen[cell_id]} and {block_index} expand to "
                    f"the same cell id {cell_id!r}; make the blocks "
                    f"distinguishable (different axes or params)"
                )
            seen[cell_id] = block_index
            plan = RunPlan(
                experiment_id=block.experiment_id,
                params=params,
                seed=seed,
                fault_plan=fault_plan,
                backend=backend,
            )
            cells.append(
                ScenarioCell(
                    index=index,
                    block_index=block_index,
                    cell_id=cell_id,
                    plan=plan,
                )
            )
            index += 1
    return cells
