"""Aggregate scenario reports and baseline diffs.

The report JSON mirrors the ``repro check`` report idiom that
``tools/check_report.py`` already understands (and has been taught to
read): a list of per-cell outcomes plus one aggregate digest.  The
aggregate digest covers every cell's ``(digest, status)`` pair and
nothing else — never wall times, worker counts, or cache hit rates —
so a serial run, a ``--jobs 2`` run, and a cache-warmed rerun of the
same scenario produce byte-identical aggregate digests.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.exec.cache import payload_digest
from repro.obs.manifest import jsonable
from repro.scenario.runner import ScenarioRun

__all__ = [
    "aggregate_digest",
    "diff_reports",
    "load_report",
    "render_diff",
    "render_summary",
    "scenario_report",
    "write_report",
]

#: Report schema marker; ``tools/check_report.py`` dispatches on it.
REPORT_KIND = "scenario-report"

#: Health ordering for regression detection.
_SEVERITY = {"ok": 0, "degraded": 1, "failed": 2}


def aggregate_digest(cells: List[Dict[str, Any]]) -> str:
    """One digest over every cell's ``(digest, status)`` pair."""
    payload = {
        cell["id"]: {"digest": cell["digest"], "status": cell["status"]}
        for cell in cells
    }
    return payload_digest(payload)


def scenario_report(run: ScenarioRun) -> Dict[str, Any]:
    """The aggregate report payload for one scenario run."""
    cells = []
    for outcome in run.outcomes:
        plan = outcome.cell.plan
        cells.append(
            {
                "id": outcome.cell.cell_id,
                "experiment": plan.experiment_id,
                "params": jsonable(dict(plan.params)),
                "seed": plan.seed,
                "fault_plan": plan.fault_plan,
                "backend": plan.backend,
                "digest": outcome.digest,
                "status": outcome.status,
                "wall_time_seconds": outcome.wall_time_seconds,
                "error": outcome.error,
            }
        )
    counts = {
        "cells": len(cells),
        "ok": sum(1 for c in cells if c["status"] == "ok"),
        "degraded": sum(1 for c in cells if c["status"] == "degraded"),
        "failed": sum(1 for c in cells if c["status"] == "failed"),
    }
    return {
        "kind": REPORT_KIND,
        "scenario": run.spec.name,
        "description": run.spec.description,
        "counts": counts,
        "aggregate_digest": aggregate_digest(cells),
        "execution": {
            "jobs": run.config.jobs,
            "cache": run.config.cache,
        },
        "cells": cells,
    }


def write_report(payload: Dict[str, Any], path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a scenario aggregate report, validating its shape."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("kind") != REPORT_KIND or "cells" not in report:
        raise ValueError(f"{path}: not a scenario report")
    return report


def render_summary(payload: Dict[str, Any]) -> str:
    counts = payload["counts"]
    lines = [
        f"scenario   : {payload['scenario']}",
        f"cells      : {counts['cells']} "
        f"({counts['ok']} ok, {counts['degraded']} degraded, "
        f"{counts['failed']} failed)",
        f"aggregate  : {payload['aggregate_digest']}",
    ]
    for cell in payload["cells"]:
        if cell["status"] != "ok":
            line = f"  {cell['status']:9} {cell['id']}"
            if cell.get("error"):
                line += f" ({cell['error']})"
            lines.append(line)
    return "\n".join(lines)


def diff_reports(
    new: Dict[str, Any], old: Dict[str, Any]
) -> Dict[str, List[str]]:
    """Cell-level transitions old -> new, keyed by stable cell id.

    - ``regressed``: the cell's health worsened (ok -> degraded/failed).
    - ``changed``: same health, different result digest — the quiet
      failure mode a status-only diff misses; counts as a regression.
    - ``recovered``: health improved.
    - ``appeared`` / ``disappeared``: the matrix itself changed.
    """
    new_by_id = {cell["id"]: cell for cell in new["cells"]}
    old_by_id = {cell["id"]: cell for cell in old["cells"]}
    shared = set(new_by_id) & set(old_by_id)
    regressed = sorted(
        cell_id for cell_id in shared
        if _SEVERITY[new_by_id[cell_id]["status"]]
        > _SEVERITY[old_by_id[cell_id]["status"]]
    )
    recovered = sorted(
        cell_id for cell_id in shared
        if _SEVERITY[new_by_id[cell_id]["status"]]
        < _SEVERITY[old_by_id[cell_id]["status"]]
    )
    changed = sorted(
        cell_id for cell_id in shared
        if cell_id not in regressed and cell_id not in recovered
        and new_by_id[cell_id]["digest"] != old_by_id[cell_id]["digest"]
    )
    return {
        "regressed": regressed,
        "changed": changed,
        "recovered": recovered,
        "appeared": sorted(set(new_by_id) - set(old_by_id)),
        "disappeared": sorted(set(old_by_id) - set(new_by_id)),
    }


def regressions(diff: Dict[str, List[str]]) -> int:
    """How many diff entries gate a baseline comparison (exit 1)."""
    return len(diff["regressed"]) + len(diff["changed"])


def render_diff(diff: Dict[str, List[str]]) -> str:
    lines = []
    for label in ("regressed", "changed", "recovered", "appeared",
                  "disappeared"):
        if diff[label]:
            lines.append(f"{label}: {', '.join(diff[label])}")
    if not lines:
        return "no changes between the reports"
    return "\n".join(lines)
