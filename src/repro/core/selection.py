"""Profile-driven backoff policy selection (Section 8).

    "The synchronization software that determines which backoff method
    is used can be designed in one of several ways.  One can be
    conservative and use a simple adaptive backoff on the barrier
    variable and a binary backoff on the barrier flag.  The programmer
    can write the algorithms into the synchronization macros ... The
    compiler can determine appropriate code sequences for the barrier
    synchronizations based on expected behavior of loops ... One can
    get more venturesome by using profiling to determine the temporal
    behavior of the application and the number of processors
    participating in the synchronization and pass this information on
    to the compiler for further optimization."

This module is that pipeline:

- :class:`SynchronizationProfile` captures what profiling observes about
  a synchronization point — participant count and the arrival-interval
  distribution (built directly from a post-mortem-scheduled trace).
- :class:`PolicyAdvisor` turns a profile into a concrete policy, either
  *analytically* (the conservative compiler path, using Models 1/2 and
  the paper's tradeoff findings) or *empirically* (the venturesome
  path: simulate the candidate policies on profile-shaped arrivals and
  rank them by a weighted access/waiting cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backoff import (
    BackoffPolicy,
    ExponentialFlagBackoff,
    NoBackoff,
    ThresholdQueueBackoff,
    VariableBackoff,
)


@dataclass
class SynchronizationProfile:
    """What profiling knows about one synchronization point.

    Attributes:
        num_processors: participants in the barrier.
        interval_a: estimated arrival interval A (cycles).
        interval_e: estimated time between barriers (cycles), if known.
        arrival_offsets: pooled measured arrival offsets (optional; when
            present the empirical ranking resamples them instead of
            assuming uniform arrivals).
        label: where the profile came from, for reports.
    """

    num_processors: int
    interval_a: float
    interval_e: Optional[float] = None
    arrival_offsets: List[int] = field(default_factory=list)
    label: str = "profile"

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if self.interval_a < 0:
            raise ValueError("interval_a must be non-negative")

    @classmethod
    def from_trace(cls, trace, label: Optional[str] = None) -> "SynchronizationProfile":
        """Build a profile from a :class:`~repro.trace.scheduler.ScheduledTrace`."""
        return cls(
            num_processors=trace.num_cpus,
            interval_a=trace.mean_interval_a(),
            interval_e=trace.mean_interval_e(),
            arrival_offsets=trace.arrival_offsets(),
            label=label or trace.program_name,
        )

    @property
    def spread_ratio(self) -> float:
        """A / N — the quantity the paper's findings pivot on."""
        return self.interval_a / self.num_processors


@dataclass
class Recommendation:
    """A selected policy with the reasoning behind it."""

    policy: BackoffPolicy
    rationale: str
    profile: SynchronizationProfile

    def __str__(self) -> str:
        return f"{self.policy!r} — {self.rationale}"


class PolicyAdvisor:
    """Chooses a backoff policy for a profiled synchronization point.

    Args:
        waiting_weight: relative cost of one cycle of waiting against
            one network access in the empirical ranking.  The paper
            argues accesses usually matter more ("reducing the number
            of network accesses also reduces the processor idle time
            because of the reduced contention"), so the default weights
            accesses 10x.
        queue_overhead: enqueue/wake overhead of the blocking path; the
            advisor recommends a spin-then-queue hybrid when the
            expected spin exceeds it.
        aggressive_base: exponential base used when the profile shows a
            large arrival spread and waiting time is cheap.
    """

    def __init__(
        self,
        waiting_weight: float = 0.1,
        queue_overhead: int = 100,
        aggressive_base: int = 8,
    ) -> None:
        if waiting_weight < 0:
            raise ValueError("waiting_weight must be non-negative")
        if queue_overhead < 1:
            raise ValueError("queue_overhead must be >= 1")
        self.waiting_weight = waiting_weight
        self.queue_overhead = queue_overhead
        self.aggressive_base = aggressive_base

    # ------------------------------------------------------------------
    # The conservative (analytic) path.
    # ------------------------------------------------------------------

    def recommend(self, profile: SynchronizationProfile) -> Recommendation:
        """Analytic recommendation from the paper's findings.

        - A ≲ N: arrivals are tight; only the variable backoff's free
          ~20 % applies (Figure 5).
        - A ≫ N: exponential flag backoff wins big; base 2 is the
          favourable tradeoff (Figures 7/10); a larger base if waiting
          is explicitly cheap.
        - Expected spin beyond the queue overhead: spin-then-queue.
        """
        n = profile.num_processors
        if n == 1:
            return Recommendation(
                NoBackoff(), "single process: nothing to back off from", profile
            )
        ratio = profile.spread_ratio
        if ratio <= 1.0:
            return Recommendation(
                VariableBackoff(),
                f"A/N = {ratio:.2f} <= 1: arrivals tight; variable backoff "
                "takes the free ~20% and flag backoff would add nothing",
                profile,
            )
        if self.waiting_weight <= 0.01:
            base = self.aggressive_base
            note = "waiting nearly free: aggressive base"
        else:
            base = 2
            note = "binary base keeps the waiting-time increase bounded"
        policy: BackoffPolicy = ExponentialFlagBackoff(base=base)
        expected_spin = profile.interval_a / 2.0
        if expected_spin > 4 * self.queue_overhead:
            policy = ThresholdQueueBackoff(policy, threshold=self.queue_overhead)
            return Recommendation(
                policy,
                f"A/N = {ratio:.1f} and expected spin ~{expected_spin:.0f} "
                f"cycles >> queue overhead {self.queue_overhead}: exponential "
                f"base-{base} backoff with queueing past the threshold",
                profile,
            )
        return Recommendation(
            policy,
            f"A/N = {ratio:.1f} > 1: exponential base-{base} flag backoff "
            f"({note})",
            profile,
        )

    # ------------------------------------------------------------------
    # The venturesome (empirical) path.
    # ------------------------------------------------------------------

    def rank(
        self,
        profile: SynchronizationProfile,
        candidates: Optional[Dict[str, BackoffPolicy]] = None,
        repetitions: int = 30,
        seed: int = 0,
    ) -> List[Tuple[str, float]]:
        """Simulate candidates on profile-shaped arrivals; rank by cost.

        Cost = mean accesses + ``waiting_weight`` * mean waiting time.
        Returns ``[(label, cost)]`` sorted best-first.
        """
        from repro.barrier.arrivals import EmpiricalArrivals, UniformArrivals
        from repro.barrier.simulator import BarrierSimulator
        from repro.core.backoff import paper_policies
        from repro.core.barrier import TangYewBarrier

        if candidates is None:
            candidates = paper_policies()
        if profile.arrival_offsets and max(profile.arrival_offsets) > 0:
            arrivals = EmpiricalArrivals(profile.arrival_offsets)
        else:
            arrivals = UniformArrivals(int(round(profile.interval_a)))
        scores: List[Tuple[str, float]] = []
        for label, policy in candidates.items():
            simulator = BarrierSimulator(
                TangYewBarrier(profile.num_processors, backoff=policy),
                arrivals,
                seed=seed,
            )
            aggregate = simulator.run(repetitions)
            cost = (
                aggregate.mean_accesses
                + self.waiting_weight * aggregate.mean_waiting_time
            )
            scores.append((label, cost))
        scores.sort(key=lambda item: item[1])
        return scores

    def select(
        self,
        profile: SynchronizationProfile,
        candidates: Optional[Dict[str, BackoffPolicy]] = None,
        repetitions: int = 30,
        seed: int = 0,
    ) -> Recommendation:
        """Empirical selection: simulate, rank, return the winner."""
        from repro.core.backoff import paper_policies

        if candidates is None:
            candidates = paper_policies()
        ranking = self.rank(profile, candidates, repetitions, seed)
        best_label, best_cost = ranking[0]
        return Recommendation(
            candidates[best_label],
            f"empirically best of {len(ranking)} candidates on "
            f"{profile.label!r} arrivals (cost {best_cost:.1f}; "
            f"runner-up {ranking[1][0]!r} at {ranking[1][1]:.1f})"
            if len(ranking) > 1
            else "only candidate",
            profile,
        )
