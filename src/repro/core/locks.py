"""Spin-lock acquisition strategies for the resource-waiting extension.

Section 8 generalises adaptive backoff from barriers to "processors
waiting on a resource": the expected wait is directly proportional to
the number of processors ahead in line times the mean hold time, so the
state of the lock (its waiter count) is an even better backoff signal
than barrier state.

A strategy answers: after an unsuccessful acquisition attempt, how long
should the processor wait before retrying, and does the retry touch the
network (test-and-set does; the local spin phase of
test-and-test-and-set does not — but in the paper's uncached setting
every test is a network access, so both strategies' tests are charged)?

Execution happens in :mod:`repro.barrier.resource`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.backoff import ProportionalBackoff


class _BoundedLock:
    """Degraded-mode base: an optional cap on acquisition attempts.

    With ``max_attempts`` set, :meth:`should_abort` tells the resource
    simulator to give up on the lock after that many failed tries and
    report an aborted (partial) outcome instead of spinning forever —
    the bounded-retry semantics fault-injection scenarios rely on.
    ``max_attempts=None`` (the default) retries indefinitely, which is
    the paper's behaviour.
    """

    def __init__(self, max_attempts: Optional[int] = None) -> None:
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 when set")
        self.max_attempts = max_attempts

    def should_abort(self, attempts: int) -> bool:
        """True if the processor should stop retrying this lock."""
        return self.max_attempts is not None and attempts >= self.max_attempts


class TestAndSetLock(_BoundedLock):
    """Spin on atomic test&set: every attempt is a network RMW."""

    name = "test-and-set"
    __test__ = False  # not a pytest class, despite the Test* name

    def retry_wait(self, attempts: int, waiters_ahead: int) -> int:
        """Cycles to wait after the ``attempts``-th failed acquire."""
        return 0


class TestAndTestAndSetLock(_BoundedLock):
    """Read the lock word until free, then try the RMW.

    With uncached synchronization variables the read spin still hits
    the network every cycle, so in this model TTAS differs from TAS
    only in that a failed *read* does not occupy the module's RMW slot.
    The resource simulator models both as per-cycle network accesses.
    """

    name = "test-and-test-and-set"
    __test__ = False  # not a pytest class, despite the Test* name

    def retry_wait(self, attempts: int, waiters_ahead: int) -> int:
        return 0


class BackoffLock(_BoundedLock):
    """Test-and-test-and-set with adaptive proportional backoff.

    After a failed attempt the processor waits
    ``hold_time * waiters_ahead`` cycles — Section 8's "amount
    proportional to the number of processors waiting", with the hold
    time as the constant of proportion.  ``minimum_wait`` keeps the
    retry from being immediate even with zero visible waiters.
    """

    name = "backoff"

    def __init__(
        self,
        hold_time: int,
        minimum_wait: int = 1,
        max_attempts: Optional[int] = None,
    ) -> None:
        super().__init__(max_attempts=max_attempts)
        if minimum_wait < 0:
            raise ValueError("minimum_wait must be non-negative")
        self._policy = ProportionalBackoff(hold_time=hold_time)
        self.minimum_wait = minimum_wait

    def retry_wait(self, attempts: int, waiters_ahead: int) -> int:
        return max(self._policy.resource_wait(waiters_ahead), self.minimum_wait)

    def __repr__(self) -> str:
        return (
            f"BackoffLock(hold_time={self._policy.hold_time}, "
            f"minimum_wait={self.minimum_wait})"
        )
