"""Adaptive backoff policies (Sections 4 and 8).

A backoff policy answers two questions for a process inside a barrier:

1. :meth:`BackoffPolicy.variable_wait` — having incremented the barrier
   variable and seen its value ``i`` (so ``i`` of ``N`` processors have
   arrived), how many cycles should I wait before my *first* poll of the
   barrier flag?  The paper's *backoff on the barrier variable* waits
   ``(N - i)`` cycles: with unit memory-access time, at least ``N - i``
   more barrier-variable accesses must complete before the flag can
   possibly be set.  Generalisations ``(N - i) * C`` and ``(N - i) + C``
   are exposed through ``multiplier`` and ``offset``.

2. :meth:`BackoffPolicy.flag_wait` — having polled the flag ``polls``
   times and found it clear, how many cycles should I wait before the
   next poll?  *Backoff on the barrier flag* waits a linear (``c *
   polls``) or exponential (``base ** polls``) amount; the paper
   evaluates exponential bases 2, 4 and 8.

Policies are deterministic on purpose:

    "Since all the processors backoff by equal amounts the
    serialization is preserved.  However, if the processors retry
    probabilistically, the serialization is destroyed and could result
    in contention again."

:class:`ThresholdQueueBackoff` adds the Section 4/7 hybrid — "if the
backoff amount crosses some preset threshold, then it might be
worthwhile to place the process on a queue pending the arrival of the
last process" — and :class:`ProportionalBackoff` is the Section 8
policy for processors waiting on a resource (wait proportional to the
number of waiters).
"""

from __future__ import annotations


class BackoffPolicy:
    """Base class: no backoff on either the variable or the flag."""

    name = "none"

    #: True when the policy carries mutable draw state across episodes
    #: (e.g. a random stream).  The exec layer keeps stateful policies
    #: on the in-order serial path and out of the result cache, because
    #: their answers depend on everything simulated before them.
    stateful = False

    def variable_wait(self, barrier_value: int, num_processors: int) -> int:
        """Cycles to wait after the barrier-variable F&A, before poll 1.

        Args:
            barrier_value: the variable's value after this process's
                increment (the number of processes that have arrived).
            num_processors: N, the number of synchronizing processes.
        """
        return 0

    def flag_wait(self, polls: int) -> int:
        """Cycles to wait after the ``polls``-th unsuccessful flag read."""
        return 0

    def should_queue(self, polls: int) -> bool:
        """True if the process should block instead of polling again."""
        return False

    def loss_wait(self, suspected_losses: int) -> int:
        """Cycles to wait before re-issuing a write suspected lost.

        Degraded-mode hook: when fault injection drops a flag write,
        the writer re-issues it after this wait.  The default schedule
        is bounded exponential backoff (base 2, capped at ``1 << 20``)
        — the same adaptive shape the paper applies to polling, applied
        to suspected loss, so a lossy network slows the release instead
        of flooding the flag module with immediate retries.
        """
        if suspected_losses < 1:
            raise ValueError("suspected_losses must be >= 1 (counts drops)")
        return min(1 << suspected_losses, 1 << 20)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoBackoff(BackoffPolicy):
    """Continuous polling — the paper's baseline ("Without Backoff")."""

    name = "no-backoff"


class VariableBackoff(BackoffPolicy):
    """Backoff on the barrier variable only (Section 4.1).

    Waits ``max((N - i) * multiplier + offset, 0)`` cycles before the
    first flag poll.  The paper's basic scheme is ``multiplier=1,
    offset=0``; "a modified scheme that backs off some constant factor
    times the value in the barrier ... will provide a higher savings in
    network traffic, but it also adds the potential of increasing cpu
    idle time".
    """

    name = "variable"

    def __init__(self, multiplier: int = 1, offset: int = 0) -> None:
        if multiplier < 0 or offset < 0:
            raise ValueError("multiplier and offset must be non-negative")
        self.multiplier = multiplier
        self.offset = offset

    def variable_wait(self, barrier_value: int, num_processors: int) -> int:
        remaining = num_processors - barrier_value
        if remaining <= 0:
            return 0
        return remaining * self.multiplier + self.offset

    def __repr__(self) -> str:
        return (
            f"VariableBackoff(multiplier={self.multiplier}, offset={self.offset})"
        )


class FlagBackoff(VariableBackoff):
    """Base for flag-backoff policies.

    "In all our discussions of the performance of these latter methods,
    we assume that backoff on the barrier variable is also applied" —
    so flag policies inherit the variable backoff (disable it by
    passing ``multiplier=0`` if needed).
    """

    name = "flag"


class NoFlagBackoff(FlagBackoff):
    """Variable backoff with explicit zero flag backoff (alias helper)."""

    name = "variable-only"


class LinearFlagBackoff(FlagBackoff):
    """Linear backoff on the barrier flag: wait ``step * polls`` cycles."""

    name = "linear-flag"

    def __init__(
        self, step: int = 1, multiplier: int = 1, offset: int = 0
    ) -> None:
        super().__init__(multiplier=multiplier, offset=offset)
        if step < 1:
            raise ValueError("step must be >= 1")
        self.step = step

    def flag_wait(self, polls: int) -> int:
        if polls < 1:
            raise ValueError("polls must be >= 1 (counts unsuccessful reads)")
        return self.step * polls

    def __repr__(self) -> str:
        return f"LinearFlagBackoff(step={self.step})"


class ExponentialFlagBackoff(FlagBackoff):
    """Exponential backoff on the barrier flag: wait ``base ** polls``.

    The paper evaluates bases 2, 4 and 8.  ``cap`` bounds the wait so a
    pathological run cannot sleep forever (the paper's simulations have
    no cap; the default is high enough to be equivalent over the
    evaluated parameter ranges).
    """

    name = "exponential-flag"

    def __init__(
        self,
        base: int = 2,
        cap: int = 1 << 20,
        multiplier: int = 1,
        offset: int = 0,
    ) -> None:
        super().__init__(multiplier=multiplier, offset=offset)
        if base < 2:
            raise ValueError("base must be >= 2")
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.base = base
        self.cap = cap

    def flag_wait(self, polls: int) -> int:
        if polls < 1:
            raise ValueError("polls must be >= 1 (counts unsuccessful reads)")
        # base ** polls, capped; avoid huge intermediate powers.
        wait = 1
        for __ in range(polls):
            wait *= self.base
            if wait >= self.cap:
                return self.cap
        return wait

    def __repr__(self) -> str:
        return f"ExponentialFlagBackoff(base={self.base}, cap={self.cap})"


class RandomizedExponentialBackoff(FlagBackoff):
    """Ethernet-style *randomized* exponential backoff — the foil.

    The paper argues *against* randomization for synchronization spins:

        "once a processor initiates a barrier read request ... their
        execution becomes serialized.  Once serialized, the processors
        experience no contention the next time they poll the barrier
        flag.  Since all the processors backoff by equal amounts the
        serialization is preserved.  However, if the processors retry
        probabilistically, the serialization is destroyed and could
        result in contention again."

    This class exists to *test* that argument: it waits a uniformly
    random amount in ``[1, base ** polls]`` (the classic contention
    window).  The determinism ablation benchmark shows it re-creates
    flag contention that the deterministic policy avoids.

    Randomness is drawn from a seeded stream, so runs remain exactly
    reproducible.
    """

    name = "randomized-exponential-flag"
    stateful = True

    def __init__(
        self,
        base: int = 2,
        cap: int = 1 << 20,
        seed: int = 0,
        multiplier: int = 1,
        offset: int = 0,
    ) -> None:
        super().__init__(multiplier=multiplier, offset=offset)
        if base < 2:
            raise ValueError("base must be >= 2")
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.base = base
        self.cap = cap
        self.seed = seed
        self._rng = None

    def reseed(self, seed: int) -> None:
        """Re-seed the draw stream (used between repetitions)."""
        self.seed = seed
        self._rng = None

    def _window(self, polls: int) -> int:
        window = 1
        for __ in range(polls):
            window *= self.base
            if window >= self.cap:
                return self.cap
        return window

    def flag_wait(self, polls: int) -> int:
        if polls < 1:
            raise ValueError("polls must be >= 1 (counts unsuccessful reads)")
        if self._rng is None:
            from repro.sim.rng import spawn_stream

            self._rng = spawn_stream(self.seed, "randomized-backoff")
        window = self._window(polls)
        return int(self._rng.integers(1, window + 1))

    def __repr__(self) -> str:
        return (
            f"RandomizedExponentialBackoff(base={self.base}, cap={self.cap}, "
            f"seed={self.seed})"
        )


class ThresholdQueueBackoff(BackoffPolicy):
    """Spin-then-block hybrid (Sections 4 and 7).

    Delegates to an inner policy until the inner policy's next flag wait
    would cross ``threshold``; from then on :meth:`should_queue` returns
    True and the process should be enqueued on a condition variable
    (the queueing simulator charges the enqueue/dequeue overhead).
    """

    name = "threshold-queue"

    def __init__(self, inner: BackoffPolicy, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.inner = inner
        self.threshold = threshold
        # Delegating policies are only as replayable as their inner one.
        self.stateful = getattr(inner, "stateful", False)

    def variable_wait(self, barrier_value: int, num_processors: int) -> int:
        return self.inner.variable_wait(barrier_value, num_processors)

    def flag_wait(self, polls: int) -> int:
        return self.inner.flag_wait(polls)

    def should_queue(self, polls: int) -> bool:
        return self.inner.flag_wait(polls) >= self.threshold

    def __repr__(self) -> str:
        return f"ThresholdQueueBackoff(inner={self.inner!r}, threshold={self.threshold})"


class ProportionalBackoff:
    """Resource-waiting backoff (Section 8).

    "Processors waiting to access a resource can backoff testing the
    resource by an amount proportional to the number of processors
    waiting (with the constant of the proportion being the average
    amount of time the resource is held by each processor)."
    """

    name = "proportional"

    def __init__(self, hold_time: int = 1) -> None:
        if hold_time < 1:
            raise ValueError("hold_time must be >= 1")
        self.hold_time = hold_time

    def resource_wait(self, waiters_ahead: int) -> int:
        """Cycles to wait given ``waiters_ahead`` processors in line."""
        if waiters_ahead < 0:
            raise ValueError("waiters_ahead must be non-negative")
        return self.hold_time * waiters_ahead

    def __repr__(self) -> str:
        return f"ProportionalBackoff(hold_time={self.hold_time})"


class AdaptiveBackoff(BackoffPolicy):
    """A fully configurable composite of the paper's mechanisms.

    Combines variable backoff (``multiplier``/``offset``), a flag
    schedule (``flag_base`` exponential, or ``flag_step`` linear, or
    neither), and an optional queueing threshold.  The named classes
    above are the common fixed points; this class is the "venturesome"
    profile-everything variant Section 8 sketches, where a compiler or
    profiler chooses the parameters per synchronization point.
    """

    name = "adaptive"

    def __init__(
        self,
        multiplier: int = 1,
        offset: int = 0,
        flag_base: int = 0,
        flag_step: int = 0,
        cap: int = 1 << 20,
        queue_threshold: int = 0,
    ) -> None:
        if flag_base and flag_step:
            raise ValueError("choose exponential (flag_base) OR linear (flag_step)")
        if flag_base and flag_base < 2:
            raise ValueError("flag_base must be >= 2 when set")
        self._variable = VariableBackoff(multiplier=multiplier, offset=offset)
        self._flag: BackoffPolicy
        if flag_base:
            self._flag = ExponentialFlagBackoff(base=flag_base, cap=cap)
        elif flag_step:
            self._flag = LinearFlagBackoff(step=flag_step)
        else:
            self._flag = NoBackoff()
        self.queue_threshold = queue_threshold

    def variable_wait(self, barrier_value: int, num_processors: int) -> int:
        return self._variable.variable_wait(barrier_value, num_processors)

    def flag_wait(self, polls: int) -> int:
        return self._flag.flag_wait(polls)

    def should_queue(self, polls: int) -> bool:
        if not self.queue_threshold:
            return False
        return self._flag.flag_wait(polls) >= self.queue_threshold

    def __repr__(self) -> str:
        return (
            f"AdaptiveBackoff(variable={self._variable!r}, flag={self._flag!r}, "
            f"queue_threshold={self.queue_threshold})"
        )


def paper_policies() -> dict:
    """The five policies of Figures 5-10, keyed by their curve labels."""
    return {
        "Without Backoff": NoBackoff(),
        "Backoff on Barrier Var.": VariableBackoff(),
        "Base 2 Backoff on Barrier Flag": ExponentialFlagBackoff(base=2),
        "Base 4 Backoff on Barrier Flag": ExponentialFlagBackoff(base=4),
        "Base 8 Backoff on Barrier Flag": ExponentialFlagBackoff(base=8),
    }
