"""Barrier algorithm descriptions.

These classes *describe* a barrier protocol — which shared variables it
uses, how processes wait, which backoff policy applies.  Execution
against the network model happens in :mod:`repro.barrier`:

- :class:`TangYewBarrier` — the paper's subject; executed by
  :class:`repro.barrier.simulator.BarrierSimulator`.
- :class:`SingleVariableBarrier` — the naive one-variable barrier of
  Section 2 ("each processor attempting to increment the barrier
  variable must contend with all the others simply polling it"); also
  executed by the barrier simulator (variable and flag collapse onto
  one memory module).
- :class:`CombiningTreeBarrier` — Yew/Tseng/Lawrie software combining
  tree whose nodes are Tang–Yew barriers; executed by
  :mod:`repro.barrier.tree`.
- :class:`BlockingBarrier` — all but the last process sleep on a
  condition variable; executed by :mod:`repro.barrier.queueing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.backoff import BackoffPolicy, NoBackoff


def _check_degraded_mode(poll_budget: Optional[int], timeout_cycles: Optional[int]) -> None:
    if poll_budget is not None and poll_budget < 1:
        raise ValueError("poll_budget must be >= 1 when set")
    if timeout_cycles is not None and timeout_cycles < 1:
        raise ValueError("timeout_cycles must be >= 1 when set")


@dataclass
class TangYewBarrier:
    """The two-variable barrier (Tang & Yew) with a backoff policy.

    An arriving process increments the *barrier variable*; unless it is
    the last it then polls the *barrier flag*, which the last arrival
    sets.  The variable and flag live in different memory modules.

    Degraded mode: when ``poll_budget`` or ``timeout_cycles`` is set, a
    waiting process that exhausts either bound departs anyway and the
    episode reports a partial-arrival outcome
    (:attr:`repro.barrier.metrics.BarrierRunResult.timed_out`) instead
    of polling forever — the behaviour fault-injection scenarios need.
    Both default to None (wait indefinitely, the paper's semantics).
    """

    num_processors: int
    backoff: BackoffPolicy = field(default_factory=NoBackoff)
    poll_budget: Optional[int] = None
    timeout_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        _check_degraded_mode(self.poll_budget, self.timeout_cycles)

    @property
    def separate_modules(self) -> bool:
        return True


@dataclass
class SingleVariableBarrier:
    """The one-variable barrier of Section 2.

    Every process increments the shared variable and then repeatedly
    reads it until it reaches N; incrementers and pollers contend for
    the *same* memory module, which is the implementation's drawback.

    ``poll_budget`` / ``timeout_cycles`` give the same degraded-mode
    semantics as :class:`TangYewBarrier`.
    """

    num_processors: int
    backoff: BackoffPolicy = field(default_factory=NoBackoff)
    poll_budget: Optional[int] = None
    timeout_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        _check_degraded_mode(self.poll_budget, self.timeout_cycles)

    @property
    def separate_modules(self) -> bool:
        return False


@dataclass
class CombiningTreeBarrier:
    """A software combining tree of Tang–Yew barriers.

    "As long as the degree of the nodes in the combining tree is less
    than the number of pointers in the cache-directory, then
    synchronization variables will not result in extra invalidation
    traffic" — and for non-cache-coherent machines the tree spreads the
    hot-spot across many modules.  "Our methods can still be used to
    reduce the spins on the intermediate nodes of the tree."

    Processes are split into groups of ``degree``; each group runs a
    Tang–Yew barrier in its own pair of memory modules; the last
    arrival of each group ascends to the parent node.  When the root
    completes, release flags propagate back down.

    ``poll_budget`` / ``timeout_cycles`` give the same degraded-mode
    semantics as :class:`TangYewBarrier`, applied per (processor, node)
    wait: a poller that exhausts either bound departs without seeing
    the release and never writes its own node's flag, so a timeout high
    in the tree cascades into timeouts below it.
    """

    num_processors: int
    degree: int = 4
    backoff: BackoffPolicy = field(default_factory=NoBackoff)
    poll_budget: Optional[int] = None
    timeout_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if self.degree < 2:
            raise ValueError("degree must be >= 2")
        _check_degraded_mode(self.poll_budget, self.timeout_cycles)

    def level_sizes(self) -> List[int]:
        """Number of participants at each tree level, leaves first."""
        sizes = []
        n = self.num_processors
        while n > 1:
            sizes.append(n)
            n = -(-n // self.degree)  # ceil division: one winner per group
        if not sizes:
            sizes.append(1)
        return sizes

    @property
    def depth(self) -> int:
        return len(self.level_sizes())


@dataclass
class BlockingBarrier:
    """A barrier that sleeps instead of spinning (Section 1).

    "All but the last processor to arrive at the barrier are put to
    sleep ... This method avoids the extra network traffic of polling a
    barrier flag, but incurs the potentially high overhead of enqueuing
    a process on a condition variable."

    ``enqueue_overhead`` / ``wakeup_overhead`` are the constant
    per-process costs (in cycles) of the sleep and wake transitions.
    """

    num_processors: int
    enqueue_overhead: int = 100
    wakeup_overhead: int = 100

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if self.enqueue_overhead < 0 or self.wakeup_overhead < 0:
            raise ValueError("overheads must be non-negative")
