"""The paper's contribution: adaptive backoff synchronization.

- :mod:`repro.core.backoff` — the backoff policy hierarchy (Section 4):
  backoff on the barrier variable, linear and exponential backoff on the
  barrier flag, the spin-then-queue threshold hybrid, and the
  proportional policy for resource waiting (Section 8).
- :mod:`repro.core.barrier` — barrier algorithm descriptions: the
  single-variable barrier, the Tang–Yew two-variable barrier the paper
  studies, the Yew–Tseng–Lawrie software combining tree, and the
  blocking barrier.
- :mod:`repro.core.locks` — spin-lock models for the resource-waiting
  extension.
"""

from repro.core.backoff import (
    AdaptiveBackoff,
    BackoffPolicy,
    ExponentialFlagBackoff,
    FlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    NoFlagBackoff,
    ProportionalBackoff,
    RandomizedExponentialBackoff,
    ThresholdQueueBackoff,
    VariableBackoff,
)
from repro.core.selection import (
    PolicyAdvisor,
    Recommendation,
    SynchronizationProfile,
)
from repro.core.barrier import (
    BlockingBarrier,
    CombiningTreeBarrier,
    SingleVariableBarrier,
    TangYewBarrier,
)
from repro.core.locks import BackoffLock, TestAndSetLock, TestAndTestAndSetLock

__all__ = [
    "BackoffPolicy",
    "NoBackoff",
    "VariableBackoff",
    "FlagBackoff",
    "NoFlagBackoff",
    "LinearFlagBackoff",
    "ExponentialFlagBackoff",
    "RandomizedExponentialBackoff",
    "ThresholdQueueBackoff",
    "PolicyAdvisor",
    "Recommendation",
    "SynchronizationProfile",
    "ProportionalBackoff",
    "AdaptiveBackoff",
    "SingleVariableBarrier",
    "TangYewBarrier",
    "CombiningTreeBarrier",
    "BlockingBarrier",
    "TestAndSetLock",
    "TestAndTestAndSetLock",
    "BackoffLock",
]
