"""Thread-scoped ambient state shared by the tracer/exec/backend knobs.

Several subsystems expose a process-global "ambient" setting with a
``get_x()`` / ``set_x()`` pair and a context manager: the obs tracer,
the exec config, the supervisor config, the default barrier backend,
and the installed fault plan.  That model was fine while every run
owned the whole process (the CLI), but ``repro serve`` executes jobs
on worker *threads*, and two jobs must be able to hold different
tracers/configs at once without clobbering each other.

:class:`AmbientState` keeps the old contract and adds thread scoping:

- ``set(value)`` writes the **process-wide default** (legacy
  ``set_x()`` behaviour — what tests and the CLI top level use).
- ``scoped(value)`` pushes a **per-thread override**; ``get()``
  returns the innermost override of the *current thread*, falling
  back to the process default.  Context-manager nesting therefore
  behaves exactly as before on a single thread, while overrides on a
  job thread are invisible to every other thread.

Worker processes are forked/spawned from a job thread, so the child's
main thread can inherit a non-empty override stack via the fork
snapshot; :func:`reset_thread_overrides` clears every registered
state's stack for the current thread and is called from
``repro.exec.shards.reset_worker_state``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Generic, Iterator, List, TypeVar

T = TypeVar("T")

#: Every AmbientState ever constructed, so worker bootstrap can clear
#: inherited per-thread overrides without knowing who owns what.
_REGISTRY: List["AmbientState"] = []


class AmbientState(Generic[T]):
    """A process-wide default plus a per-thread override stack."""

    def __init__(self, name: str, default: T) -> None:
        self.name = name
        self._default = default
        self._initial = default
        self._local = threading.local()
        _REGISTRY.append(self)

    def _stack(self) -> List[T]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def get(self) -> T:
        """Innermost override of this thread, else the process default."""
        stack = self._stack()
        if stack:
            return stack[-1]
        return self._default

    def set(self, value: T) -> None:
        """Set the process-wide default (legacy ``set_x`` semantics)."""
        self._default = value

    def get_default(self) -> T:
        return self._default

    @contextmanager
    def scoped(self, value: T) -> Iterator[T]:
        """Push a thread-local override for the duration of the block."""
        stack = self._stack()
        stack.append(value)
        try:
            yield value
        finally:
            stack.pop()

    def clear_thread(self) -> None:
        """Drop every override held by the current thread."""
        self._local.stack = []

    def reset(self) -> None:
        """Restore the construction-time default (test helper)."""
        self._default = self._initial
        self.clear_thread()


def reset_thread_overrides() -> None:
    """Clear the current thread's override stacks on every state.

    Called from worker bootstrap: a pool worker is forked from the job
    thread that submitted the task, so the child starts life with that
    thread's overrides baked into its main thread.
    """
    for state in _REGISTRY:
        state.clear_thread()


def registered() -> List["AmbientState"]:
    return list(_REGISTRY)


Missing = object()


def scoped_or_default(state: "AmbientState", value: Any = Missing):
    """``state.scoped(value)`` unless value is Missing → no-op context."""
    if value is Missing:
        return _noop()
    return state.scoped(value)


@contextmanager
def _noop() -> Iterator[None]:
    yield None
