"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiment <id> [...]`` — regenerate paper artifacts by id;
                              ``--describe`` prints each experiment's
                              declared parameter schema, ``--param
                              NAME=VALUE`` sets any declared parameter.
- ``run <id>``              — run one experiment with the execution
                              layer (``--jobs`` worker processes,
                              ``--cache`` content-addressed result
                              reuse) and print a results digest for
                              bit-identity checks (see
                              docs/performance.md).
- ``list``                  — list available experiment ids.
- ``report``                — run every experiment, write reports to a
                              directory.
- ``verify``                — re-check the paper's headline claims and
                              print PASS/FAIL with measured evidence.
- ``barrier``               — simulate one barrier configuration.
- ``trace``                 — schedule an application and report its
                              synchronization statistics (optionally
                              saving the trace to .npz).
- ``advise``                — profile an application and recommend a
                              backoff policy (Section 8's pipeline).
- ``profile``               — run one experiment with tracing enabled;
                              writes manifest.json + events.jsonl + a
                              counter summary (see docs/observability.md).
- ``faults``                — run one experiment resiliently under a
                              fault-injection plan: per-point
                              checkpoint/resume, timeouts, bounded
                              retry, resilience summary (see
                              docs/faults.md).
- ``check``                 — verify the reproduction itself: invariant
                              conservation laws, differential oracles
                              (analytic vs simulated, execution-mode
                              parity, metamorphic relations) and
                              schema-derived fuzzing over every
                              registered experiment (see
                              docs/testing.md).
- ``chaos``                 — kill workers mid-sweep, tear a cache
                              entry and a checkpoint record, then
                              assert supervised recovery reproduces the
                              serial baseline digests bit-for-bit (see
                              docs/resilience.md).

``run``/``profile``/``faults``/``check`` also take the supervision
flags ``--retries`` / ``--deadline`` / ``--retry-policy`` (bounded
adaptive-backoff retries and per-point wall-clock budgets), and
``run``/``profile`` take ``--checkpoint-dir`` / ``--resume`` (durable
per-point checkpoints for any registry experiment).

Experiment ids are validated against the registry, not hard-coded into
the parser: an unknown id exits with status 2 and a did-you-mean
suggestion, consistently across ``experiment``/``run``/``profile``/
``faults``/``check``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.experiments import EXPERIMENTS, run as run_experiment
from repro.barrier.backend import (
    BACKENDS,
    BackendUnavailableError,
    backend_context,
)
from repro.core.backoff import (
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.core.selection import PolicyAdvisor, SynchronizationProfile
from repro.exec.context import (
    DEFAULT_CACHE_DIR,
    ExecConfig,
    execution,
    get_stats,
    jobs_arg,
    reset_stats,
)
from repro.exec.supervisor import (
    SupervisorConfig,
    parse_backoff_spec,
    supervision,
)


#: Seeds feed numpy Generators; this is the range every stream accepts.
MAX_SEED = 2**32


def _seed_arg(text: str) -> int:
    """argparse type for ``--seed``: an integer in ``[0, 2**32)``.

    Validating here turns a bad seed into a one-line usage error
    instead of a raw numpy traceback from deep inside a simulator.
    """
    try:
        seed = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be an integer, got {text!r}"
        ) from None
    if not 0 <= seed < MAX_SEED:
        raise argparse.ArgumentTypeError(
            f"seed must be in [0, 2**32), got {seed}"
        )
    return seed


def _build_policy(name: str, base: int, step: int):
    if name == "none":
        return NoBackoff()
    if name == "variable":
        return VariableBackoff()
    if name == "linear":
        return LinearFlagBackoff(step=step)
    if name == "exponential":
        return ExponentialFlagBackoff(base=base)
    raise ValueError(f"unknown policy {name!r}")


def _cmd_list(_args) -> int:
    for experiment_id in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[experiment_id].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{experiment_id:12} {summary}")
    return 0


def _experiment_kwargs(
    experiment_id: str, repetitions=None, scale=None, seed=None, params=None
) -> dict:
    """CLI overrides resolved against the experiment's declared schema.

    The shared flags (``--repetitions`` / ``--scale`` / ``--seed``)
    apply when the spec declares the parameter; ``--param NAME=VALUE``
    entries are parsed by the declared parameter type and reject
    unknown names with the list of valid ones
    (:class:`repro.registry.ParameterError`).
    """
    from repro.registry import ParameterError, get_spec

    spec = get_spec(experiment_id)
    names = set(spec.param_names())
    kwargs = {}
    for name, value in (
        ("repetitions", repetitions),
        ("scale", scale),
        ("seed", seed),
    ):
        if value is not None and name in names:
            kwargs[name] = value
    for entry in params or ():
        name, sep, text = entry.partition("=")
        if not sep:
            raise ParameterError(
                f"--param expects NAME=VALUE, got {entry!r}"
            )
        kwargs[name] = spec.get_param(name).parse(text)
    return kwargs


def _add_param_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "-p", "--param", action="append", default=None, metavar="NAME=VALUE",
        help="set any declared experiment parameter (repeatable; see "
             "'experiment --describe <id>' for names, types and defaults)",
    )


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="episode engine for barrier sweeps: 'numpy' is the "
             "vectorized kernel (requires the [fast] extra), 'python' "
             "the reference event loop, 'auto' picks numpy when "
             "available; results are bit-identical (docs/vectorization.md)",
    )


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    """The shared execution flags: ``--jobs``, ``--cache``, ``--cache-dir``."""
    p.add_argument(
        "--jobs", type=jobs_arg, default=None,
        help="worker processes for sweep execution (>= 1; default: serial)",
    )
    p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse results from the content-addressed cache and store "
             "fresh ones into it",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def _exec_config_from_args(args) -> Optional[ExecConfig]:
    """An engine-routed ExecConfig, or None when no exec flag was given.

    Any explicit exec flag — even ``--jobs 1`` — routes the run through
    the exec engine, so serial and parallel runs of the same experiment
    produce identical observability output and manifest digests.
    """
    jobs = getattr(args, "jobs", None)
    cache = getattr(args, "cache", None)
    cache_dir = getattr(args, "cache_dir", None)
    if jobs is None and cache is None and cache_dir is None:
        return None
    return ExecConfig(
        jobs=jobs if jobs is not None else 1,
        cache=bool(cache),
        cache_dir=cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
        force_engine=True,
    )


def _retry_policy_arg(text: str) -> str:
    """argparse type for ``--retry-policy``: validate the spec up front."""
    try:
        parse_backoff_spec(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def _add_supervisor_args(
    p: argparse.ArgumentParser, checkpoint: bool = True
) -> None:
    """The shared supervision flags (see docs/resilience.md)."""
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry a failed or timed-out point up to N times "
             "(default: 0 — fail fast)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock budget; an expired point raises "
             "PointTimeoutError (and is retried under --retries)",
    )
    p.add_argument(
        "--retry-policy", type=_retry_policy_arg, default=None,
        metavar="SPEC",
        help="retry-wait schedule: exponential[:base=B], linear[:step=S] "
             "or none — the paper's own backoff shapes (default: "
             "exponential)",
    )
    if checkpoint:
        p.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="write an atomic digest-verified checkpoint per finished "
                 "point into DIR",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="replay compatible points from --checkpoint-dir before "
                 "running the rest",
        )


def _supervisor_config_from_args(args) -> Optional[SupervisorConfig]:
    """A SupervisorConfig, or None when no supervision flag was given."""
    retries = getattr(args, "retries", None)
    deadline = getattr(args, "deadline", None)
    policy = getattr(args, "retry_policy", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = bool(getattr(args, "resume", False))
    if resume and not checkpoint_dir:
        raise ValueError("--resume requires --checkpoint-dir")
    if (
        retries is None
        and deadline is None
        and policy is None
        and checkpoint_dir is None
    ):
        return None
    return SupervisorConfig(
        retries=retries if retries is not None else 0,
        deadline_seconds=deadline,
        backoff=policy if policy is not None else "exponential",
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )


def _render_exec_stats(config: ExecConfig) -> str:
    stats = get_stats()
    cache_state = "on" if config.cache else "off"
    line = (
        f"jobs={config.jobs}, cache {cache_state}, "
        f"{stats.cache_hits} hit(s) / {stats.cache_misses} miss(es) / "
        f"{stats.cache_stores} store(s)"
    )
    if stats.shards:
        line += f", {stats.shards} shard(s)"
    recoveries = []
    if stats.points_resumed:
        recoveries.append(f"{stats.points_resumed} resumed")
    if stats.retries:
        recoveries.append(f"{stats.retries} retried")
    if stats.worker_deaths:
        recoveries.append(f"{stats.worker_deaths} worker death(s)")
    if stats.cache_quarantined:
        recoveries.append(f"{stats.cache_quarantined} quarantined")
    if recoveries:
        line += ", " + ", ".join(recoveries)
    return line


def _cmd_experiment(args) -> int:
    if args.describe:
        from repro.registry import get_spec

        for index, experiment_id in enumerate(args.ids):
            if index:
                print()
            print(get_spec(experiment_id).describe())
        return 0
    for experiment_id in args.ids:
        kwargs = _experiment_kwargs(
            experiment_id, args.repetitions, args.scale, params=args.param
        )
        print(run_experiment(experiment_id, **kwargs))
        print()
    return 0


def _cmd_run(args) -> int:
    import time
    from contextlib import ExitStack

    from repro.exec.cache import payload_digest
    from repro.obs.manifest import jsonable

    config = _exec_config_from_args(args)
    try:
        supervisor = _supervisor_config_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if supervisor is not None and config is None:
        # Supervision lives in the exec engine: arm it even without an
        # explicit exec flag, so --retries alone still takes effect.
        config = ExecConfig(force_engine=True)
    kwargs = _experiment_kwargs(
        args.id, args.repetitions, args.scale, seed=args.seed,
        params=args.param,
    )
    reset_stats()
    start = time.perf_counter()
    with ExitStack() as stack:
        if supervisor is not None:
            stack.enter_context(supervision(supervisor))
        if config is not None:
            stack.enter_context(execution(config))
        result = run_experiment(args.id, **kwargs)
    wall_time = time.perf_counter() - start
    if not args.quiet:
        print(result)
        print()
    print(f"experiment     : {args.id}")
    print(f"wall time      : {wall_time:.3f}s")
    if config is not None:
        print(f"execution      : {_render_exec_stats(config)}")
    # The digest covers the canonicalized result data alone — never
    # wall time or execution mode — so any two runs of the same
    # experiment and seed can be compared with one string equality.
    print(f"results digest : {payload_digest(jsonable(result.data))}")
    return 0


def _cmd_profile(args) -> int:
    from contextlib import ExitStack

    from repro.obs import profile_experiment

    config = _exec_config_from_args(args)
    try:
        supervisor = _supervisor_config_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if supervisor is not None and config is None:
        config = ExecConfig(force_engine=True)
    kwargs = _experiment_kwargs(
        args.id, args.repetitions, args.scale, params=args.param
    )
    with ExitStack() as stack:
        if supervisor is not None:
            stack.enter_context(supervision(supervisor))
        if config is not None:
            stack.enter_context(execution(config))
        profile = profile_experiment(
            args.id,
            output_dir=args.output,
            ring_size=args.ring_size,
            **kwargs,
        )
    if args.show_result:
        print(profile.result)
        print()
    print(profile.summary)
    print()
    print(f"manifest : {profile.manifest_path}")
    print(f"events   : {profile.events_path} "
          f"({profile.manifest.events_emitted:,} events)")
    print(f"summary  : {profile.summary_path}")
    print(f"digest   : {profile.manifest.deterministic_digest()}")
    return 0


def _cmd_barrier(args) -> int:
    if args.barrier_style == "tree":
        from repro.barrier.tree import simulate_tree_barrier

        policy = _build_policy(args.policy, args.base, args.step)
        aggregate = simulate_tree_barrier(
            args.n, args.interval_a, degree=args.degree, policy=policy,
            repetitions=args.repetitions, seed=args.seed,
        )
        print(
            f"N={args.n} A={args.interval_a} policy={args.policy} "
            f"tree degree={args.degree} (reps={aggregate.repetitions})"
        )
        print(f"  accesses/process : {aggregate.mean_accesses:.2f}")
        print(f"  waiting cycles   : {aggregate.mean_waiting_time:.2f}")
        print(f"  relative sigma   : {aggregate.relative_stddev_accesses:.3f}")
        return 0
    from repro.barrier.simulator import simulate_barrier

    policy = _build_policy(args.policy, args.base, args.step)
    aggregate = simulate_barrier(
        args.n, args.interval_a, policy, repetitions=args.repetitions,
        seed=args.seed,
    )
    print(
        f"N={args.n} A={args.interval_a} policy={args.policy} "
        f"(reps={aggregate.repetitions})"
    )
    print(f"  accesses/process : {aggregate.mean_accesses:.2f}")
    print(f"  waiting cycles   : {aggregate.mean_waiting_time:.2f}")
    print(f"  relative sigma   : {aggregate.relative_stddev_accesses:.3f}")
    return 0


def _cmd_trace(args) -> int:
    from repro.trace.apps import build_app
    from repro.trace.scheduler import PostMortemScheduler

    program = build_app(args.app, scale=args.scale)
    scheduler = PostMortemScheduler(
        program,
        args.cpus,
        barrier_style=args.barrier_style,
        tree_degree=args.degree,
    )
    trace = scheduler.run()
    print(
        f"{args.app} x{args.cpus} (scale {args.scale}, "
        f"{args.barrier_style} barriers):"
    )
    print(f"  references       : {len(trace):,} over {trace.cycles:,} cycles")
    print(f"  sync fraction    : {100 * trace.sync_fraction:.2f}%")
    print(f"  barriers         : {len(trace.barriers)}")
    print(f"  mean A / mean E  : {trace.mean_interval_a():.0f} / "
          f"{trace.mean_interval_e():.0f} cycles")
    if args.save:
        from repro.trace.io import save_trace

        save_trace(trace, args.save)
        print(f"  saved to         : {args.save}")
    return 0


def _cmd_report(args) -> int:
    """Run every experiment and write reports to a directory."""
    import os

    os.makedirs(args.output, exist_ok=True)
    failures = 0
    for experiment_id in sorted(EXPERIMENTS):
        try:
            result = run_experiment(experiment_id)
        except Exception as error:  # pragma: no cover - defensive
            print(f"{experiment_id:18} FAILED: {error}")
            failures += 1
            continue
        path = os.path.join(args.output, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(str(result) + "\n")
        print(f"{experiment_id:18} -> {path}")
    return 1 if failures else 0


def _cmd_verify(args) -> int:
    from repro.analysis.claims import verify_report

    report = verify_report(repetitions=args.repetitions, seed=args.seed)
    print(report)
    return 0 if "FAIL" not in report else 1


def _cmd_faults(args) -> int:
    from repro.faults.runner import (
        CheckpointMismatchError,
        run_experiment_resilient,
    )

    overrides = _experiment_kwargs(
        args.id, args.repetitions, args.scale, params=args.param
    )
    try:
        summary = run_experiment_resilient(
            args.id,
            plan_spec=args.plan,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            timeout_seconds=args.timeout,
            max_retries=args.max_retries,
            retry_backoff_seconds=args.retry_backoff,
            max_points=args.max_points,
            fresh=args.fresh,
            jobs=args.jobs,
            use_cache=args.cache,
            cache_dir=args.cache_dir,
            retry_policy=(
                args.retry_policy
                if args.retry_policy is not None
                else "exponential"
            ),
            **overrides,
        )
    except (ValueError, CheckpointMismatchError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(summary.render())
    return 0 if summary.ok else 1


def _cmd_check(args) -> int:
    import os
    from contextlib import ExitStack

    from repro.check import run_checks

    try:
        supervisor = _supervisor_config_from_args(args)
        with ExitStack() as stack:
            if supervisor is not None:
                stack.enter_context(supervision(supervisor))
            report = run_checks(
                suites=args.suite,
                budget=args.budget,
                seed=args.seed,
                ids=args.ids,
                out_dir=args.output,
            )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if args.output:
        print()
        print(f"report   : {os.path.join(args.output, 'report.json')}")
        print(f"manifest : {os.path.join(args.output, 'manifest.json')} "
              f"(digest {report.manifest_digest[:16]}…)")
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    import json
    import os

    from repro.exec.chaos import run_chaos

    overrides = _experiment_kwargs(
        args.id, args.repetitions, args.scale, params=args.param
    )
    try:
        report = run_chaos(
            args.id,
            seed=args.seed,
            jobs=args.jobs if args.jobs is not None else 4,
            kill=args.kill,
            hang=args.hang,
            hang_seconds=args.hang_seconds,
            deadline_seconds=args.deadline,
            retries=args.retries if args.retries is not None else 2,
            retry_policy=(
                args.retry_policy
                if args.retry_policy is not None
                else "exponential"
            ),
            corrupt_cache=args.corrupt_cache,
            truncate_checkpoint=args.truncate_checkpoint,
            work_dir=args.work_dir,
            keep=args.keep,
            **overrides,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if args.counters:
        os.makedirs(os.path.dirname(args.counters) or ".", exist_ok=True)
        with open(args.counters, "w", encoding="utf-8") as handle:
            json.dump(report.counters(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"counters  : {args.counters}")
    return 0 if report.ok else 1


def _cmd_advise(args) -> int:
    from repro.trace.apps import build_app
    from repro.trace.scheduler import PostMortemScheduler

    program = build_app(args.app, scale=args.scale)
    trace = PostMortemScheduler(program, args.cpus).run()
    profile = SynchronizationProfile.from_trace(trace)
    advisor = PolicyAdvisor(waiting_weight=args.waiting_weight)
    print(f"profile: N={profile.num_processors}, A~{profile.interval_a:.0f}, "
          f"A/N={profile.spread_ratio:.2f}")
    print(f"analytic   : {advisor.recommend(profile)}")
    if not args.no_simulate:
        recommendation = advisor.select(
            profile, repetitions=args.repetitions, seed=args.seed
        )
        print(f"empirical  : {recommendation}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Adaptive Backoff Synchronization Techniques — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(fn=_cmd_list)

    p = sub.add_parser("experiment", help="run experiments by id")
    p.add_argument("ids", nargs="+", metavar="ID",
                   help="experiment id(s); see 'python -m repro list'")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument(
        "--describe", action="store_true",
        help="print each experiment's parameter schema instead of running",
    )
    _add_param_arg(p)
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser(
        "run",
        help="run one experiment, optionally parallel/cached, and print "
             "its results digest",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=_seed_arg, default=None)
    p.add_argument("--quiet", action="store_true",
                   help="print only the run summary, not the report text")
    _add_param_arg(p)
    _add_exec_args(p)
    _add_supervisor_args(p)
    _add_backend_arg(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("barrier", help="simulate one barrier configuration")
    p.add_argument("--n", type=int, default=64, help="processors")
    p.add_argument("--interval-a", type=int, default=1000, help="arrival interval A")
    p.add_argument(
        "--policy",
        choices=("none", "variable", "linear", "exponential"),
        default="exponential",
    )
    p.add_argument("--base", type=int, default=2, help="exponential base")
    p.add_argument("--step", type=int, default=1, help="linear step")
    p.add_argument("--repetitions", type=int, default=100)
    p.add_argument("--seed", type=_seed_arg, default=0)
    p.add_argument("--barrier-style", choices=("flat", "tree"),
                   default="flat",
                   help="flat Tang-Yew barrier or a combining tree")
    p.add_argument("--degree", type=int, default=4,
                   help="combining-tree fan-in (with --barrier-style tree)")
    _add_backend_arg(p)
    p.set_defaults(fn=_cmd_barrier)

    p = sub.add_parser("trace", help="schedule an application")
    p.add_argument("--app", choices=("FFT", "SIMPLE", "WEATHER"), default="SIMPLE")
    p.add_argument("--cpus", type=int, default=64)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--barrier-style", choices=("flat", "tree"), default="flat")
    p.add_argument("--degree", type=int, default=4, help="tree fan-in")
    p.add_argument("--save", default=None, help="write trace to this .npz path")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("report", help="run every experiment, write reports")
    p.add_argument("--output", default="reports", help="output directory")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("verify", help="re-check the paper's headline claims")
    p.add_argument("--repetitions", type=int, default=30)
    p.add_argument("--seed", type=_seed_arg, default=0)
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "profile",
        help="run one experiment with tracing on; write manifest + events",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument(
        "--output", default=None,
        help="output directory (default: profiles/<experiment-id>)",
    )
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument(
        "--ring-size", type=int, default=4096,
        help="in-memory event buffer size (the JSONL file gets everything)",
    )
    p.add_argument(
        "--show-result", action="store_true",
        help="also print the experiment's report text",
    )
    _add_param_arg(p)
    _add_exec_args(p)
    _add_supervisor_args(p)
    _add_backend_arg(p)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "faults",
        help="run an experiment resiliently under a fault-injection plan",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument(
        "--plan", default="none",
        help="named plan (none, stragglers, hot-module, lossy-net, "
             "flaky-flags, chaos) or a spec string like "
             "'stragglers:probability=0.2;grants:drop=0.05'",
    )
    p.add_argument("--seed", type=_seed_arg, default=0,
                   help="root seed for the fault schedules")
    p.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint directory (default: checkpoints/<experiment-id>)",
    )
    p.add_argument("--timeout", "--deadline", dest="timeout",
                   type=float, default=None,
                   help="per-point wall-clock budget in seconds "
                        "(--deadline is the run/profile spelling)")
    p.add_argument("--max-retries", "--retries", dest="max_retries",
                   type=int, default=2,
                   help="retries per failed point "
                        "(--retries is the run/profile spelling)")
    p.add_argument("--retry-backoff", type=float, default=0.05,
                   help="base retry sleep in seconds; the wait shape "
                        "comes from --retry-policy")
    p.add_argument("--retry-policy", type=_retry_policy_arg, default=None,
                   metavar="SPEC",
                   help="retry-wait schedule: exponential[:base=B], "
                        "linear[:step=S] or none (default: exponential, "
                        "the historical doubling schedule)")
    p.add_argument(
        "--max-points", type=int, default=None,
        help="stop after running this many new points (simulates a crash; "
             "rerun to resume from the checkpoint)",
    )
    p.add_argument("--fresh", action="store_true",
                   help="discard any existing checkpoint first")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    _add_param_arg(p)
    _add_exec_args(p)
    _add_backend_arg(p)
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "check",
        help="verify the reproduction: invariants, differential oracles, "
             "schema-derived fuzzing",
    )
    p.add_argument(
        "--suite", action="append", default=None,
        choices=("invariants", "differential", "fuzz"),
        help="run only this suite (repeatable; default: all three)",
    )
    p.add_argument(
        "--budget", default="default",
        help="effort profile: small, default, large, or an integer "
             "case count",
    )
    p.add_argument("--seed", type=_seed_arg, default=0,
                   help="root seed; every randomized case derives from it")
    p.add_argument(
        "--ids", nargs="+", default=None, metavar="ID",
        help="restrict fuzzing (and exec-parity sampling) to these "
             "experiment ids",
    )
    p.add_argument(
        "--output", default="checks",
        help="directory for report.json + manifest.json artifacts",
    )
    _add_supervisor_args(p, checkpoint=False)
    _add_backend_arg(p)
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser(
        "chaos",
        help="kill workers and damage durable state mid-sweep, then "
             "assert supervised recovery matches the serial baseline",
    )
    p.add_argument("id", metavar="ID",
                   help="experiment id; see 'python -m repro list'")
    p.add_argument("--seed", type=_seed_arg, default=0,
                   help="seeds the victim choice and the fault schedule")
    p.add_argument("--jobs", type=jobs_arg, default=None,
                   help="worker processes for the chaos runs (default: 4)")
    p.add_argument("--kill", type=int, default=1,
                   help="worker kills (SIGKILL) to inject mid-sweep")
    p.add_argument("--hang", type=int, default=0,
                   help="points to hang into their --deadline")
    p.add_argument("--hang-seconds", type=float, default=30.0,
                   help="how long an injected hang sleeps")
    p.add_argument(
        "--corrupt-cache", action=argparse.BooleanOptionalAction,
        default=True,
        help="tear the victim point's cache entry between runs",
    )
    p.add_argument(
        "--truncate-checkpoint", action=argparse.BooleanOptionalAction,
        default=True,
        help="tear the victim point's checkpoint record between runs",
    )
    p.add_argument("--work-dir", default=None,
                   help="directory for the cache + checkpoints "
                        "(default: a temp dir, deleted afterwards)")
    p.add_argument("--keep", action="store_true",
                   help="keep the work dir for post-mortems")
    p.add_argument("--counters", default=None, metavar="PATH",
                   help="also write the recovery counters as JSON to PATH")
    p.add_argument("--repetitions", type=int, default=None)
    p.add_argument("--scale", type=float, default=None)
    _add_param_arg(p)
    _add_supervisor_args(p, checkpoint=False)
    _add_backend_arg(p)
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("advise", help="recommend a backoff policy from a profile")
    p.add_argument("--app", choices=("FFT", "SIMPLE", "WEATHER"), default="SIMPLE")
    p.add_argument("--cpus", type=int, default=64)
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--waiting-weight", type=float, default=0.1)
    p.add_argument("--repetitions", type=int, default=30)
    p.add_argument("--seed", type=_seed_arg, default=0)
    p.add_argument("--no-simulate", action="store_true",
                   help="skip the empirical ranking")
    p.set_defaults(fn=_cmd_advise)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.registry import ParameterError, UnknownExperimentError

    args = build_parser().parse_args(argv)
    try:
        # --backend installs the process default for the whole command;
        # every sweep the command triggers then resolves against it.
        with backend_context(getattr(args, "backend", None)):
            return args.fn(args)
    except BackendUnavailableError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ParameterError, UnknownExperimentError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Release the worker pools without blocking on them (the pool
        # leak fix): a ^C mid-sweep must not strand worker processes.
        from repro.exec.engine import shutdown_pools

        shutdown_pools(wait=False)
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
