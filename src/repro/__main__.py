"""``python -m repro`` — thin entry point over :mod:`repro.cli`.

The CLI itself lives in the :mod:`repro.cli` package (one module per
subcommand, shared options in :mod:`repro.cli.common`); this module
only re-exports ``build_parser``/``main`` so ``python -m repro`` and
the historical ``from repro.__main__ import main`` both keep working.
"""

from __future__ import annotations

import sys

from repro.cli import build_parser, main

__all__ = ["build_parser", "main"]

if __name__ == "__main__":
    sys.exit(main())
