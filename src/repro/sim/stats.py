"""Statistics containers shared by the experiment harnesses.

These are deliberately dependency-light: plain Python plus numpy for the
odd vectorised helper.  They are used by the barrier sweeps (Figures
4-10), the coherence simulator (Tables 1-2, Figure 1) and the trace
scheduler (Table 3, Figure 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """(mean, half-width) of a normal-approximation confidence interval."""
    values = list(values)
    if len(values) < 2:
        return (mean(values), 0.0)
    m = mean(values)
    var = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    half = z * math.sqrt(var / len(values))
    return (m, half)


class RunningStats:
    """Welford-style running mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one observation into the statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def relative_stddev(self) -> float:
        """stddev / mean — the paper verifies this is below ~7%."""
        if not self.mean:
            return 0.0
        return self.stddev / abs(self.mean)

    def merge(self, other: "RunningStats") -> None:
        """Fold another RunningStats into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        if other.minimum is not None:
            self.minimum = min(self.minimum, other.minimum)  # type: ignore[arg-type]
        if other.maximum is not None:
            self.maximum = max(self.maximum, other.maximum)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )


class Histogram:
    """An integer-keyed histogram (e.g. invalidations-per-write, Figure 1)."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self.total = 0

    def add(self, key: int, count: int = 1) -> None:
        if count < 0:
            raise ValueError("histogram counts must be non-negative")
        self._counts[key] = self._counts.get(key, 0) + count
        self.total += count

    def count(self, key: int) -> int:
        return self._counts.get(key, 0)

    def fraction(self, key: int) -> float:
        """Fraction of all observations that landed on ``key``."""
        if not self.total:
            return 0.0
        return self._counts.get(key, 0) / self.total

    def cumulative_fraction(self, key: int) -> float:
        """Fraction of observations with value <= key."""
        if not self.total:
            return 0.0
        return sum(c for k, c in self._counts.items() if k <= key) / self.total

    def keys(self) -> List[int]:
        return sorted(self._counts)

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self._counts.items())

    def as_fractions(self) -> List[Tuple[int, float]]:
        return [(k, self.fraction(k)) for k in self.keys()]

    def merge(self, other: "Histogram") -> None:
        for key, count in other.items():
            self.add(key, count)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"Histogram(total={self.total}, bins={len(self._counts)})"


@dataclass
class Series:
    """A labelled (x, y) series — one curve of a paper figure."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x: float) -> float:
        """The y value recorded for ``x`` (exact match required)."""
        try:
            return self.ys[self.xs.index(x)]
        except ValueError:
            raise KeyError(f"series {self.label!r} has no point at x={x}") from None

    def __len__(self) -> int:
        return len(self.xs)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self.xs, self.ys))
