"""Seeded random-stream management.

Every stochastic component in the repository draws from a named stream
spawned off a single root seed, so that

- two runs with the same seed are bit-identical, and
- adding a new consumer of randomness does not perturb existing streams
  (each stream is keyed by name, not by draw order).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_seed(root_seed: int, name: str) -> int:
    """Public alias of :func:`_derive_seed` for cross-layer consumers."""
    return _derive_seed(root_seed, name)


def spawn_stream(root_seed: int, name: str) -> np.random.Generator:
    """Return a numpy Generator keyed by ``(root_seed, name)``."""
    return np.random.default_rng(_derive_seed(root_seed, name))


class RandomStreams:
    """A registry of named, independently seeded random streams.

    Example:
        >>> streams = RandomStreams(seed=7)
        >>> a = streams.get("arrivals")
        >>> b = streams.get("arrivals")
        >>> a is b
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = spawn_stream(self.seed, name)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; subsequent ``get`` calls re-seed from scratch."""
        self._streams.clear()

    def child(self, name: str) -> "RandomStreams":
        """A new registry whose root seed is derived from this one."""
        return RandomStreams(seed=_derive_seed(self.seed, name))
