"""A minimal deterministic discrete-event simulation kernel.

The kernel is intentionally small: an event is a ``(time, priority, seq,
callback)`` tuple kept in a binary heap.  Determinism is guaranteed by the
monotonically increasing sequence number, which breaks ties between events
scheduled for the same time with the same priority in insertion order.

The barrier simulator in :mod:`repro.barrier.simulator` does *not* use this
kernel (it uses a specialised FIFO-collapse of the paper's per-cycle retry
loop); the kernel serves the multistage network simulator, the resource
simulator and the queueing simulator, which have genuinely event-driven
structure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.faults.plan import get_fault_plan
from repro.obs.tracer import get_tracer


class SimulationStalledError(RuntimeError):
    """The simulation cannot make the progress it was asked for.

    Raised when :meth:`Simulator.run` exhausts ``max_events`` with work
    still pending (a runaway or livelocked event loop), or — via the
    :class:`IndexError`-compatible subclass below — when an event is
    popped from an empty queue.
    """


class EmptyQueueError(SimulationStalledError, IndexError):
    """Empty-queue pop; also an ``IndexError`` for historical callers."""


@dataclass(frozen=True)
class Event:
    """An immutable record of a scheduled event.

    Attributes:
        time: simulation time at which the event fires.
        priority: lower values fire first among same-time events.
        seq: insertion sequence number (final tie-break, guarantees
            determinism).
        callback: zero-argument callable executed when the event fires.
    """

    time: int
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``callback`` at ``time``; returns the Event record."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, priority=priority, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise EmptyQueueError(
                "pop from an empty EventQueue: no events are pending, so "
                "the simulation cannot advance"
            )
        __, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending event, or None if empty."""
        if not self._heap:
            return None
        return self._heap[0][1].time


class Simulator:
    """Drives an :class:`EventQueue` until exhaustion or a time horizon.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5, lambda: fired.append(sim.now))
        >>> sim.run()
        1
        >>> fired
        [5]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now = 0
        self._running = False

    def schedule(
        self, time: int, callback: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule an event at absolute time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time}, simulation time is {self.now}"
            )
        plan = get_fault_plan()
        if plan is not None:
            time += plan.event_jitter(time)
        event = self._queue.push(time, callback, priority)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("sim.events_scheduled")
            tracer.observe("sim.heap_depth", len(self._queue))
        return event

    def schedule_after(
        self, delay: int, callback: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule an event ``delay`` cycles after the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, priority)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Args:
            until: inclusive time horizon; events scheduled later remain
                queued.
            max_events: runaway guard; exceeding it with work still
                pending raises :class:`SimulationStalledError`.

        Returns:
            The number of events executed.

        Raises:
            SimulationStalledError: ``max_events`` events were executed
                and the queue still holds runnable work (within
                ``until``) — a runaway or livelocked event loop.
        """
        executed = 0
        tracer = get_tracer()
        trace_on = tracer.enabled
        self._running = True
        try:
            while len(self._queue):
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationStalledError(
                        f"simulation stalled: executed {executed} events "
                        f"(max_events={max_events}) at time {self.now} with "
                        f"{len(self._queue)} event(s) still pending "
                        f"(next at t={next_time}); this usually means a "
                        "callback reschedules itself unconditionally"
                    )
                event = self._queue.pop()
                self.now = event.time
                event.callback()
                executed += 1
                if trace_on:
                    tracer.emit(
                        "sim.event",
                        time=event.time,
                        priority=event.priority,
                        heap=len(self._queue),
                    )
        finally:
            self._running = False
        if trace_on:
            tracer.count("sim.events_fired", executed)
        if until is not None and self.now < until and not len(self._queue):
            self.now = until
        return executed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
