"""Simulation substrate: event kernel, deterministic RNG, statistics.

This subpackage provides the machinery shared by every simulator in the
repository:

- :mod:`repro.sim.engine` — a minimal deterministic discrete-event kernel.
- :mod:`repro.sim.rng` — seeded random-stream management so that every
  experiment is exactly reproducible.
- :mod:`repro.sim.stats` — running statistics, histograms and series
  containers used by the experiment harnesses.
"""

from repro.sim.engine import (
    Event,
    EventQueue,
    SimulationStalledError,
    Simulator,
)
from repro.sim.rng import RandomStreams, derive_seed, spawn_stream
from repro.sim.stats import (
    Histogram,
    RunningStats,
    Series,
    confidence_interval,
    mean,
)

__all__ = [
    "Event",
    "EventQueue",
    "SimulationStalledError",
    "Simulator",
    "RandomStreams",
    "derive_seed",
    "spawn_stream",
    "Histogram",
    "RunningStats",
    "Series",
    "confidence_interval",
    "mean",
]
