"""Structured run tracing: events, counters, observations and timers.

The paper's evidence is entirely quantitative — per-cycle network
accesses, hot-spot contention, invalidation counts — so the simulators
carry lightweight hooks that report *where* cycles and traffic go
inside a run.  This module is the substrate for those hooks:

- :class:`Tracer` — collects structured events (dicts with a ``kind``),
  named monotonic **counters**, value **observations** (count / total /
  min / max plus power-of-two buckets) and wall-clock **timers**.
  Events go to a bounded in-memory ring buffer and, optionally, to a
  :class:`JsonlSink` (one JSON object per line).
- :class:`NullTracer` — the default: every method is a no-op and
  ``enabled`` is False, so instrumented code pays one boolean check
  when tracing is off.
- :func:`get_tracer` / :func:`set_tracer` / :func:`tracing` — the
  process-wide active tracer.  Simulators call ``get_tracer()`` once
  per run, hoist ``tracer.enabled`` into a local, and skip all
  instrumentation when it is False.

The module is deliberately zero-dependency (stdlib only) so every layer
of the repository can import it without cost or cycles.

Naming convention (see docs/observability.md): dotted lowercase
``layer.metric`` names, e.g. ``barrier.denied_accesses``,
``sched.rmw_stalls``, ``directory.overflow_invalidations``.  Counters
are monotonic totals; observations are per-sample distributions.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro._ambient import AmbientState


class JsonlSink:
    """Append-only JSON-lines event sink (one event object per line)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[Any] = open(self.path, "w", encoding="utf-8")
        self.lines_written = 0

    def write(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError(f"sink {self.path!r} is closed")
        self._handle.write(
            json.dumps(event, separators=(",", ":"), sort_keys=True, default=str)
        )
        self._handle.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"JsonlSink({self.path!r}, lines={self.lines_written})"


class CallbackSink:
    """Event sink that hands every event dict to a callable.

    The per-job subscription hook used by ``repro serve``: each job
    installs ``Tracer(sink=CallbackSink(job.add_event))`` so progress
    events stream to HTTP clients as they are emitted.  The callback
    runs on the emitting thread; it must be cheap and thread-safe.
    """

    def __init__(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        self.callback = callback
        self.events_delivered = 0

    def write(self, event: Dict[str, Any]) -> None:
        self.callback(event)
        self.events_delivered += 1

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __repr__(self) -> str:
        return f"CallbackSink(events={self.events_delivered})"


class ValueStats:
    """Distribution summary of observed values.

    Tracks count / total / min / max exactly, plus a coarse histogram in
    power-of-two buckets (bucket ``b`` holds values with
    ``bit_length() == b``; zero and negatives land in bucket 0).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        bucket = int(value).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:
        return (
            f"ValueStats(count={self.count}, mean={self.mean:.3g}, "
            f"min={self.minimum}, max={self.maximum})"
        )


class Tracer:
    """Collects events, counters, observations and timers for one run."""

    enabled = True

    def __init__(
        self,
        run_id: str = "run",
        sink: Optional[JsonlSink] = None,
        ring_size: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.run_id = run_id
        self.sink = sink
        self.ring: deque = deque(maxlen=ring_size)
        self.event_totals: Dict[str, int] = {}
        self.counters: Dict[str, float] = {}
        self.observations: Dict[str, ValueStats] = {}
        self.timers: Dict[str, ValueStats] = {}
        self._seq = 0
        self._clock = clock

    # -- events --------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one structured event; returns the event dict."""
        event: Dict[str, Any] = {"seq": self._seq, "kind": kind}
        event.update(fields)
        self._seq += 1
        self.event_totals[kind] = self.event_totals.get(kind, 0) + 1
        self.ring.append(event)
        if self.sink is not None:
            self.sink.write(event)
        return event

    @property
    def events_emitted(self) -> int:
        """Total events emitted (the ring buffer may hold fewer)."""
        return self._seq

    def recent(self, n: Optional[int] = None, kind: Optional[str] = None) -> List[dict]:
        """The last ``n`` buffered events (all of them if ``n`` is None)."""
        events: Iterator[dict] = iter(self.ring)
        if kind is not None:
            events = (event for event in events if event["kind"] == kind)
        selected = list(events)
        if n is not None:
            selected = selected[-n:]
        return selected

    # -- counters / observations / timers ------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the monotonic counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the value distribution ``name``."""
        stats = self.observations.get(name)
        if stats is None:
            stats = self.observations[name] = ValueStats()
        stats.add(value)

    @contextmanager
    def timer(self, name: str):
        """Context manager recording wall-clock seconds under ``name``."""
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            stats = self.timers.get(name)
            if stats is None:
                stats = self.timers[name] = ValueStats()
            stats.add(elapsed)

    # -- lifecycle ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All collected state as one JSON-serialisable dict."""
        return {
            "run_id": self.run_id,
            "events_emitted": self.events_emitted,
            "event_totals": dict(sorted(self.event_totals.items())),
            "counters": dict(sorted(self.counters.items())),
            "observations": {
                name: stats.as_dict()
                for name, stats in sorted(self.observations.items())
            },
            "timers": {
                name: stats.as_dict()
                for name, stats in sorted(self.timers.items())
            },
        }

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def __repr__(self) -> str:
        return (
            f"Tracer({self.run_id!r}, events={self.events_emitted}, "
            f"counters={len(self.counters)})"
        )


class _NullTimer:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullTracer:
    """The default tracer: does nothing, as cheaply as possible."""

    enabled = False
    run_id = "null"

    __slots__ = ()

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    def count(self, name: str, amount: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def recent(self, n: Optional[int] = None, kind: Optional[str] = None) -> List[dict]:
        return []

    @property
    def events_emitted(self) -> int:
        return 0

    @property
    def event_totals(self) -> Dict[str, int]:
        return {}

    @property
    def counters(self) -> Dict[str, float]:
        return {}

    def snapshot(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "events_emitted": 0,
            "event_totals": {},
            "counters": {},
            "observations": {},
            "timers": {},
        }

    def close(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared no-op tracer installed by default.
NULL_TRACER = NullTracer()

_active = AmbientState("obs.tracer", NULL_TRACER)


def get_tracer():
    """The active tracer: this thread's innermost :func:`tracing`
    override, else the process-wide default (:data:`NULL_TRACER`)."""
    return _active.get()


def set_tracer(tracer) -> Any:
    """Install ``tracer`` as the process-wide default; returns the
    previous default.

    Passing None restores the no-op default.  Thread-scoped
    :func:`tracing` overrides (e.g. a serve job's tracer) shadow the
    default on their own thread only.
    """
    previous = _active.get_default()
    _active.set(tracer if tracer is not None else NULL_TRACER)
    return previous


@contextmanager
def tracing(tracer: Tracer):
    """Context manager: install ``tracer`` for the duration of the block.

    The override is scoped to the current thread, so concurrent jobs
    (one per serve worker thread) each see their own tracer.

    Example::

        tracer = Tracer(run_id="adhoc")
        with tracing(tracer):
            simulate_barrier(64, 1000, NoBackoff(), repetitions=10)
        print(tracer.counters["barrier.accesses"])
    """
    with _active.scoped(tracer if tracer is not None else NULL_TRACER):
        yield tracer
