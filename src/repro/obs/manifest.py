"""Per-run manifests: config, seed, git revision, wall time, totals.

A manifest is the durable record of one traced run: enough to say
*what* ran (experiment id, config, seed, code revision, environment)
and *what happened* (event totals, counters, observation summaries,
wall time).  The deterministic portion — everything except wall-clock
measurements and environment strings — is hashed into
``deterministic_digest``, so two runs of the same experiment with the
same seed can be compared with a single string equality.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs.tracer import Tracer

#: Manifest schema version; bump when fields change incompatibly.
MANIFEST_VERSION = 1


def git_revision(cwd: Optional[str] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def _stringify_keys(value: Any) -> Any:
    """Recursively replace dict keys ``json.dumps`` cannot serialise.

    ``json.dumps(..., default=str)`` only applies ``default`` to
    *values*; a dict keyed by tuples (e.g. the ``combining`` and
    ``determinism`` experiment data, keyed by ``(N, A)``) raises
    ``TypeError``.  Keys json handles natively (str/int/float/bool/None)
    are left alone so existing digests are unchanged.
    """
    if isinstance(value, dict):
        return {
            k if isinstance(k, (str, int, float, bool)) or k is None
            else str(k): _stringify_keys(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_stringify_keys(v) for v in value]
    return value


def _jsonable(value: Any) -> Any:
    """Round-trip ``value`` through JSON so tuples/lists etc. normalise."""
    return json.loads(
        json.dumps(_stringify_keys(value), sort_keys=True, default=str)
    )


def jsonable(value: Any) -> Any:
    """Public alias of :func:`_jsonable`: normalise a value for JSON."""
    return _jsonable(value)


@dataclass
class RunManifest:
    """The durable record of one traced run."""

    run_id: str
    experiment_id: str
    seed: Optional[int]
    config: Dict[str, Any]
    git_rev: str
    created_at: str
    wall_time_seconds: float
    events_emitted: int
    event_totals: Dict[str, int]
    counters: Dict[str, float]
    observations: Dict[str, Dict[str, Any]]
    timers: Dict[str, Dict[str, Any]]
    #: How the run executed (jobs, cache hit/miss/store counts; see
    #: repro.exec).  Deliberately excluded from the deterministic
    #: digest: a warm cache or a different worker count changes how a
    #: result was *obtained*, never what it *is*.
    execution: Dict[str, Any] = field(default_factory=dict)
    python_version: str = field(default_factory=lambda: sys.version.split()[0])
    platform: str = field(default_factory=platform.platform)
    version: int = MANIFEST_VERSION

    def deterministic_digest(self) -> str:
        """SHA-256 over the seed-determined portion of the manifest.

        Excludes wall time, timers, timestamps and environment strings,
        so it is stable across machines and repeated runs with the same
        seed and config.  ``exec.``-prefixed counters are excluded too:
        they record supervision recoveries (retries, worker deaths,
        cache quarantines — see :mod:`repro.exec.supervisor`), which
        describe how a result was *obtained*, never what it *is* — a
        run that survived a crash must digest identically to one that
        never saw it.
        """
        payload = {
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "config": _jsonable(self.config),
            "events_emitted": self.events_emitted,
            "event_totals": _jsonable(self.event_totals),
            "counters": _jsonable(
                {
                    key: value
                    for key, value in self.counters.items()
                    if not str(key).startswith("exec.")
                }
            ),
            "observations": _jsonable(self.observations),
        }
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "run_id": self.run_id,
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "config": _jsonable(self.config),
            "git_rev": self.git_rev,
            "created_at": self.created_at,
            "wall_time_seconds": self.wall_time_seconds,
            "python_version": self.python_version,
            "platform": self.platform,
            "events_emitted": self.events_emitted,
            "event_totals": _jsonable(self.event_totals),
            "counters": _jsonable(self.counters),
            "observations": _jsonable(self.observations),
            "timers": _jsonable(self.timers),
            "execution": _jsonable(self.execution),
            "deterministic_digest": self.deterministic_digest(),
        }

    def write(self, path: str) -> str:
        """Write the manifest as pretty-printed JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return str(path)


def build_manifest(
    tracer: Tracer,
    experiment_id: str = "",
    config: Optional[Dict[str, Any]] = None,
    seed: Optional[int] = None,
    wall_time_seconds: float = 0.0,
    run_id: Optional[str] = None,
    execution: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` from a finished tracer."""
    snapshot = tracer.snapshot()
    return RunManifest(
        run_id=run_id if run_id is not None else tracer.run_id,
        experiment_id=experiment_id,
        seed=seed,
        config=_jsonable(config or {}),
        git_rev=git_revision(),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        wall_time_seconds=wall_time_seconds,
        events_emitted=snapshot["events_emitted"],
        event_totals=snapshot["event_totals"],
        counters=snapshot["counters"],
        observations=snapshot["observations"],
        timers=snapshot["timers"],
        execution=_jsonable(execution or {}),
    )
