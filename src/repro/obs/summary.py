"""Human-readable summaries of a traced run.

Renders a tracer's counters, event totals, observations and timers as
aligned text, in the same spirit as the experiment reports in
:mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.tracer import Tracer


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def _section(title: str) -> str:
    return f"{title}\n{'-' * len(title)}"


def render_summary(tracer: Tracer, title: Optional[str] = None) -> str:
    """A printable report of everything the tracer collected."""
    snapshot = tracer.snapshot()
    header = title if title is not None else f"obs summary: {snapshot['run_id']}"
    lines = [f"== {header} =="]

    totals: Dict[str, int] = snapshot["event_totals"]
    lines.append(_section(f"events ({snapshot['events_emitted']:,} emitted)"))
    if totals:
        width = max(len(kind) for kind in totals)
        for kind, count in totals.items():
            lines.append(f"  {kind:<{width}}  {count:>12,}")
    else:
        lines.append("  (none)")

    counters: Dict[str, float] = snapshot["counters"]
    lines.append("")
    lines.append(_section("counters"))
    if counters:
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {_format_value(value):>14}")
    else:
        lines.append("  (none)")

    observations: Dict[str, Dict[str, Any]] = snapshot["observations"]
    lines.append("")
    lines.append(_section("observations"))
    if observations:
        width = max(len(name) for name in observations)
        lines.append(
            f"  {'name':<{width}}  {'count':>10}  {'mean':>12}  "
            f"{'min':>10}  {'max':>10}"
        )
        for name, stats in observations.items():
            lines.append(
                f"  {name:<{width}}  {stats['count']:>10,}  "
                f"{stats['mean']:>12,.2f}  {stats['min']:>10,.0f}  "
                f"{stats['max']:>10,.0f}"
            )
    else:
        lines.append("  (none)")

    timers: Dict[str, Dict[str, Any]] = snapshot["timers"]
    lines.append("")
    lines.append(_section("timers (seconds)"))
    if timers:
        width = max(len(name) for name in timers)
        for name, stats in timers.items():
            lines.append(
                f"  {name:<{width}}  total {stats['total']:.3f}  "
                f"calls {stats['count']:,}  mean {stats['mean']:.4f}"
            )
    else:
        lines.append("  (none)")

    return "\n".join(lines)
