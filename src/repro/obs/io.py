"""Read traced runs back: events.jsonl, manifest.json, column views.

The writers live in :mod:`repro.obs.tracer` (events) and
:mod:`repro.obs.manifest` (manifests); this module is the matching
read side, used by tests, notebooks and the worked example in
docs/observability.md.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence


def read_events(path: str, kind: Optional[str] = None) -> List[Dict[str, Any]]:
    """Load an ``events.jsonl`` file, optionally filtered by event kind.

    Blank lines are skipped; malformed lines raise ValueError with the
    offending line number.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: malformed event line: {error}"
                ) from None
            if kind is None or event.get("kind") == kind:
                events.append(event)
    return events


def read_manifest(path: str) -> Dict[str, Any]:
    """Load a ``manifest.json`` file as a plain dict."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def events_to_columns(
    events: Sequence[Dict[str, Any]],
    fields: Sequence[str],
    default: Any = None,
) -> Dict[str, list]:
    """Pivot a list of event dicts into per-field columns.

    Handy for feeding numpy: ``np.array(columns["cost"])``.  Events
    missing a field contribute ``default``.
    """
    columns: Dict[str, list] = {name: [] for name in fields}
    for event in events:
        for name in fields:
            columns[name].append(event.get(name, default))
    return columns
