"""Profile a registered experiment: run it traced, write the artifacts.

This is the engine behind ``python -m repro profile <experiment-id>``:
it installs a real :class:`~repro.obs.tracer.Tracer` with a JSONL sink,
runs the experiment through the normal registry, and writes

- ``events.jsonl``  — every structured event the run emitted,
- ``manifest.json`` — config, seed, git revision, wall time, counter
  and event totals, plus a deterministic digest,
- ``summary.txt``   — the human-readable counter summary,

into the output directory (default ``profiles/<experiment-id>``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.exec.context import get_exec_config, get_stats, reset_stats
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.summary import render_summary
from repro.obs.tracer import JsonlSink, Tracer, tracing


@dataclass
class ProfileRun:
    """Everything produced by one :func:`profile_experiment` call."""

    experiment_id: str
    result: Any
    manifest: RunManifest
    summary: str
    output_dir: str
    events_path: str
    manifest_path: str
    summary_path: str


def profile_experiment(
    experiment_id: str,
    output_dir: Optional[str] = None,
    ring_size: int = 4096,
    runner: Optional[Callable[..., Any]] = None,
    **kwargs: Any,
) -> ProfileRun:
    """Run ``experiment_id`` with tracing on and persist the artifacts.

    Args:
        experiment_id: a key of
            :data:`repro.analysis.experiments.EXPERIMENTS`.
        output_dir: where to write the artifacts (created if missing);
            defaults to ``profiles/<experiment_id>``.
        ring_size: in-memory event buffer size (the JSONL sink always
            receives every event).
        runner: override for the experiment runner (tests); defaults to
            :func:`repro.analysis.experiments.run`.
        **kwargs: forwarded to the experiment runner (``repetitions``,
            ``scale``, ``seed``, ...).
    """
    # Imported lazily: the registry's spec modules import the
    # instrumented layers, which import repro.obs — a module-level
    # import here would cycle.
    if runner is None:
        from repro.registry import run as runner  # type: ignore

    if output_dir is None:
        output_dir = os.path.join("profiles", experiment_id)
    os.makedirs(output_dir, exist_ok=True)
    events_path = os.path.join(output_dir, "events.jsonl")
    manifest_path = os.path.join(output_dir, "manifest.json")
    summary_path = os.path.join(output_dir, "summary.txt")

    tracer = Tracer(
        run_id=f"profile-{experiment_id}",
        sink=JsonlSink(events_path),
        ring_size=ring_size,
    )
    reset_stats()
    start = time.perf_counter()
    try:
        with tracing(tracer):
            with tracer.timer("profile.total"):
                result = runner(experiment_id, **kwargs)
    finally:
        tracer.close()
    wall_time = time.perf_counter() - start

    exec_config = get_exec_config()
    execution_info = {
        "jobs": exec_config.jobs,
        "cache": exec_config.cache,
        "cache_dir": exec_config.cache_dir,
    }
    execution_info.update(get_stats().as_dict())
    manifest = build_manifest(
        tracer,
        experiment_id=experiment_id,
        config=_config_dict(kwargs),
        seed=kwargs.get("seed"),
        wall_time_seconds=wall_time,
        execution=execution_info,
    )
    manifest.write(manifest_path)
    summary = render_summary(tracer, title=f"profile {experiment_id}")
    with open(summary_path, "w", encoding="utf-8") as handle:
        handle.write(summary + "\n")

    return ProfileRun(
        experiment_id=experiment_id,
        result=result,
        manifest=manifest,
        summary=summary,
        output_dir=output_dir,
        events_path=events_path,
        manifest_path=manifest_path,
        summary_path=summary_path,
    )


def _config_dict(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Kwargs as a manifest-safe dict (tuples become lists via JSON)."""
    return dict(sorted(kwargs.items()))
