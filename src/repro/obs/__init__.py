"""repro.obs — observability: tracing, counters, manifests, profiling.

The instrumentation layer behind ``python -m repro profile``.  Every
simulator in the repository carries hooks that report to the active
tracer; by default the active tracer is a no-op
(:data:`~repro.obs.tracer.NULL_TRACER`), so instrumentation costs one
boolean check when disabled.

Typical programmatic use::

    from repro import simulate_barrier, NoBackoff
    from repro.obs import Tracer, tracing

    tracer = Tracer(run_id="adhoc")
    with tracing(tracer):
        simulate_barrier(64, 1000, NoBackoff(), repetitions=10)
    print(tracer.counters["barrier.denied_accesses"])

Modules:

- :mod:`repro.obs.tracer` — Tracer / NullTracer, counters,
  observations, timers, ring buffer, JSONL sink, active-tracer registry.
- :mod:`repro.obs.manifest` — per-run manifests with a deterministic
  digest.
- :mod:`repro.obs.summary` — human-readable counter summaries.
- :mod:`repro.obs.io` — read events.jsonl / manifest.json back.
- :mod:`repro.obs.profile` — run a registered experiment traced and
  persist manifest + events + summary.
"""

from repro.obs.io import events_to_columns, read_events, read_manifest
from repro.obs.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    build_manifest,
    git_revision,
)
from repro.obs.profile import ProfileRun, profile_experiment
from repro.obs.summary import render_summary
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Tracer,
    ValueStats,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "ValueStats",
    "get_tracer",
    "set_tracer",
    "tracing",
    "RunManifest",
    "build_manifest",
    "git_revision",
    "MANIFEST_VERSION",
    "render_summary",
    "read_events",
    "read_manifest",
    "events_to_columns",
    "ProfileRun",
    "profile_experiment",
]
