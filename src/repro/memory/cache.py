"""Direct-mapped write-back cache.

The paper's simulations "used direct-mapped caches of size 256KBytes and
block size 16 bytes"; those are the defaults here.  The cache operates
on *block numbers* (``address // block_bytes``); the coherence simulator
does the address-to-block translation so that the cache itself stays
trivially testable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class DirectMappedCache:
    """A direct-mapped cache indexed by block number.

    Attributes:
        num_sets: number of cache lines.
        hits / misses: probe counters (maintained by :meth:`probe`).
    """

    def __init__(self, size_bytes: int = 256 * 1024, block_bytes: int = 16) -> None:
        if size_bytes <= 0 or block_bytes <= 0:
            raise ValueError("cache and block sizes must be positive")
        if size_bytes % block_bytes:
            raise ValueError("size_bytes must be a multiple of block_bytes")
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // block_bytes
        # _blocks[s] is the block number resident in set s (or None).
        self._blocks: List[Optional[int]] = [None] * self.num_sets
        self._dirty: List[bool] = [False] * self.num_sets
        self.hits = 0
        self.misses = 0

    def _set_index(self, block: int) -> int:
        return block % self.num_sets

    def contains(self, block: int) -> bool:
        """True if ``block`` is resident (does not touch hit counters)."""
        return self._blocks[self._set_index(block)] == block

    def is_dirty(self, block: int) -> bool:
        """True if ``block`` is resident and dirty."""
        index = self._set_index(block)
        return self._blocks[index] == block and self._dirty[index]

    def probe(self, block: int) -> bool:
        """Look up ``block``, updating hit/miss counters."""
        if self.contains(block):
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, block: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Install ``block``, evicting any conflicting resident block.

        Returns:
            ``(evicted_block, evicted_dirty)`` if a different block was
            displaced, else ``None``.
        """
        index = self._set_index(block)
        victim = self._blocks[index]
        evicted = None
        if victim is not None and victim != block:
            evicted = (victim, self._dirty[index])
        self._blocks[index] = block
        self._dirty[index] = dirty
        return evicted

    def mark_dirty(self, block: int) -> None:
        """Set the dirty bit of a resident block."""
        index = self._set_index(block)
        if self._blocks[index] != block:
            raise KeyError(f"block {block} not resident; cannot mark dirty")
        self._dirty[index] = True

    def mark_clean(self, block: int) -> None:
        """Clear the dirty bit of a resident block (after a writeback)."""
        index = self._set_index(block)
        if self._blocks[index] != block:
            raise KeyError(f"block {block} not resident; cannot mark clean")
        self._dirty[index] = False

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if resident.  Returns True if it was present."""
        index = self._set_index(block)
        if self._blocks[index] == block:
            self._blocks[index] = None
            self._dirty[index] = False
            return True
        return False

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (test/debug helper)."""
        return [b for b in self._blocks if b is not None]

    @property
    def occupancy(self) -> int:
        return sum(1 for b in self._blocks if b is not None)

    def __repr__(self) -> str:
        return (
            f"DirectMappedCache(size={self.size_bytes}, block={self.block_bytes}, "
            f"occupancy={self.occupancy}/{self.num_sets})"
        )
