"""Statistics collected by the coherence simulator.

These back the paper's Section 2 artifacts:

- Figure 1 — histogram of invalidation messages per write to a
  previously clean (shared) block;
- Table 1 — percentage of synchronization vs non-synchronization
  references that cause at least one invalidation;
- Table 2 — synchronization traffic to memory as a percentage of total
  traffic when synchronization variables are not cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.stats import Histogram


@dataclass
class CoherenceStats:
    """Counters accumulated over one trace-driven coherence run."""

    # Reference counts.
    refs: int = 0
    sync_refs: int = 0
    data_refs: int = 0

    # References that caused at least one invalidation message.
    sync_refs_invalidating: int = 0
    data_refs_invalidating: int = 0

    # Invalidation messages, by cause.
    invalidations_on_write: int = 0
    invalidations_on_overflow: int = 0

    # Network transactions (the paper's traffic unit: a miss is two
    # transactions — address out, data back).
    sync_traffic: int = 0
    data_traffic: int = 0

    # Cache behaviour.
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    # Figure 1: invalidations per write hit to a previously clean block
    # that is shared more widely than the writer.
    write_invalidation_histogram: Histogram = field(default_factory=Histogram)

    @property
    def total_invalidations(self) -> int:
        return self.invalidations_on_write + self.invalidations_on_overflow

    @property
    def total_traffic(self) -> int:
        return self.sync_traffic + self.data_traffic

    @property
    def sync_invalidation_pct(self) -> float:
        """Table 1 column: % of sync references causing invalidations."""
        if not self.sync_refs:
            return 0.0
        return 100.0 * self.sync_refs_invalidating / self.sync_refs

    @property
    def data_invalidation_pct(self) -> float:
        """Table 1 column: % of non-sync references causing invalidations."""
        if not self.data_refs:
            return 0.0
        return 100.0 * self.data_refs_invalidating / self.data_refs

    @property
    def sync_traffic_pct(self) -> float:
        """Table 2 cell: sync traffic as % of total traffic."""
        if not self.total_traffic:
            return 0.0
        return 100.0 * self.sync_traffic / self.total_traffic

    @property
    def sync_ref_fraction_pct(self) -> float:
        """Sync references as % of all references (Table 1 caption)."""
        if not self.refs:
            return 0.0
        return 100.0 * self.sync_refs / self.refs

    @property
    def miss_rate(self) -> float:
        probes = self.hits + self.misses
        if not probes:
            return 0.0
        return self.misses / probes

    def invalidation_fraction_at_most(self, k: int) -> float:
        """Fraction of invalidating writes touching <= k caches (Fig. 1)."""
        return self.write_invalidation_histogram.cumulative_fraction(k)
