"""Trace-driven Dir_i_NB coherence simulator (Section 2 methodology).

Protocol summary (invalidation-based, write-back, no broadcast):

- **Read miss**: two network transactions (request + data).  If the
  block is dirty in another cache, the owner writes it back (two more
  transactions) and the block becomes shared.  If the directory entry
  already holds ``i`` pointers, sharers are invalidated (one message,
  hence one transaction, each) until a pointer is free — the
  "invalidations forced to limit the cached copies of a block to i".
- **Write hit to a clean block**: one ownership-request transaction plus
  one invalidation message per other sharer.  These events populate the
  Figure 1 histogram.
- **Write miss**: two transactions; a dirty remote copy is recalled and
  invalidated (two transactions + one invalidation), or every sharer is
  invalidated (one transaction each).
- **Replacement** of a dirty block costs one writeback transaction.

Synchronization references are either run through the protocol like any
other reference (Table 1 / Figure 1 configuration) or declared
uncacheable, in which case each one costs two transactions —
request out, response back (Table 2 configuration).

All traffic generated while processing a reference is attributed to
that reference's class (synchronization vs data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.memory.cache import DirectMappedCache
from repro.memory.directory import Directory
from repro.memory.stats import CoherenceStats
from repro.obs.tracer import get_tracer
from repro.trace.record import Op, TraceRecord


@dataclass(frozen=True)
class CoherenceConfig:
    """Configuration of one coherence run.

    Defaults mirror the paper: 64 processors, 256 KB direct-mapped
    caches, 16-byte blocks.
    """

    num_cpus: int = 64
    cache_bytes: int = 256 * 1024
    block_bytes: int = 16
    num_pointers: int = 64
    cache_sync: bool = True

    def __post_init__(self) -> None:
        if self.num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")


class CoherenceSimulator:
    """Runs a multiprocessor reference trace through caches + directory."""

    def __init__(self, config: CoherenceConfig) -> None:
        self.config = config
        self.caches = [
            DirectMappedCache(config.cache_bytes, config.block_bytes)
            for _ in range(config.num_cpus)
        ]
        self.directory = Directory(config.num_pointers, config.num_cpus)
        self.stats = CoherenceStats()
        self._block_shift = config.block_bytes.bit_length() - 1

    def block_of(self, address: int) -> int:
        return address >> self._block_shift

    def run(self, trace: Iterable[TraceRecord]) -> CoherenceStats:
        """Process every record of ``trace`` and return the statistics.

        A :class:`~repro.trace.scheduler.ScheduledTrace` is detected and
        routed through the column fast path (same results, roughly 2x
        faster on full-scale traces).
        """
        raw = getattr(trace, "raw_columns", None)
        if callable(raw):
            return self.run_columns(*raw())
        for record in trace:
            self.process(record)
        self._publish()
        return self.stats

    def run_columns(self, cpus, op_codes, addresses, sync_flags) -> CoherenceStats:
        """Process a trace given as parallel columns.

        ``op_codes`` follow the compact encoding ``{0: READ, 1: WRITE,
        2: RMW}`` used by :class:`~repro.trace.scheduler.ScheduledTrace`.
        """
        process = self._process
        for cpu, code, address, is_sync in zip(
            cpus, op_codes, addresses, sync_flags
        ):
            process(cpu, code == 0, address, is_sync)
        self._publish()
        return self.stats

    def _publish(self) -> None:
        """Emit a snapshot of this simulator's statistics to the tracer.

        Stats are cumulative per simulator instance, so the snapshot
        event carries totals; counters are charged with the deltas
        since the previous publish.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        stats = self.stats
        invalidations = (
            stats.invalidations_on_write + stats.invalidations_on_overflow
        )
        published = getattr(self, "_published_invalidations", 0)
        tracer.count("coherence.invalidations", invalidations - published)
        self._published_invalidations = invalidations
        tracer.emit(
            "coherence.run",
            refs=stats.refs,
            sync_refs=stats.sync_refs,
            hits=stats.hits,
            misses=stats.misses,
            invalidations_on_write=stats.invalidations_on_write,
            invalidations_on_overflow=stats.invalidations_on_overflow,
            writebacks=stats.writebacks,
            sync_traffic=stats.sync_traffic,
            data_traffic=stats.data_traffic,
            pointers=self.directory.num_pointers,
        )

    def process(self, record: TraceRecord) -> None:
        """Apply one reference to the memory system."""
        self._process(
            record.cpu, record.op is Op.READ, record.address, record.is_sync
        )

    def _process(self, cpu: int, is_read: bool, address: int, is_sync: bool) -> None:
        stats = self.stats
        stats.refs += 1
        if is_sync:
            stats.sync_refs += 1
        else:
            stats.data_refs += 1

        if is_sync and not self.config.cache_sync:
            # Uncacheable synchronization variable: request + response.
            stats.sync_traffic += 2
            return

        block = address >> self._block_shift

        if is_read:
            traffic, invalidations = self._read(cpu, block)
        else:  # WRITE and RMW both need exclusive ownership.
            traffic, invalidations = self._write(cpu, block)

        if is_sync:
            stats.sync_traffic += traffic
            if invalidations:
                stats.sync_refs_invalidating += 1
        else:
            stats.data_traffic += traffic
            if invalidations:
                stats.data_refs_invalidating += 1

    # ------------------------------------------------------------------
    # Protocol actions.  Each returns (transactions, invalidation_count).
    # ------------------------------------------------------------------

    def _read(self, cpu: int, block: int) -> tuple:
        cache = self.caches[cpu]
        if cache.probe(block):
            self.stats.hits += 1
            return 0, 0
        self.stats.misses += 1
        traffic = 2  # request + data
        invalidations = 0
        entry = self.directory.entry(block)

        if entry.owner is not None and entry.owner != cpu:
            # Recall the dirty copy; the owner keeps a clean copy.
            owner = entry.owner
            traffic += 2
            self.stats.writebacks += 1
            if self.caches[owner].contains(block):
                self.caches[owner].mark_clean(block)
            entry.owner = None

        for victim in self.directory.pointer_overflow_victims(block, cpu):
            self.caches[victim].invalidate(block)
            self.directory.remove_sharer(block, victim)
            self.stats.invalidations_on_overflow += 1
            traffic += 1
            invalidations += 1

        # remove_sharer may have deleted the entry; re-fetch it.
        entry = self.directory.entry(block)
        entry.sharers.add(cpu)
        traffic += self._fill(cpu, block, dirty=False)
        return traffic, invalidations

    def _write(self, cpu: int, block: int) -> tuple:
        cache = self.caches[cpu]
        entry = self.directory.entry(block)
        if cache.probe(block):
            self.stats.hits += 1
            if cache.is_dirty(block):
                return 0, 0  # already exclusive owner
            # Write hit to a previously clean block: the Figure 1 event.
            others = sorted(entry.sharers - {cpu})
            traffic = 1  # ownership request to the directory
            for other in others:
                self.caches[other].invalidate(block)
                self.stats.invalidations_on_write += 1
                traffic += 1
            self.stats.write_invalidation_histogram.add(len(others))
            entry.sharers.clear()
            entry.sharers.add(cpu)
            entry.owner = cpu
            cache.mark_dirty(block)
            return traffic, len(others)

        self.stats.misses += 1
        traffic = 2  # request + data
        invalidations = 0
        if entry.owner is not None and entry.owner != cpu:
            owner = entry.owner
            traffic += 2  # recall + writeback of the dirty copy
            self.stats.writebacks += 1
            self.caches[owner].invalidate(block)
            self.stats.invalidations_on_write += 1
            invalidations += 1
            entry.sharers.discard(owner)
            entry.owner = None
        else:
            for other in sorted(entry.sharers - {cpu}):
                self.caches[other].invalidate(block)
                self.stats.invalidations_on_write += 1
                traffic += 1
                invalidations += 1
                entry.sharers.discard(other)

        entry.sharers.clear()
        entry.sharers.add(cpu)
        entry.owner = cpu
        traffic += self._fill(cpu, block, dirty=True)
        return traffic, invalidations

    def _fill(self, cpu: int, block: int, dirty: bool) -> int:
        """Install ``block`` in cpu's cache; handle the replacement."""
        evicted = self.caches[cpu].fill(block, dirty=dirty)
        if evicted is None:
            return 0
        victim_block, victim_dirty = evicted
        self.directory.remove_sharer(victim_block, cpu)
        if victim_dirty:
            self.stats.writebacks += 1
            return 1  # writeback data transaction
        return 0

    # ------------------------------------------------------------------
    # Invariant checks (used by tests).
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if protocol invariants are violated."""
        for block in self.directory.tracked_blocks():
            entry = self.directory.peek(block)
            assert entry is not None
            assert len(entry.sharers) <= self.directory.num_pointers, (
                f"block {block}: {len(entry.sharers)} sharers exceed "
                f"{self.directory.num_pointers} pointers"
            )
            if entry.owner is not None:
                assert entry.sharers == {entry.owner}, (
                    f"block {block}: dirty owner {entry.owner} but sharers "
                    f"{sorted(entry.sharers)}"
                )
            for cpu in entry.sharers:
                assert self.caches[cpu].contains(block), (
                    f"block {block}: directory lists cpu {cpu} but the "
                    f"cache does not hold the block"
                )
