"""Cache-coherence substrate: caches, directory, trace-driven simulator.

Implements the Section 2 methodology: per-processor direct-mapped
caches kept coherent by a Dir_i_NB directory (i pointers, no broadcast),
driven by a multiprocessor reference trace.  Produces the invalidation
and traffic statistics behind Table 1, Table 2 and Figure 1.
"""

from repro.memory.cache import DirectMappedCache
from repro.memory.directory import Directory, DirectoryEntry
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.memory.snoopy import SnoopyConfig, SnoopySimulator, SnoopyStats
from repro.memory.stats import CoherenceStats

__all__ = [
    "DirectMappedCache",
    "Directory",
    "DirectoryEntry",
    "CoherenceConfig",
    "CoherenceSimulator",
    "CoherenceStats",
    "SnoopyConfig",
    "SnoopySimulator",
    "SnoopyStats",
]
