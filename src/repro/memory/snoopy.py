"""Snoopy-bus cache coherence (invalidate and update protocols).

Section 2.1:

    "The widespread sharing that occurs with synchronization variables
    is not a problem when used in bus-based snoopy-cache
    multiprocessors.  Because snoopy-cache-based protocols perform
    broadcast invalidates or updates, a variable shared among all
    processors generates no more traffic on the shared bus than a
    variable shared among only two processors."

and Section 5.1 prices barriers on such machines: an invalidating bus
at roughly 3 accesses per processor per barrier, an updating bus (or an
invalidating scheme "that can detect a fetch with intent to write") at
roughly 2.  This module implements both protocol families over the same
trace-driven interface as the directory simulator, so those constants
can be *simulated* instead of quoted (see
:mod:`repro.barrier.coherent`).

Protocol summary (MSI-style, write-back):

- **read miss** — one bus read; a dirty remote copy flushes (one more
  transaction) and downgrades to clean; the block becomes shared.
- **write to a clean shared block** — *invalidate* protocol: one
  upgrade transaction, every other copy is invalidated by the snoop
  (a broadcast: one transaction regardless of copy count); *update*
  protocol: one update transaction, other copies stay valid with the
  new value.
- **write miss** — *invalidate* protocol: a read transaction followed
  by an upgrade, or a single read-exclusive when
  ``fetch_intent_write=True`` (the optimization Section 5.1 credits
  with the updating bus's count); *update*: a read plus an update when
  other copies exist.
- **dirty eviction** — one writeback transaction.

Bus transactions are the traffic unit (the bus serializes them; there
is no per-copy invalidation cost, which is exactly the scalability
contrast with the directory of :mod:`repro.memory.coherence`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.memory.cache import DirectMappedCache
from repro.trace.record import Op, TraceRecord


@dataclass(frozen=True)
class SnoopyConfig:
    """Configuration of a snoopy-bus run."""

    num_cpus: int = 16
    cache_bytes: int = 256 * 1024
    block_bytes: int = 16
    protocol: str = "invalidate"  # or "update"
    fetch_intent_write: bool = False

    def __post_init__(self) -> None:
        if self.num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        if self.protocol not in ("invalidate", "update"):
            raise ValueError(
                f"protocol must be 'invalidate' or 'update', got {self.protocol!r}"
            )
        if self.protocol == "update" and self.fetch_intent_write:
            raise ValueError("fetch_intent_write applies to the invalidate protocol")


@dataclass
class SnoopyStats:
    """Counters accumulated over one snoopy-bus run."""

    refs: int = 0
    sync_refs: int = 0
    bus_transactions: int = 0
    sync_bus_transactions: int = 0
    reads_on_bus: int = 0
    upgrades: int = 0
    updates: int = 0
    flushes: int = 0
    writebacks: int = 0
    copies_invalidated: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def transactions_per_ref(self) -> float:
        if not self.refs:
            return 0.0
        return self.bus_transactions / self.refs


class SnoopySimulator:
    """Runs a multiprocessor reference trace over a snoopy bus."""

    def __init__(self, config: SnoopyConfig) -> None:
        self.config = config
        self.caches = [
            DirectMappedCache(config.cache_bytes, config.block_bytes)
            for _ in range(config.num_cpus)
        ]
        # Perfect snoop knowledge: which caches hold each block.
        self._sharers: Dict[int, Set[int]] = {}
        self.stats = SnoopyStats()
        self._block_shift = config.block_bytes.bit_length() - 1

    def block_of(self, address: int) -> int:
        return address >> self._block_shift

    # ------------------------------------------------------------------

    def run(self, trace: Iterable[TraceRecord]) -> SnoopyStats:
        raw = getattr(trace, "raw_columns", None)
        if callable(raw):
            cpus, op_codes, addresses, sync_flags = raw()
            for cpu, code, address, is_sync in zip(
                cpus, op_codes, addresses, sync_flags
            ):
                self._process(cpu, code == 0, address, is_sync)
            return self.stats
        for record in trace:
            self.process(record)
        return self.stats

    def process(self, record: TraceRecord) -> None:
        self._process(
            record.cpu, record.op is Op.READ, record.address, record.is_sync
        )

    def _process(self, cpu: int, is_read: bool, address: int, is_sync: bool) -> None:
        stats = self.stats
        stats.refs += 1
        if is_sync:
            stats.sync_refs += 1
        block = address >> self._block_shift
        before = stats.bus_transactions
        if is_read:
            self._read(cpu, block)
        else:
            self._write(cpu, block)
        if is_sync:
            stats.sync_bus_transactions += stats.bus_transactions - before

    # ------------------------------------------------------------------
    # Protocol actions.
    # ------------------------------------------------------------------

    def _sharer_set(self, block: int) -> Set[int]:
        sharers = self._sharers.get(block)
        if sharers is None:
            sharers = set()
            self._sharers[block] = sharers
        return sharers

    def _read(self, cpu: int, block: int) -> None:
        cache = self.caches[cpu]
        stats = self.stats
        if cache.probe(block):
            stats.hits += 1
            return
        stats.misses += 1
        stats.bus_transactions += 1
        stats.reads_on_bus += 1
        sharers = self._sharer_set(block)
        # A dirty remote copy flushes onto the bus and downgrades.
        for other in sharers:
            if self.caches[other].is_dirty(block):
                stats.bus_transactions += 1
                stats.flushes += 1
                self.caches[other].mark_clean(block)
                break
        sharers.add(cpu)
        self._fill(cpu, block, dirty=False)

    def _write(self, cpu: int, block: int) -> None:
        cache = self.caches[cpu]
        stats = self.stats
        sharers = self._sharer_set(block)
        update_protocol = self.config.protocol == "update"

        if cache.probe(block):
            stats.hits += 1
            others = sharers - {cpu}
            if cache.is_dirty(block) and not others:
                return  # exclusive modified: silent
            if not others:
                # Clean and exclusive: invalidate protocol upgrades
                # silently snooping nothing; update likewise local.
                cache.mark_dirty(block)
                return
            if update_protocol:
                # Broadcast the new word; other copies stay valid.
                stats.bus_transactions += 1
                stats.updates += 1
                # Memory is updated too: the writer's copy stays clean.
                return
            # Invalidate protocol: one broadcast upgrade kills them all.
            stats.bus_transactions += 1
            stats.upgrades += 1
            for other in others:
                self.caches[other].invalidate(block)
                stats.copies_invalidated += 1
            sharers.intersection_update({cpu})
            cache.mark_dirty(block)
            return

        # Write miss.
        stats.misses += 1
        others = set(sharers)
        dirty_other = next(
            (o for o in others if self.caches[o].is_dirty(block)), None
        )
        if update_protocol:
            stats.bus_transactions += 1
            stats.reads_on_bus += 1
            if dirty_other is not None:
                stats.bus_transactions += 1
                stats.flushes += 1
                self.caches[dirty_other].mark_clean(block)
            if others:
                stats.bus_transactions += 1
                stats.updates += 1
                sharers.add(cpu)
                self._fill(cpu, block, dirty=False)
            else:
                sharers.add(cpu)
                self._fill(cpu, block, dirty=True)
            return

        if self.config.fetch_intent_write:
            # Read-exclusive: one transaction fetches and invalidates.
            stats.bus_transactions += 1
            stats.reads_on_bus += 1
        else:
            # Naive: fetch, then a separate upgrade.
            stats.bus_transactions += 2
            stats.reads_on_bus += 1
            stats.upgrades += 1
        if dirty_other is not None:
            stats.bus_transactions += 1
            stats.flushes += 1
        for other in others:
            self.caches[other].invalidate(block)
            stats.copies_invalidated += 1
        sharers.clear()
        sharers.add(cpu)
        self._fill(cpu, block, dirty=True)

    def _fill(self, cpu: int, block: int, dirty: bool) -> None:
        evicted = self.caches[cpu].fill(block, dirty=dirty)
        if evicted is None:
            return
        victim_block, victim_dirty = evicted
        victims = self._sharers.get(victim_block)
        if victims is not None:
            victims.discard(cpu)
            if not victims:
                del self._sharers[victim_block]
        if victim_dirty:
            self.stats.bus_transactions += 1
            self.stats.writebacks += 1

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """At most one dirty copy per block; sharer sets match caches."""
        for block, sharers in self._sharers.items():
            dirty = [cpu for cpu in sharers if self.caches[cpu].is_dirty(block)]
            assert len(dirty) <= 1, f"block {block}: multiple dirty copies {dirty}"
            for cpu in sharers:
                assert self.caches[cpu].contains(block), (
                    f"block {block}: sharer {cpu} lost its copy"
                )
