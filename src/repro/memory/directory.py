"""Dir_i_NB directory state (i pointers, no broadcast).

Following Agarwal, Simoni, Hennessy & Horowitz (ISCA '88), which the
paper builds on: every memory block has a directory entry holding at
most ``i`` pointers to caches with copies.  "Invalidations are forced to
limit the cached copies of a block to i, or to gain exclusive ownership
on a write."  ``Dir_N_NB`` (a full map) is the special case
``i >= num_cpus``.

This module holds pure directory *state*; the protocol actions (what to
invalidate, what traffic to charge) live in
:mod:`repro.memory.coherence` so that the state object stays small and
independently testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.obs.tracer import get_tracer


class DirectoryEntry:
    """Directory state for one memory block.

    Invariants (enforced by the coherence protocol, checked in tests):
      - ``len(sharers) <= num_pointers``;
      - ``owner is not None`` implies ``sharers == {owner}``.
    """

    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None  # holder of a dirty copy

    @property
    def is_dirty(self) -> bool:
        return self.owner is not None

    @property
    def is_cached(self) -> bool:
        return bool(self.sharers)

    def __repr__(self) -> str:
        return f"DirectoryEntry(sharers={sorted(self.sharers)}, owner={self.owner})"


class Directory:
    """A table of :class:`DirectoryEntry` with an ``i``-pointer limit."""

    def __init__(self, num_pointers: int, num_cpus: int) -> None:
        if num_pointers < 1:
            raise ValueError("num_pointers must be >= 1")
        if num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        self.num_pointers = min(num_pointers, num_cpus)
        self.num_cpus = num_cpus
        self._entries: Dict[int, DirectoryEntry] = {}

    @property
    def is_full_map(self) -> bool:
        """True for Dir_N_NB (the pointer limit never binds)."""
        return self.num_pointers >= self.num_cpus

    def entry(self, block: int) -> DirectoryEntry:
        """The entry for ``block``, created on first touch."""
        found = self._entries.get(block)
        if found is None:
            found = DirectoryEntry()
            self._entries[block] = found
        return found

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        """The entry for ``block`` if it exists, without creating it."""
        return self._entries.get(block)

    def pointer_overflow_victims(self, block: int, requester: int) -> List[int]:
        """Sharers that must be invalidated before ``requester`` is added.

        With ``i`` pointers, adding a new sharer to an entry already
        holding ``i`` requires evicting pointers until ``i - 1`` remain.
        Victims are chosen deterministically (lowest cpu id first) so
        simulations are reproducible.
        """
        entry = self.entry(block)
        if requester in entry.sharers:
            return []
        excess = len(entry.sharers) - (self.num_pointers - 1)
        if excess <= 0:
            return []
        victims = sorted(entry.sharers)[:excess]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("directory.overflow_invalidations", len(victims))
            tracer.emit(
                "directory.overflow",
                block=block,
                requester=requester,
                victims=len(victims),
                sharers=len(entry.sharers),
            )
        return victims

    def remove_sharer(self, block: int, cpu: int) -> None:
        """Drop ``cpu`` from the entry (replacement or invalidation)."""
        entry = self._entries.get(block)
        if entry is None:
            return
        entry.sharers.discard(cpu)
        if entry.owner == cpu:
            entry.owner = None
        if not entry.sharers:
            del self._entries[block]

    def tracked_blocks(self) -> List[int]:
        """All blocks with live directory state (test helper)."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"Directory(pointers={self.num_pointers}, cpus={self.num_cpus}, "
            f"tracked={len(self._entries)})"
        )
