"""Check budgets, outcomes and the JSON report ``python -m repro check`` emits.

A check run executes named checks grouped into suites (``invariants``,
``differential``, ``fuzz``).  Each check gets a :class:`CheckContext`
carrying the root seed and the resolved :class:`Budget`, runs some
number of randomized cases, and either returns its case count or raises
:class:`CheckFailure` with a human-readable detail and a *single-line
repro command* that re-runs exactly the failing configuration.

The report is plain data (:meth:`CheckReport.as_dict`) so CI can upload
it as an artifact and tools can diff two runs.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.sim.rng import spawn_stream

#: Named budget profiles.  ``cases`` drives the randomized invariant /
#: differential checks; ``examples`` is hypothesis examples per fuzzed
#: experiment; ``repetitions`` is episodes per simulated aggregate in
#: the statistical oracles.
BUDGETS: Dict[str, "Budget"] = {}


@dataclass(frozen=True)
class Budget:
    """How much work one check run may spend."""

    name: str
    cases: int
    examples: int
    repetitions: int

    def __post_init__(self) -> None:
        if min(self.cases, self.examples, self.repetitions) < 1:
            raise ValueError("budget values must all be >= 1")


BUDGETS["small"] = Budget("small", cases=2, examples=1, repetitions=8)
BUDGETS["default"] = Budget("default", cases=4, examples=2, repetitions=16)
BUDGETS["large"] = Budget("large", cases=10, examples=6, repetitions=40)


def resolve_budget(value: Any) -> Budget:
    """A :class:`Budget` from a profile name, an int, or a Budget.

    An integer ``n`` means "n cases / n examples" with repetitions
    scaled to keep the statistical oracles meaningful.
    """
    if isinstance(value, Budget):
        return value
    text = str(value)
    if text in BUDGETS:
        return BUDGETS[text]
    try:
        n = int(text)
    except ValueError:
        raise ValueError(
            f"unknown budget {value!r}; use one of "
            f"{', '.join(sorted(BUDGETS))} or a positive integer"
        ) from None
    if n < 1:
        raise ValueError(f"budget must be >= 1, got {n}")
    return Budget(str(n), cases=n, examples=n, repetitions=max(8, 4 * n))


class CheckFailure(AssertionError):
    """A check found a violated property.

    Args:
        detail: what was violated, with the observed values.
        repro: a single-line shell command reproducing the failure.
    """

    def __init__(self, detail: str, repro: str = "") -> None:
        super().__init__(detail)
        self.detail = detail
        self.repro = repro


@dataclass
class CheckContext:
    """Ambient state handed to every check function."""

    seed: int
    budget: Budget
    #: Experiment-id filter (fuzz suite; also narrows the exec-parity
    #: oracle's candidate pool).  None means all experiments.
    ids: Optional[List[str]] = None

    def rng(self, name: str) -> np.random.Generator:
        """A named RNG stream derived from the run's root seed."""
        return spawn_stream(self.seed, f"check:{name}")

    def suite_repro(self, suite: str) -> str:
        """The single-line command that re-runs one suite of this run."""
        return (
            f"PYTHONPATH=src python -m repro check --suite {suite} "
            f"--seed {self.seed} --budget {self.budget.name}"
        )


@dataclass
class CheckOutcome:
    """The result of one named check."""

    suite: str
    check: str
    passed: bool
    cases: int = 0
    detail: str = ""
    repro: str = ""
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "check": self.check,
            "passed": self.passed,
            "cases": self.cases,
            "detail": self.detail,
            "repro": self.repro,
            "seconds": round(self.seconds, 4),
        }


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation produced."""

    seed: int
    budget: str
    suites: List[str]
    outcomes: List[CheckOutcome] = field(default_factory=list)
    manifest_digest: str = ""
    wall_time_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def failures(self) -> List[CheckOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "suites": list(self.suites),
            "ok": self.ok,
            "checks_run": len(self.outcomes),
            "checks_failed": len(self.failures),
            "wall_time_seconds": round(self.wall_time_seconds, 3),
            "manifest_digest": self.manifest_digest,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        """Human-readable summary (the CLI's stdout)."""
        lines = []
        for outcome in self.outcomes:
            status = "PASS" if outcome.passed else "FAIL"
            lines.append(
                f"{status}  {outcome.suite}/{outcome.check} "
                f"({outcome.cases} case(s), {outcome.seconds:.2f}s)"
            )
            if not outcome.passed:
                for detail_line in outcome.detail.strip().splitlines():
                    lines.append(f"      {detail_line}")
                if outcome.repro:
                    lines.append(f"      repro: {outcome.repro}")
        failed = len(self.failures)
        lines.append(
            f"{'FAIL' if failed else 'PASS'}: {len(self.outcomes)} check(s), "
            f"{failed} failure(s), seed={self.seed}, "
            f"budget={self.budget}, {self.wall_time_seconds:.2f}s"
        )
        return "\n".join(lines)


def run_registered_checks(
    suite: str,
    registry: Dict[str, Callable[[CheckContext], int]],
    ctx: CheckContext,
    only: Optional[Sequence[str]] = None,
) -> List[CheckOutcome]:
    """Run every check in ``registry`` (sorted by name) under ``ctx``.

    A :class:`CheckFailure` becomes a failed outcome carrying the
    check's own repro command; any other exception is a failed outcome
    carrying the suite-level repro and a trimmed traceback — a crashing
    check must never take down the whole run.
    """
    outcomes: List[CheckOutcome] = []
    for name in sorted(registry):
        if only is not None and name not in only:
            continue
        check = registry[name]
        start = time.perf_counter()
        try:
            cases = check(ctx)
            outcomes.append(
                CheckOutcome(
                    suite=suite,
                    check=name,
                    passed=True,
                    cases=int(cases),
                    seconds=time.perf_counter() - start,
                )
            )
        except CheckFailure as failure:
            outcomes.append(
                CheckOutcome(
                    suite=suite,
                    check=name,
                    passed=False,
                    detail=failure.detail,
                    repro=failure.repro or ctx.suite_repro(suite),
                    seconds=time.perf_counter() - start,
                )
            )
        except Exception:
            tail = traceback.format_exc().strip().splitlines()[-3:]
            outcomes.append(
                CheckOutcome(
                    suite=suite,
                    check=name,
                    passed=False,
                    detail="check crashed:\n" + "\n".join(tail),
                    repro=ctx.suite_repro(suite),
                    seconds=time.perf_counter() - start,
                )
            )
    return outcomes
