"""Conservation-law checks on simulator event streams and state.

Each invariant runs a handful of randomized barrier episodes (or
coherence traces) under a live tracer and cross-checks three views of
the same run against each other:

1. the **event stream** (``barrier.variable`` / ``barrier.flag_poll`` /
   ``barrier.flag_write`` events with per-grant costs),
2. the **module accounting** (:class:`~repro.network.module.MemoryModule`
   grant/access totals), and
3. the **result record** (:class:`~repro.barrier.metrics.BarrierRunResult`
   per-process accesses and waiting times).

Any bookkeeping bug that breaks one view against the others — a
miscounted retry, a double grant, a wait measured from the wrong epoch
— fails the corresponding conservation law here.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.barrier.simulator import build_simulator
from repro.check.report import CheckContext, CheckFailure
from repro.core.backoff import (
    BackoffPolicy,
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.network.model import NetworkModel
from repro.obs.tracer import Tracer, tracing
from repro.sim.rng import spawn_stream
from repro.trace.record import Op, TraceRecord

#: The invariant registry: name -> check function.
INVARIANT_CHECKS: Dict[str, Callable[[CheckContext], int]] = {}


def invariant(name: str):
    """Decorator registering a check under ``name``."""

    def register(fn: Callable[[CheckContext], int]):
        if name in INVARIANT_CHECKS:
            raise ValueError(f"duplicate invariant {name!r}")
        INVARIANT_CHECKS[name] = fn
        return fn

    return register


def random_policy(rng: np.random.Generator) -> BackoffPolicy:
    """One of the paper's policy shapes with randomized knobs."""
    choice = int(rng.integers(0, 4))
    if choice == 0:
        return NoBackoff()
    if choice == 1:
        return VariableBackoff(
            multiplier=int(rng.integers(0, 3)), offset=int(rng.integers(0, 4))
        )
    if choice == 2:
        return LinearFlagBackoff(step=int(rng.integers(1, 5)))
    return ExponentialFlagBackoff(base=int(rng.choice([2, 4, 8])))


def _traced_episode(rng: np.random.Generator):
    """One randomized episode; returns (result, tracer, network, n, single)."""
    n = int(rng.integers(2, 25))
    interval_a = int(rng.integers(0, 201))
    single = bool(rng.integers(0, 2))
    seed = int(rng.integers(0, 2**32))
    policy = random_policy(rng)
    simulator = build_simulator(
        n, interval_a, policy, seed=seed, single_variable=single
    )
    network = NetworkModel()
    tracer = Tracer(run_id="check-invariant", ring_size=1 << 15)
    with tracing(tracer):
        result = simulator.run_once(
            spawn_stream(seed, "barrier-rep-0"), network=network
        )
    return result, tracer, network, n, single


def _grants(events: List[dict]) -> List[int]:
    return [event["grant"] for event in events]


@invariant("module-single-grant")
def check_module_single_grant(ctx: CheckContext) -> int:
    """A module grants at most one access per cycle.

    Per-module grant times taken from the event stream must be strictly
    increasing in processing order, and their count must equal the
    module's own ``total_grants``.
    """
    rng = ctx.rng("module-single-grant")
    cases = 0
    for __ in range(ctx.budget.cases * 3):
        __, tracer, network, n, single = _traced_episode(rng)
        variable_events = tracer.recent(kind="barrier.variable")
        flag_events = sorted(
            tracer.recent(kind="barrier.flag_poll")
            + tracer.recent(kind="barrier.flag_write"),
            key=lambda event: event["seq"],
        )
        if single:
            # One module serves everything: the merged grant sequence
            # must still be one-per-cycle.
            streams = {
                "variable": sorted(
                    variable_events + flag_events,
                    key=lambda event: event["seq"],
                )
            }
        else:
            streams = {"variable": variable_events, "flag": flag_events}
        for module_name, events in streams.items():
            grants = _grants(events)
            for earlier, later in zip(grants, grants[1:]):
                if later <= earlier:
                    raise CheckFailure(
                        f"{module_name} module granted twice in one cycle "
                        f"(grants {earlier} then {later}; N={n}, "
                        f"single_variable={single})"
                    )
        observed = len(variable_events) + len(flag_events)
        if observed != network.total_grants:
            raise CheckFailure(
                f"event stream shows {observed} grants but modules "
                f"recorded {network.total_grants} (N={n})"
            )
        cases += 1
    return cases


@invariant("episode-traffic")
def check_episode_traffic(ctx: CheckContext) -> int:
    """Episode traffic = N increments + flag reads/writes + retries.

    Conservation across all three views: per-process access counts,
    per-event costs (``grant - ready + 1``), module totals and the obs
    counters must all describe the same traffic.
    """
    rng = ctx.rng("episode-traffic")
    cases = 0
    for __ in range(ctx.budget.cases * 3):
        result, tracer, network, n, single = _traced_episode(rng)
        variable_events = tracer.recent(kind="barrier.variable")
        flag_events = tracer.recent(kind="barrier.flag_poll") + tracer.recent(
            kind="barrier.flag_write"
        )
        if len(variable_events) != n:
            raise CheckFailure(
                f"expected exactly N={n} barrier-variable increments, "
                f"event stream shows {len(variable_events)}"
            )
        event_cost = sum(
            event["cost"] for event in variable_events + flag_events
        )
        per_process = sum(result.accesses_per_process)
        checks = [
            ("sum(accesses_per_process)", per_process),
            ("sum(event costs)", event_cost),
            (
                "module totals",
                network.total_accesses,
            ),
            (
                "counter barrier.accesses",
                int(tracer.counters.get("barrier.accesses", 0)),
            ),
            (
                "result.variable+flag" if not single else "result.variable",
                result.variable_accesses + result.flag_accesses,
            ),
        ]
        baseline_name, baseline = checks[0]
        for name, value in checks[1:]:
            if value != baseline:
                raise CheckFailure(
                    f"traffic not conserved: {baseline_name}={baseline} "
                    f"but {name}={value} (N={n}, A={result.interval_a}, "
                    f"policy={result.policy_name!r}, "
                    f"single_variable={single})"
                )
        denied = int(tracer.counters.get("barrier.denied_accesses", 0))
        if denied != network.contention_accesses:
            raise CheckFailure(
                f"denied-access counter {denied} != module contention "
                f"{network.contention_accesses} (N={n})"
            )
        cases += 1
    return cases


@invariant("wait-cycles")
def check_wait_cycles(ctx: CheckContext) -> int:
    """Per-process wait = departure − arrival, reconstructed from events.

    Each processor's arrival is the ``ready`` of its barrier-variable
    increment; its departure is the grant of its releasing event (a
    released flag poll, the last arrival's flag write, or — for the
    single-variable barrier — the final increment itself).  The
    reconstruction must match ``result.waiting_times`` exactly, and the
    completion time must be the maximum departure.
    """
    rng = ctx.rng("wait-cycles")
    cases = 0
    for __ in range(ctx.budget.cases * 3):
        result, tracer, __network, n, __single = _traced_episode(rng)
        arrival: Dict[int, int] = {}
        depart: Dict[int, int] = {}
        for event in tracer.recent(kind="barrier.variable"):
            arrival[event["cpu"]] = event["ready"]
            if event["value"] == n:
                depart[event["cpu"]] = event["grant"]
        for event in tracer.recent(kind="barrier.flag_write"):
            depart[event["cpu"]] = event["grant"]
        for event in tracer.recent(kind="barrier.flag_poll"):
            if event["released"]:
                depart[event["cpu"]] = event["grant"]
        if sorted(arrival) != list(range(n)) or sorted(depart) != list(range(n)):
            raise CheckFailure(
                f"event stream missing arrivals/departures: "
                f"{len(arrival)} arrivals, {len(depart)} departures for N={n}"
            )
        rebuilt = [depart[cpu] - arrival[cpu] for cpu in range(n)]
        if rebuilt != result.waiting_times:
            raise CheckFailure(
                "waiting times disagree with the event stream: "
                f"result={result.waiting_times} rebuilt={rebuilt} "
                f"(N={n}, A={result.interval_a}, "
                f"policy={result.policy_name!r})"
            )
        if result.completion_time != max(depart.values()):
            raise CheckFailure(
                f"completion_time={result.completion_time} != max departure "
                f"{max(depart.values())} (N={n})"
            )
        cases += 1
    return cases


@invariant("directory-pointer-state")
def check_directory_pointer_state(ctx: CheckContext) -> int:
    """Invalidations are consistent with Dir_i_NB pointer state.

    Random traces through the coherence simulator: the directory never
    tracks more sharers than it has pointers, dirty blocks have exactly
    one sharer, directory and caches agree (the simulator's own
    ``check_invariants``), and a full-map directory (i = num_cpus)
    performs zero overflow invalidations on the same trace.
    """
    rng = ctx.rng("directory-pointer-state")
    cases = 0
    for __ in range(ctx.budget.cases * 2):
        num_cpus = int(rng.integers(2, 9))
        pointers = int(rng.integers(1, num_cpus + 1))
        blocks = int(rng.integers(1, 6))
        trace = [
            TraceRecord(
                cpu=int(rng.integers(0, num_cpus)),
                op=Op(["read", "write", "rmw"][int(rng.integers(0, 3))]),
                address=int(rng.integers(0, blocks)) * 16,
                is_sync=bool(rng.integers(0, 2)),
            )
            for __ in range(int(rng.integers(20, 120)))
        ]
        limited = CoherenceSimulator(
            CoherenceConfig(
                num_cpus=num_cpus, cache_bytes=1024, num_pointers=pointers
            )
        )
        full = CoherenceSimulator(
            CoherenceConfig(
                num_cpus=num_cpus, cache_bytes=1024, num_pointers=num_cpus
            )
        )
        for simulator in (limited, full):
            for record in trace:
                simulator.process(record)
            try:
                simulator.check_invariants()
            except AssertionError as error:
                raise CheckFailure(
                    f"directory invariant violated with i={pointers}, "
                    f"C={num_cpus}: {error}"
                ) from None
        if full.stats.invalidations_on_overflow != 0:
            raise CheckFailure(
                f"full-map directory (i=C={num_cpus}) performed "
                f"{full.stats.invalidations_on_overflow} overflow "
                "invalidations; pointer overflow is impossible there"
            )
        if (
            limited.stats.invalidations_on_overflow
            < full.stats.invalidations_on_overflow
        ):
            raise CheckFailure(
                f"i={pointers} pointers produced fewer overflow "
                "invalidations than the full map on the same trace"
            )
        cases += 1
    return cases
