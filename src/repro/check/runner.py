"""The check runner behind ``python -m repro check``.

Resolves the requested suites, runs them under an obs tracer, and
writes two artifacts next to each other:

- ``report.json`` — the :class:`~repro.check.report.CheckReport` (what
  ran, what failed, per-check repro commands); CI uploads this.
- ``manifest.json`` — a standard obs :class:`~repro.obs.manifest.RunManifest`
  over the check run's own event stream and counters, so a check run is
  introspectable exactly like any traced experiment run.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional, Sequence

from repro.check.fuzz import fuzz_registry
from repro.check.invariants import INVARIANT_CHECKS
from repro.check.oracles import DIFFERENTIAL_CHECKS
from repro.check.report import (
    CheckContext,
    CheckReport,
    resolve_budget,
    run_registered_checks,
)
from repro.obs.manifest import build_manifest
from repro.obs.tracer import Tracer, tracing

#: Suites in execution order.
SUITES = ("invariants", "differential", "fuzz")

#: Default directory for report + manifest artifacts.
DEFAULT_OUT_DIR = "checks"


def resolve_ids(ids: Optional[Sequence[str]]) -> Optional[List[str]]:
    """Validate experiment ids early (did-you-mean on unknown ones)."""
    if ids is None:
        return None
    from repro.registry import get_spec

    return [get_spec(experiment_id).id for experiment_id in ids]


def run_checks(
    suites: Optional[Sequence[str]] = None,
    budget: object = "default",
    seed: int = 0,
    ids: Optional[Sequence[str]] = None,
    out_dir: Optional[str] = DEFAULT_OUT_DIR,
) -> CheckReport:
    """Run the requested check suites; returns the populated report.

    Args:
        suites: subset of :data:`SUITES` (default: all three).
        budget: a named profile (small/default/large) or an integer.
        seed: root seed; every randomized case derives from it.
        ids: experiment-id filter for the fuzz suite (and the
            exec-parity candidate pool).  Unknown ids raise
            :class:`repro.registry.UnknownExperimentError`.
        out_dir: where to write ``report.json`` / ``manifest.json``;
            None skips writing.
    """
    selected = list(suites) if suites else list(SUITES)
    for suite in selected:
        if suite not in SUITES:
            raise ValueError(
                f"unknown suite {suite!r}; valid suites: {', '.join(SUITES)}"
            )
    resolved_budget = resolve_budget(budget)
    resolved_ids = resolve_ids(ids)
    ctx = CheckContext(seed=seed, budget=resolved_budget, ids=resolved_ids)
    report = CheckReport(
        seed=seed, budget=resolved_budget.name, suites=selected
    )

    tracer = Tracer(run_id=f"check-{seed}")
    start = time.perf_counter()
    with tracing(tracer):
        for suite in SUITES:
            if suite not in selected:
                continue
            if suite == "invariants":
                registry = dict(INVARIANT_CHECKS)
            elif suite == "differential":
                registry = dict(DIFFERENTIAL_CHECKS)
            else:
                registry = fuzz_registry(resolved_ids)
            tracer.emit("check.suite_start", suite=suite,
                        checks=len(registry))
            with tracer.timer(f"check.suite.{suite}"):
                outcomes = run_registered_checks(suite, registry, ctx)
            for outcome in outcomes:
                tracer.count("check.cases", outcome.cases)
                tracer.count(
                    "check.passed" if outcome.passed else "check.failed"
                )
                tracer.emit(
                    "check.outcome",
                    suite=outcome.suite,
                    check=outcome.check,
                    passed=outcome.passed,
                    cases=outcome.cases,
                )
            report.outcomes.extend(outcomes)
            tracer.emit("check.suite_end", suite=suite)
    report.wall_time_seconds = time.perf_counter() - start

    manifest = build_manifest(
        tracer,
        experiment_id="check",
        config={
            "suites": selected,
            "budget": resolved_budget.name,
            "ids": resolved_ids,
        },
        seed=seed,
        wall_time_seconds=report.wall_time_seconds,
    )
    report.manifest_digest = manifest.deterministic_digest()

    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        manifest.write(os.path.join(out_dir, "manifest.json"))
        with open(
            os.path.join(out_dir, "report.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report
