"""repro.check — correctness verification: invariants, oracles, fuzzing.

The verification subsystem behind ``python -m repro check``.  Three
suites, each attacking the reproduction from a different angle:

- :mod:`repro.check.invariants` — conservation laws cross-checking the
  obs event stream, the memory-module accounting and the simulator's
  result records against each other (one grant per module per cycle,
  episode traffic conservation, wait-cycle reconstruction, Dir_i_NB
  pointer-state consistency).
- :mod:`repro.check.oracles` — differential oracles: simulator vs
  analytic Models 1-2 within paper tolerances at randomized points,
  serial vs ``--jobs N`` vs cached digest parity on randomized configs,
  and metamorphic relations on backoff policies.
- :mod:`repro.check.fuzz` — schema-derived fuzzing: every registered
  experiment's typed Param schema resolves to hypothesis strategies,
  so all experiment ids get seeded, shrinking, budgeted fuzzing; shrunk
  failures come back as single-line ``python -m repro run`` commands.

Typical programmatic use::

    from repro.check import run_checks

    report = run_checks(suites=["invariants"], budget="small", seed=0)
    assert report.ok, report.render()
"""

from repro.check.fuzz import (
    backoff_policy_strategy,
    fuzz_experiment,
    fuzz_registry,
    kwargs_strategy,
    param_strategy,
    run_repro_command,
    sample_kwargs,
    strategy_for_domain,
)
from repro.check.invariants import INVARIANT_CHECKS, invariant, random_policy
from repro.check.oracles import DIFFERENTIAL_CHECKS, differential
from repro.check.report import (
    BUDGETS,
    Budget,
    CheckContext,
    CheckFailure,
    CheckOutcome,
    CheckReport,
    resolve_budget,
    run_registered_checks,
)
from repro.check.runner import DEFAULT_OUT_DIR, SUITES, run_checks

__all__ = [
    "BUDGETS",
    "Budget",
    "CheckContext",
    "CheckFailure",
    "CheckOutcome",
    "CheckReport",
    "DEFAULT_OUT_DIR",
    "DIFFERENTIAL_CHECKS",
    "INVARIANT_CHECKS",
    "SUITES",
    "backoff_policy_strategy",
    "differential",
    "fuzz_experiment",
    "fuzz_registry",
    "invariant",
    "kwargs_strategy",
    "param_strategy",
    "random_policy",
    "resolve_budget",
    "run_checks",
    "run_registered_checks",
    "run_repro_command",
    "sample_kwargs",
    "strategy_for_domain",
]
