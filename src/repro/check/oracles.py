"""Differential oracles: two ways of computing the same thing must agree.

Three families:

- **Analytic vs simulated** (`model-agreement`): the cycle-exact
  simulator must land within the paper's tolerances of Models 1 and 2
  in the regimes where each model is solid — at *randomized* operating
  points, not just the golden ones the claims suite pins.
- **Execution-mode parity** (`exec-parity`): the serial path, the
  ``--jobs N`` pool path and a cold/warm content-addressed cache must
  produce digest-identical results on randomized experiment configs
  drawn from the schema fuzz domains.
- **Metamorphic relations** (`metamorphic-*`): transformations of a
  backoff policy with a known effect — zero backoff degenerates to the
  base polling loop bit-for-bit; traffic predictions are monotone in N;
  exponential waits are monotone in polls, base and cap and never
  exceed the cap; flag backoff strictly beats no backoff when A >> N.
- **Backend parity** (`backend-parity`): the pure-python event loop and
  the vectorized numpy kernel must produce bit-identical episode
  summaries and experiment digests on randomized barrier configurations
  — the executable form of the equivalence contract in
  ``docs/vectorization.md``.  Skipped (0 cases) when numpy is absent.
- **Tree backend parity** (`tree-backend-parity`): the same contract
  for the combining-tree family — the event loop of
  :mod:`repro.barrier.tree` vs the batched kernel of
  :mod:`repro.barrier.kernel_tree_numpy`, on randomized (N, degree,
  A, policy, degraded-mode bounds) configurations.
"""

from __future__ import annotations

import tempfile
from typing import Callable, Dict

from repro.barrier.models import model1_accesses, model2_accesses
from repro.barrier.simulator import build_simulator, simulate_barrier
from repro.check.fuzz import run_repro_command, sample_kwargs
from repro.check.report import CheckContext, CheckFailure
from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.obs.tracer import NULL_TRACER, tracing
from repro.sim.rng import spawn_stream

#: The differential-oracle registry: name -> check function.
DIFFERENTIAL_CHECKS: Dict[str, Callable[[CheckContext], int]] = {}

#: Experiments the exec-parity oracle samples from by default: cheap at
#: fuzz-domain sizes and covering every dispatch shape (axis sweeps,
#: single-point experiments, and the stateful-policy ``determinism``
#: study that must bypass the cache).
DEFAULT_PARITY_IDS = (
    "combining",
    "coupling",
    "determinism",
    "figure4",
    "figure5",
    "figure6",
    "queueing",
    "resource",
)


def differential(name: str):
    """Decorator registering a differential oracle under ``name``."""

    def register(fn: Callable[[CheckContext], int]):
        if name in DIFFERENTIAL_CHECKS:
            raise ValueError(f"duplicate differential check {name!r}")
        DIFFERENTIAL_CHECKS[name] = fn
        return fn

    return register


@differential("model-agreement")
def check_model_agreement(ctx: CheckContext) -> int:
    """Simulator vs analytic Models 1-2 at randomized solid-regime points.

    Model 1 (A << N): simultaneous arrivals, prediction ``2.5 N``; the
    claims suite pins error < 5% at N=128, so randomized large-N points
    get a small cushion.  Model 2 (A >> N): prediction
    ``A(N-1)/(N+1)/2 + 1.5 N``; the paper reports ~8% error at the
    golden point, and the check budget averages far fewer episodes than
    the paper's 100, so the tolerance adds sampling slack.
    """
    rng = ctx.rng("model-agreement")
    cases = 0
    for __ in range(ctx.budget.cases):
        # -- Model 1 regime: A = 0 (deterministic simulation).
        n = int(rng.choice([48, 64, 96, 128]))
        aggregate = simulate_barrier(n, 0, NoBackoff(), repetitions=2)
        predicted = model1_accesses(n)
        error = abs(aggregate.mean_accesses - predicted) / predicted
        if error >= 0.06:
            raise CheckFailure(
                f"Model 1 disagreement at N={n}, A=0: simulated "
                f"{aggregate.mean_accesses:.2f} vs predicted "
                f"{predicted:.2f} ({100 * error:.1f}% error)"
            )
        # -- Model 2 regime: A >> N.
        n = int(rng.integers(8, 25))
        interval_a = int(rng.integers(800, 3001))
        seed = int(rng.integers(0, 2**32))
        aggregate = simulate_barrier(
            n,
            interval_a,
            NoBackoff(),
            repetitions=ctx.budget.repetitions,
            seed=seed,
        )
        predicted = model2_accesses(n, interval_a)
        error = abs(aggregate.mean_accesses - predicted) / predicted
        if error >= 0.15:
            raise CheckFailure(
                f"Model 2 disagreement at N={n}, A={interval_a}, "
                f"seed={seed}: simulated {aggregate.mean_accesses:.2f} vs "
                f"predicted {predicted:.2f} ({100 * error:.1f}% error)"
            )
        cases += 1
    return cases


@differential("exec-parity")
def check_exec_parity(ctx: CheckContext) -> int:
    """Serial vs ``--jobs 2`` vs cold/warm cache on randomized configs.

    The digest covers the canonicalized result data alone, so all four
    execution modes of the same (experiment, config, seed) must agree
    exactly; a cold cache run that stored entries must make the warm
    rerun hit them.
    """
    from repro.exec import (
        ExecConfig,
        execution,
        get_stats,
        payload_digest,
        reset_stats,
    )
    from repro.obs.manifest import jsonable
    from repro.registry import get_spec, run

    rng = ctx.rng("exec-parity")
    candidates = [
        experiment_id
        for experiment_id in (ctx.ids or DEFAULT_PARITY_IDS)
    ]
    cases = 0
    for __ in range(ctx.budget.cases):
        experiment_id = candidates[int(rng.integers(0, len(candidates)))]
        spec = get_spec(experiment_id)
        kwargs = sample_kwargs(spec, rng)
        repro = run_repro_command(experiment_id, kwargs, spec) + " --jobs 2"

        digests = {}
        digests["serial"] = payload_digest(
            jsonable(run(experiment_id, **kwargs).data)
        )
        with execution(ExecConfig(jobs=2, force_engine=True)):
            digests["jobs=2"] = payload_digest(
                jsonable(run(experiment_id, **kwargs).data)
            )
        with tempfile.TemporaryDirectory(prefix="repro-check-cache-") as tmp:
            cached = ExecConfig(cache=True, cache_dir=tmp, force_engine=True)
            reset_stats()
            with execution(cached):
                digests["cache-cold"] = payload_digest(
                    jsonable(run(experiment_id, **kwargs).data)
                )
            stores = get_stats().cache_stores
            reset_stats()
            with execution(cached):
                digests["cache-warm"] = payload_digest(
                    jsonable(run(experiment_id, **kwargs).data)
                )
            warm_hits = get_stats().cache_hits
        if len(set(digests.values())) != 1:
            raise CheckFailure(
                f"execution modes disagree on {experiment_id} "
                f"with {kwargs}: {digests}",
                repro=repro,
            )
        if stores and not warm_hits:
            raise CheckFailure(
                f"cold run stored {stores} cache entr(ies) for "
                f"{experiment_id} but the warm rerun hit none",
                repro=repro + " --cache",
            )
        cases += 1
    return cases


@differential("backend-parity")
def check_backend_parity(ctx: CheckContext) -> int:
    """python vs numpy episode backends, pinned summary-by-summary.

    The contract (docs/vectorization.md): for every configuration the
    kernel accepts, episode summaries — and therefore aggregates,
    experiment payloads and result digests — are *bit-identical* to the
    reference event loop; configurations it cannot accept must fall
    back to the loop, which makes parity trivial but still checks the
    dispatch path.  The oracle fails if the kernel never actually
    vectorized a shard (a silently-vacuous pass), and is skipped with
    zero cases when numpy itself is unavailable.
    """
    from repro.barrier.backend import (
        get_kernel_counters,
        numpy_available,
    )
    from repro.core.backoff import LinearFlagBackoff

    if not numpy_available():
        return 0

    rng = ctx.rng("backend-parity")
    policies = (
        NoBackoff(),
        VariableBackoff(),
        LinearFlagBackoff(step=2),
        ExponentialFlagBackoff(base=2),
        ExponentialFlagBackoff(base=8),
    )
    before = get_kernel_counters().vectorized_shards
    cases = 0
    for __ in range(ctx.budget.cases * 2):
        n = int(rng.integers(1, 65))
        interval_a = int(rng.choice([0, int(rng.integers(1, 301)), 1000]))
        seed = int(rng.integers(0, 2**32))
        policy = policies[int(rng.integers(0, len(policies)))]
        reps = max(2, ctx.budget.repetitions)
        simulator = build_simulator(n, interval_a, policy, seed=seed)
        # Mirror the exec engine: simulator-level tracing is suppressed
        # while a backend owns the shard (the kernel refuses traced
        # configurations, which would make every case fall back).
        with tracing(NULL_TRACER):
            loop = simulator.run_shard(0, reps, backend="python")
            kernel = simulator.run_shard(0, reps, backend="numpy")
        mismatches = [
            rep
            for rep, (a, b) in enumerate(zip(loop, kernel))
            if a.as_tuple() != b.as_tuple()
        ]
        if mismatches:
            rep = mismatches[0]
            raise CheckFailure(
                f"backends disagree at N={n}, A={interval_a}, "
                f"policy={policy!r}, seed={seed}, rep={rep}: "
                f"python {loop[rep].as_tuple()} vs "
                f"numpy {kernel[rep].as_tuple()} "
                f"({len(mismatches)}/{reps} episode(s) differ)"
            )
        cases += 1
    if get_kernel_counters().vectorized_shards == before:
        raise CheckFailure(
            "backend-parity ran without the numpy kernel vectorizing a "
            "single shard — every configuration fell back to the event "
            "loop, so the oracle checked nothing"
        )

    # One registry-level pin: the whole figure4 pipeline (sweep, engine,
    # aggregation, canonicalization) digests identically per backend.
    from repro.exec import payload_digest
    from repro.obs.manifest import jsonable
    from repro.registry import run

    kwargs = dict(repetitions=3, n_values=(2, 8, 32), a_values=(0, 100))
    digests = {
        backend: payload_digest(
            jsonable(run("figure4", backend=backend, **kwargs).data)
        )
        for backend in ("python", "numpy")
    }
    if digests["python"] != digests["numpy"]:
        raise CheckFailure(
            f"figure4 digests diverge across backends: {digests}",
            repro="python -m repro run figure4 -p repetitions=3 "
                  "-p n_values=2,8,32 -p a_values=0,100 --backend numpy",
        )
    return cases + 1


@differential("tree-backend-parity")
def check_tree_backend_parity(ctx: CheckContext) -> int:
    """python vs numpy tree backends, pinned summary-by-summary.

    The combining-tree analogue of ``backend-parity``: randomized
    (N, degree, A, policy, bounds) configurations must produce
    bit-identical episode summaries across the event loop and the
    batched kernel, including degraded-mode poll budgets and timeouts
    (where a mid-descent giving-up winner changes who writes — or
    whether anyone writes — every flag below).  Fails if the kernel
    never vectorized a shard; skipped (0 cases) when numpy is absent.
    """
    from repro.barrier.backend import get_kernel_counters, numpy_available
    from repro.barrier.tree import build_tree_simulator
    from repro.core.backoff import AdaptiveBackoff, LinearFlagBackoff

    if not numpy_available():
        return 0

    rng = ctx.rng("tree-backend-parity")
    policies = (
        NoBackoff(),
        VariableBackoff(),
        LinearFlagBackoff(step=2),
        ExponentialFlagBackoff(base=2),
        AdaptiveBackoff(multiplier=1, flag_base=2),
    )
    before = get_kernel_counters().vectorized_shards
    cases = 0
    for __ in range(ctx.budget.cases * 2):
        n = int(rng.integers(1, 65))
        degree = int(rng.choice([2, 3, 4, 8, 16]))
        interval_a = int(rng.choice([0, int(rng.integers(1, 301)), 1000]))
        seed = int(rng.integers(0, 2**32))
        policy = policies[int(rng.integers(0, len(policies)))]
        poll_budget = None
        timeout_cycles = None
        bounds = int(rng.integers(0, 4))
        if bounds & 1:
            poll_budget = int(rng.integers(1, 9))
        if bounds & 2:
            timeout_cycles = int(rng.integers(20, 400))
        reps = max(2, ctx.budget.repetitions)
        simulator = build_tree_simulator(
            n, interval_a, policy, degree=degree, seed=seed,
            poll_budget=poll_budget, timeout_cycles=timeout_cycles,
        )
        with tracing(NULL_TRACER):
            loop = simulator.run_shard(0, reps, backend="python")
            kernel = simulator.run_shard(0, reps, backend="numpy")
        mismatches = [
            rep
            for rep, (a, b) in enumerate(zip(loop, kernel))
            if a.as_tuple() != b.as_tuple()
        ]
        if mismatches:
            rep = mismatches[0]
            raise CheckFailure(
                f"tree backends disagree at N={n}, degree={degree}, "
                f"A={interval_a}, policy={policy!r}, seed={seed}, "
                f"poll_budget={poll_budget}, "
                f"timeout_cycles={timeout_cycles}, rep={rep}: "
                f"python {loop[rep].as_tuple()} vs "
                f"numpy {kernel[rep].as_tuple()} "
                f"({len(mismatches)}/{reps} episode(s) differ)"
            )
        cases += 1
    if get_kernel_counters().vectorized_shards == before:
        raise CheckFailure(
            "tree-backend-parity ran without the tree kernel vectorizing "
            "a single shard — every configuration fell back to the event "
            "loop, so the oracle checked nothing"
        )

    # One registry-level pin: the scale1024 pipeline digests identically
    # per backend (probe disabled — the Omega probe has no backend).
    from repro.exec import payload_digest
    from repro.obs.manifest import jsonable
    from repro.registry import run

    kwargs = dict(
        repetitions=2, n_values=(4, 16), probe_horizon=0, interval_a=50
    )
    digests = {
        backend: payload_digest(
            jsonable(run("scale1024", backend=backend, **kwargs).data)
        )
        for backend in ("python", "numpy")
    }
    if digests["python"] != digests["numpy"]:
        raise CheckFailure(
            f"scale1024 digests diverge across backends: {digests}",
            repro="python -m repro run scale1024 -p repetitions=2 "
                  "-p n_values=4,16 -p probe_horizon=0 -p interval_a=50 "
                  "--backend numpy",
        )
    return cases + 1


@differential("metamorphic-zero-backoff")
def check_zero_backoff_degenerates(ctx: CheckContext) -> int:
    """Zero-amount backoff is bit-identical to the base polling loop.

    ``VariableBackoff(multiplier=0, offset=0)`` waits zero cycles
    everywhere, exactly like ``NoBackoff``; episodes simulated with
    identical seeds must match in every per-process field.
    """
    rng = ctx.rng("metamorphic-zero-backoff")
    cases = 0
    for __ in range(ctx.budget.cases * 2):
        n = int(rng.integers(2, 33))
        interval_a = int(rng.integers(0, 501))
        seed = int(rng.integers(0, 2**32))
        single = bool(rng.integers(0, 2))
        results = []
        for policy in (NoBackoff(), VariableBackoff(multiplier=0, offset=0)):
            simulator = build_simulator(
                n, interval_a, policy, seed=seed, single_variable=single
            )
            results.append(
                simulator.run_once(spawn_stream(seed, "barrier-rep-0"))
            )
        base, degenerate = results
        same = (
            base.accesses_per_process == degenerate.accesses_per_process
            and base.waiting_times == degenerate.waiting_times
            and base.completion_time == degenerate.completion_time
            and base.flag_set_time == degenerate.flag_set_time
        )
        if not same:
            raise CheckFailure(
                f"zero backoff diverged from base polling at N={n}, "
                f"A={interval_a}, seed={seed}, single_variable={single}: "
                f"accesses {base.accesses_per_process} vs "
                f"{degenerate.accesses_per_process}"
            )
        cases += 1
    return cases


@differential("metamorphic-monotonicity")
def check_monotonicity(ctx: CheckContext) -> int:
    """Monotone relations in N and in the backoff bound.

    More processors can never predict less traffic (Models 1-2 are
    monotone in N; the A=0 deterministic simulation agrees); an
    exponential flag wait is monotone in polls, base and cap, and never
    exceeds its cap; and flag backoff saves traffic vs no backoff in
    the A >> N regime where the paper claims the largest wins.
    """
    rng = ctx.rng("metamorphic-monotonicity")
    cases = 0
    for __ in range(ctx.budget.cases):
        # -- analytic monotonicity in N.
        interval_a = int(rng.integers(0, 2001))
        smaller = int(rng.integers(1, 128))
        larger = smaller + int(rng.integers(1, 65))
        for model, label in (
            (model1_accesses, "Model 1"),
            (lambda n: model2_accesses(n, interval_a), "Model 2"),
        ):
            if model(larger) < model(smaller):
                raise CheckFailure(
                    f"{label} not monotone in N: f({smaller})="
                    f"{model(smaller):.2f} > f({larger})={model(larger):.2f} "
                    f"at A={interval_a}"
                )
        # -- simulated monotonicity at A=0 (deterministic).
        small_sim = simulate_barrier(smaller % 48 + 2, 0, NoBackoff(),
                                     repetitions=1)
        large_sim = simulate_barrier(smaller % 48 + 2 + 8, 0, NoBackoff(),
                                     repetitions=1)
        if large_sim.mean_accesses < small_sim.mean_accesses:
            raise CheckFailure(
                "simulated A=0 traffic decreased when N grew: "
                f"N={smaller % 48 + 2} -> {small_sim.mean_accesses:.2f}, "
                f"N={smaller % 48 + 10} -> {large_sim.mean_accesses:.2f}"
            )
        # -- exponential wait bounded by cap, monotone in polls/base/cap.
        base = int(rng.choice([2, 4, 8]))
        cap = int(rng.integers(4, 1 << 12))
        policy = ExponentialFlagBackoff(base=base, cap=cap)
        wider = ExponentialFlagBackoff(base=base, cap=2 * cap)
        steeper = ExponentialFlagBackoff(base=2 * base, cap=cap)
        previous = 0
        for polls in range(1, 20):
            wait = policy.flag_wait(polls)
            if wait > cap:
                raise CheckFailure(
                    f"exponential wait {wait} exceeds cap {cap} "
                    f"(base={base}, polls={polls})"
                )
            if wait < previous:
                raise CheckFailure(
                    f"exponential wait not monotone in polls at "
                    f"base={base}, cap={cap}, polls={polls}"
                )
            if wider.flag_wait(polls) < wait:
                raise CheckFailure(
                    f"raising the cap lowered the wait at base={base}, "
                    f"polls={polls}"
                )
            if steeper.flag_wait(polls) < wait:
                raise CheckFailure(
                    f"raising the base lowered the wait at cap={cap}, "
                    f"polls={polls}"
                )
            previous = wait
        # -- backoff saves traffic in the A >> N regime.
        n = int(rng.integers(16, 65))
        interval_a = int(rng.integers(1000, 3001))
        seed = int(rng.integers(0, 2**32))
        baseline = simulate_barrier(
            n, interval_a, NoBackoff(),
            repetitions=ctx.budget.repetitions, seed=seed,
        )
        backed_off = simulate_barrier(
            n, interval_a, ExponentialFlagBackoff(base=2),
            repetitions=ctx.budget.repetitions, seed=seed,
        )
        if backed_off.mean_accesses >= baseline.mean_accesses:
            raise CheckFailure(
                f"base-2 flag backoff saved nothing at N={n}, "
                f"A={interval_a}, seed={seed}: "
                f"{backed_off.mean_accesses:.2f} vs baseline "
                f"{baseline.mean_accesses:.2f}"
            )
        cases += 1
    return cases
