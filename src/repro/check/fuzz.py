"""Schema-derived fuzzing: Param fuzz domains -> hypothesis strategies.

Every :class:`~repro.registry.spec.ExperimentSpec` declares a typed
parameter schema; each :class:`~repro.registry.spec.Param` resolves to
a declarative *fuzz domain* (:meth:`Param.fuzz_domain`) — plain data
describing a small, cheap value space.  This module turns domains into
hypothesis strategies, so every registered experiment gets seeded,
shrinking, budgeted fuzzing with zero per-experiment boilerplate:

- :func:`strategy_for_domain` / :func:`kwargs_strategy` — domain ->
  strategy, spec -> full-kwargs strategy.
- :func:`sample_kwargs` — one numpy-drawn sample from the same domains
  (the differential oracles use this to randomize configs without
  pulling hypothesis into their control flow).
- :func:`fuzz_experiment` — run one spec under ``@given`` with a
  derived seed; on failure returns the *shrunk* minimal kwargs, which
  :func:`run_repro_command` turns into a single-line repro.
- :func:`backoff_policy_strategy` — the shared policy generator the
  property-test suite draws from.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from hypothesis import HealthCheck, given, seed as hypothesis_seed, settings
from hypothesis import strategies as st

from repro.core.backoff import (
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.check.report import CheckContext, CheckFailure
from repro.registry.spec import ExperimentSpec, Param


def strategy_for_domain(domain: Dict[str, Any]) -> st.SearchStrategy:
    """A hypothesis strategy drawing from one declarative fuzz domain."""
    kind = domain["type"]
    if kind == "const":
        return st.just(domain["value"])
    if kind == "int":
        return st.integers(min_value=domain["lo"], max_value=domain["hi"])
    if kind == "float":
        return st.floats(
            min_value=domain["lo"],
            max_value=domain["hi"],
            allow_nan=False,
            allow_infinity=False,
        )
    if kind == "choice":
        return st.sampled_from(list(domain["values"]))
    if kind == "seq":
        return st.lists(
            strategy_for_domain(domain["element"]),
            min_size=domain.get("min_size", 1),
            max_size=domain.get("max_size", 3),
            unique=domain.get("unique", False),
        ).map(tuple)
    if kind == "pairs":
        pair = st.tuples(
            strategy_for_domain(domain["first"]),
            strategy_for_domain(domain["second"]),
        )
        return st.lists(
            pair,
            min_size=domain.get("min_size", 1),
            max_size=domain.get("max_size", 2),
            unique=True,
        ).map(tuple)
    raise ValueError(f"unknown fuzz domain type {kind!r}")


def param_strategy(param: Param) -> st.SearchStrategy:
    """The strategy for one declared parameter."""
    return strategy_for_domain(param.fuzz_domain())


def kwargs_strategy(spec: ExperimentSpec) -> st.SearchStrategy:
    """A strategy over *complete* kwargs for ``spec``.

    Every declared parameter is drawn from its fuzz domain — including
    the ones with expensive production defaults (``repetitions=100``,
    full-size traces), which is what keeps fuzzing inside the budget.
    """
    return st.fixed_dictionaries(
        {param.name: param_strategy(param) for param in spec.params}
    )


def sample_from_domain(
    domain: Dict[str, Any], rng: np.random.Generator
) -> Any:
    """One numpy-drawn sample from a fuzz domain (no hypothesis)."""
    kind = domain["type"]
    if kind == "const":
        return domain["value"]
    if kind == "int":
        return int(rng.integers(domain["lo"], domain["hi"] + 1))
    if kind == "float":
        return float(rng.uniform(domain["lo"], domain["hi"]))
    if kind == "choice":
        values = list(domain["values"])
        return values[int(rng.integers(0, len(values)))]
    if kind == "seq":
        lo = domain.get("min_size", 1)
        hi = domain.get("max_size", 3)
        size = int(rng.integers(lo, hi + 1))
        unique = domain.get("unique", False)
        items: List[Any] = []
        for __ in range(50 * max(size, 1)):
            value = sample_from_domain(domain["element"], rng)
            if unique and value in items:
                continue
            items.append(value)
            if len(items) == size:
                break
        return tuple(items)
    if kind == "pairs":
        lo = domain.get("min_size", 1)
        hi = domain.get("max_size", 2)
        size = int(rng.integers(lo, hi + 1))
        pairs = []
        for __ in range(50 * max(size, 1)):
            pair = (
                sample_from_domain(domain["first"], rng),
                sample_from_domain(domain["second"], rng),
            )
            if pair in pairs:
                continue
            pairs.append(pair)
            if len(pairs) == size:
                break
        return tuple(pairs)
    raise ValueError(f"unknown fuzz domain type {kind!r}")


def sample_kwargs(
    spec: ExperimentSpec, rng: np.random.Generator
) -> Dict[str, Any]:
    """One complete randomized kwargs dict for ``spec``."""
    return {
        param.name: sample_from_domain(param.fuzz_domain(), rng)
        for param in spec.params
    }


def run_repro_command(
    experiment_id: str, kwargs: Dict[str, Any], spec: ExperimentSpec
) -> str:
    """The single-line CLI command reproducing one fuzzed configuration."""
    parts = [f"PYTHONPATH=src python -m repro run {experiment_id}"]
    for name in spec.param_names():
        if name in kwargs:
            value = spec.get_param(name).format(kwargs[name])
            parts.append(f"-p {name}={value}")
    return " ".join(parts)


def backoff_policy_strategy() -> st.SearchStrategy:
    """Backoff policies with schema-typical knob ranges.

    The shared generator behind both the fuzz oracles and the
    property-based test suite (tests/test_properties.py), so new policy
    shapes get picked up by every consumer at once.
    """
    return st.one_of(
        st.just(NoBackoff()),
        st.builds(
            VariableBackoff,
            multiplier=st.integers(min_value=0, max_value=4),
            offset=st.integers(min_value=0, max_value=8),
        ),
        st.builds(LinearFlagBackoff, step=st.integers(min_value=1, max_value=8)),
        st.builds(
            ExponentialFlagBackoff, base=st.sampled_from([2, 4, 8])
        ),
    )


def _derived_seed(root_seed: int, label: str) -> int:
    """A stable per-label hypothesis seed derived from the root seed."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


def fuzz_experiment(
    spec: ExperimentSpec, root_seed: int, max_examples: int
) -> Tuple[int, Optional[Tuple[Dict[str, Any], BaseException]]]:
    """Fuzz one experiment through its schema-derived strategy.

    Runs ``max_examples`` randomized complete configurations through
    the registry runner and asserts the invariants every experiment
    must satisfy: it runs without raising, renders a non-empty report,
    and produces JSON-native result data (the cache/process-boundary
    contract).

    Returns ``(cases_run, failure)`` where ``failure`` is None on
    success or ``(shrunk_kwargs, error)`` — hypothesis replays the
    minimal failing example last before raising, so the captured
    kwargs are the shrunk repro.
    """
    from repro.exec.cache import canonical_payload
    from repro.obs.manifest import jsonable
    from repro.registry import run

    state: Dict[str, Any] = {"cases": 0, "last": None}

    @settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        suppress_health_check=list(HealthCheck),
    )
    @hypothesis_seed(_derived_seed(root_seed, spec.id))
    @given(kwargs=kwargs_strategy(spec))
    def execute(kwargs: Dict[str, Any]) -> None:
        state["last"] = kwargs
        state["cases"] += 1
        result = run(spec.id, **kwargs)
        assert str(result).strip(), "experiment rendered an empty report"
        # The payload must survive JSON (cache and pool workers depend
        # on it); canonical_payload raises on anything non-native.
        canonical_payload(jsonable(result.data))

    try:
        execute()
    except BaseException as error:  # noqa: BLE001 — reported, not hidden
        return state["cases"], (state["last"] or {}, error)
    return state["cases"], None


def fuzz_registry(
    ids: Optional[Sequence[str]] = None,
) -> Dict[str, Callable[[CheckContext], int]]:
    """A check registry with one fuzz check per experiment id."""
    from repro.registry import experiment_ids, get_spec

    selected = list(ids) if ids is not None else experiment_ids()
    registry: Dict[str, Callable[[CheckContext], int]] = {}
    for experiment_id in selected:
        spec = get_spec(experiment_id)

        def make_check(spec: ExperimentSpec = spec):
            def check(ctx: CheckContext) -> int:
                cases, failure = fuzz_experiment(
                    spec, ctx.seed, ctx.budget.examples
                )
                if failure is not None:
                    kwargs, error = failure
                    raise CheckFailure(
                        f"{type(error).__name__}: {error}\n"
                        f"shrunk config: {kwargs}",
                        repro=run_repro_command(spec.id, kwargs, spec),
                    )
                return cases
            return check

        registry[experiment_id] = make_check()
    return registry
