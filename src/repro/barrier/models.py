"""Analytic barrier models (Section 5.1).

Model 1 — all N processors arrive simultaneously (A = 0):

    "a processor will make on average N + N + N/2 synchronization
    references.  Each processor makes on average N/2 references to get
    at the barrier variable, polls the barrier flag N/2 references
    before the last processor gets through the barrier variable,
    continues polling the barrier flag N times until the last processor
    can set the flag, and finally leaves after N/2 references"

so ``5N/2`` accesses per processor.

Model 2 — A >> N, no contention for the barrier variable: with
uniform arrivals the expected span between first and last arrival is

    r = A (N - 1) / (N + 1)

and each processor makes ``r/2 + N + N/2`` accesses on average.

"In general, the maximum of the predictions of the two models yields a
good fit with simulation in all ranges" — :func:`model_prediction`.

The exponential-backoff savings bound: with base ``b`` the ``M``
no-backoff polls of the flag shrink to roughly ``log_b M``, giving
:func:`exponential_savings_bound` = ``log_b(r / 2)`` fewer-is-better
poll counts for the waiting phase.
"""

from __future__ import annotations

import math


def model1_accesses(n: int) -> float:
    """Model 1 (A << N): average network accesses per processor."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 2.5 * n


def expected_span(interval_a: float, n: int) -> float:
    """Expected span r between first and last of N uniform arrivals in A.

    The average time from the start of the interval to the first
    arrival is A/(N+1), and from the last arrival to the end is also
    A/(N+1); the span is the difference of their complements:
    ``r = A (N-1)/(N+1)``.  r -> A as N grows.
    """
    if interval_a < 0:
        raise ValueError("interval_a must be non-negative")
    if n < 1:
        raise ValueError("n must be >= 1")
    return interval_a * (n - 1) / (n + 1)


def model2_accesses(n: int, interval_a: float) -> float:
    """Model 2 (A >> N): average network accesses per processor.

    ``r/2 + N + N/2``: half the arrival span spent polling before the
    last arrival, N polls while the last processor traverses the
    barrier, N/2 to leave.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return expected_span(interval_a, n) / 2.0 + 1.5 * n


def model_prediction(n: int, interval_a: float) -> float:
    """max(Model 1, Model 2): the paper's good-fit-everywhere predictor."""
    return max(model1_accesses(n), model2_accesses(n, interval_a))


def exponential_savings_bound(
    n: int, interval_a: float, base: int
) -> float:
    """Upper bound on flag polls with exponential backoff, ``log_b(r/2)``.

    "the potential savings in network accesses can be as large as
    log_b(r/2) for exponential backoff, where b is the basis of the
    exponential backoff algorithm used" — i.e. the waiting-phase polls
    drop from ~r/2 to ~log_b(r/2).
    """
    if base < 2:
        raise ValueError("base must be >= 2")
    span = expected_span(interval_a, n)
    if span <= 2.0:
        return 1.0
    return math.log(span / 2.0, base)


def variable_backoff_accesses(n: int, interval_a: float) -> float:
    """Analytic estimate with backoff on the barrier variable only.

    The scheme saves the N/2 polls made while processors are still
    getting through the barrier variable ("A similar savings of N/2 is
    made for A >> N. ... the savings is a constant N/2 no matter what
    A is").
    """
    return model_prediction(n, interval_a) - 0.5 * n
