"""Software combining-tree barriers (Yew, Tseng & Lawrie), with backoff.

The paper points at combining trees twice: as the fix for directory
pointer overflow ("as long as the degree of the nodes in the combining
tree is less than the number of pointers ... synchronization variables
will not result in extra invalidation traffic") and as the right
structure once N approaches A ("for these cases barrier synchronization
is probably inappropriate anyway without some form of distributed
software combining.  Our backoff methods can still be used on the
intermediate nodes of the combining tree").

Protocol simulated here:

- processors are split into groups of ``degree``; each group runs a
  Tang-Yew barrier whose variable and flag live in that node's own two
  memory modules (the tree spreads traffic across 2 * #nodes modules);
- the *last* arrival at a node ascends and becomes a participant in the
  parent node (its arrival time there is one cycle after its F&A at the
  child completes);
- the last arrival at the root writes the root flag, then descends:
  every node winner, upon observing its parent's flag, writes its own
  node's flag one cycle later; waiting processors poll their node's
  flag under the configured backoff policy.

Metrics match the flat simulator: network accesses per process (summed
over every node the process touched) and waiting time from first
arrival to observing the release.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.barrier.arrivals import ArrivalProcess, UniformArrivals
from repro.barrier.backend import get_kernel_counters, resolve_backend
from repro.barrier.metrics import (
    BarrierAggregate,
    BarrierRunResult,
    EpisodeSummary,
    aggregate_from_summaries,
)
from repro.core.barrier import CombiningTreeBarrier
from repro.exec.context import get_exec_config
from repro.faults.plan import get_fault_plan
from repro.network.module import MemoryModule
from repro.sim.rng import spawn_stream

_REQ_VARIABLE = 0
_REQ_FLAG_READ = 1
_REQ_FLAG_WRITE = 2


class _Node:
    """One combining-tree node: a Tang-Yew barrier over own modules."""

    __slots__ = (
        "node_id",
        "parent",
        "expected",
        "count",
        "flag_set_time",
        "variable_module",
        "flag_module",
        "winner",
    )

    def __init__(self, node_id: int, parent: Optional[int], expected: int) -> None:
        self.node_id = node_id
        self.parent = parent
        self.expected = expected
        self.count = 0
        self.flag_set_time: Optional[int] = None
        self.variable_module = MemoryModule(f"tree-var-{node_id}")
        self.flag_module = MemoryModule(f"tree-flag-{node_id}")
        self.winner: Optional[int] = None


def _build_nodes(n: int, degree: int) -> Tuple[List[_Node], List[int]]:
    """Create the node table and each processor's leaf assignment.

    Nodes are numbered level by level, leaves first.  Returns the node
    list and ``leaf_of[cpu]``.
    """
    nodes: List[_Node] = []
    # Group the current level's participants; participants of level 0
    # are processors, above that they are winner tokens.
    level_group_counts = []
    count = n
    while count > 1:
        groups = -(-count // degree)
        level_group_counts.append((count, groups))
        count = groups
    if not level_group_counts:
        level_group_counts.append((1, 1))

    # Create nodes; record each level's starting node id.
    level_start: List[int] = []
    for participants, groups in level_group_counts:
        level_start.append(len(nodes))
        for g in range(groups):
            lo = g * degree
            hi = min(lo + degree, participants)
            nodes.append(_Node(len(nodes), None, hi - lo))

    # Wire parents: group g of level k feeds node (g // degree) of k+1.
    for level in range(len(level_group_counts) - 1):
        __, groups = level_group_counts[level]
        for g in range(groups):
            child = nodes[level_start[level] + g]
            child.parent = level_start[level + 1] + g // degree

    leaf_of = [level_start[0] + cpu // degree for cpu in range(n)]
    return nodes, leaf_of


class TreeBarrierSimulator:
    """Simulates a :class:`CombiningTreeBarrier` episode."""

    def __init__(
        self,
        barrier: CombiningTreeBarrier,
        arrivals: Optional[ArrivalProcess] = None,
        seed: int = 0,
    ) -> None:
        self.barrier = barrier
        self.arrivals = arrivals if arrivals is not None else UniformArrivals(0)
        self.seed = seed

    @property
    def policy_label(self) -> str:
        """The aggregate's policy name: ``tree-<degree>/<policy>``."""
        return f"tree-{self.barrier.degree}/{self.barrier.backoff.name}"

    def run_once(self, rng: np.random.Generator) -> BarrierRunResult:
        n = self.barrier.num_processors
        degree = self.barrier.degree
        policy = self.barrier.backoff
        poll_budget = self.barrier.poll_budget
        timeout_cycles = self.barrier.timeout_cycles
        nodes, leaf_of = _build_nodes(n, degree)

        arrival_times = [int(when) for when in self.arrivals.draw(n, rng)]
        accesses = [0] * n
        depart = [0] * n
        timed_out: List[int] = []
        polls: Dict[Tuple[int, int], int] = {}  # (cpu, node) -> failed polls
        # The node a cpu must observe released to depart: its leaf.
        heap: List[Tuple[int, int, int, int, int]] = []  # (t, seq, cpu, node, kind)
        seq = 0

        def push(time: int, cpu: int, node_id: int, kind: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, cpu, node_id, kind))
            seq += 1

        def release(node: _Node, set_time: int) -> None:
            """Mark node released; its winner descends to children later
            via the flag observations (children poll their own node)."""
            node.flag_set_time = set_time

        for cpu, when in enumerate(arrival_times):
            push(when, cpu, leaf_of[cpu], _REQ_VARIABLE)

        while heap:
            ready, __, cpu, node_id, kind = heapq.heappop(heap)
            node = nodes[node_id]

            if kind == _REQ_VARIABLE:
                grant, cost = node.variable_module.request(ready)
                accesses[cpu] += cost
                node.count += 1
                value = node.count
                if value == node.expected:
                    node.winner = cpu
                    if node.parent is None:
                        # Root complete: write the root flag.
                        push(grant + 1, cpu, node_id, _REQ_FLAG_WRITE)
                    else:
                        # Ascend: arrive at the parent one cycle later.
                        push(grant + 1, cpu, node.parent, _REQ_VARIABLE)
                else:
                    wait = max(policy.variable_wait(value, node.expected), 1)
                    push(grant + wait, cpu, node_id, _REQ_FLAG_READ)
                continue

            if kind == _REQ_FLAG_WRITE:
                grant, cost = node.flag_module.request(ready)
                accesses[cpu] += cost
                release(node, grant)
                if node_id == leaf_of[cpu]:
                    depart[cpu] = grant
                else:
                    # Descend: the winner of a child of this node polls
                    # this node's flag; but THIS cpu is the writer — it
                    # now releases the child it came from.
                    child = self._child_of(nodes, node_id, cpu, leaf_of)
                    push(grant + 1, cpu, child, _REQ_FLAG_WRITE)
                continue

            # _REQ_FLAG_READ
            grant, cost = node.flag_module.request(ready)
            accesses[cpu] += cost
            if node.flag_set_time is not None and grant > node.flag_set_time:
                if node_id == leaf_of[cpu]:
                    depart[cpu] = grant
                else:
                    # A winner waiting at an interior node: release the
                    # child it ascended from.
                    child = self._child_of(nodes, node_id, cpu, leaf_of)
                    push(grant + 1, cpu, child, _REQ_FLAG_WRITE)
            else:
                key = (cpu, node_id)
                polls[key] = polls.get(key, 0) + 1
                if (poll_budget is not None and polls[key] >= poll_budget) or (
                    timeout_cycles is not None
                    and grant - arrival_times[cpu] >= timeout_cycles
                ):
                    # Degraded mode, per (processor, node) wait: give up
                    # and depart.  A winner that gives up at an interior
                    # node never writes its child's flag, so the nodes
                    # below it drain through the same bounds.
                    timed_out.append(cpu)
                    depart[cpu] = grant
                    continue
                wait = max(policy.flag_wait(polls[key]), 1)
                push(grant + wait, cpu, node_id, _REQ_FLAG_READ)

        result = BarrierRunResult(
            num_processors=n,
            interval_a=self.arrivals.interval,
            policy_name=f"tree-{degree}/{policy.name}",
        )
        result.accesses_per_process = accesses
        result.timed_out = timed_out
        result.waiting_times = [depart[cpu] - arrival_times[cpu] for cpu in range(n)]
        result.completion_time = max(depart) if depart else 0
        root = [node for node in nodes if node.parent is None][0]
        result.flag_set_time = root.flag_set_time
        result.variable_accesses = sum(
            node.variable_module.total_accesses for node in nodes
        )
        result.flag_accesses = sum(node.flag_module.total_accesses for node in nodes)
        return result

    @staticmethod
    def _child_of(
        nodes: List[_Node], node_id: int, cpu: int, leaf_of: List[int]
    ) -> int:
        """The child of ``node_id`` that ``cpu`` won on its way up."""
        current = leaf_of[cpu]
        while nodes[current].parent is not None and nodes[current].parent != node_id:
            current = nodes[current].parent
        if nodes[current].parent != node_id:
            raise AssertionError(
                f"cpu {cpu} is not a descendant winner of node {node_id}"
            )
        return current

    def _kernel_summaries(
        self, rep_start: int, rep_stop: int
    ) -> Optional[List[EpisodeSummary]]:
        """Try the vectorized tree kernel on a shard; None = fall back.

        Mirrors :meth:`repro.barrier.simulator.BarrierSimulator
        ._kernel_summaries`: the kernel raises
        :class:`repro.barrier.kernel_numpy.KernelUnsupported` for
        configurations outside its contract (tracing, fault plans,
        stateful policies — see ``docs/vectorization.md``), and those
        shards take the reference event loop with the fallback counter
        recording that the knob had no effect.
        """
        from repro.barrier import kernel_tree_numpy
        from repro.barrier.kernel_numpy import KernelUnsupported

        try:
            summaries = kernel_tree_numpy.shard_summaries(
                self, rep_start, rep_stop
            )
        except KernelUnsupported:
            get_kernel_counters().fallback_shards += 1
            return None
        get_kernel_counters().vectorized_shards += 1
        return summaries

    def run_shard(
        self,
        rep_start: int,
        rep_stop: int,
        backend: Optional[str] = None,
    ) -> List[EpisodeSummary]:
        """Simulate repetitions ``[rep_start, rep_stop)``; one summary each.

        The tree analogue of the flat simulator's shard API: every
        repetition's stream is derived from ``(seed, "tree-rep-<rep>")``
        alone, so shards are location-independent and replaying their
        summaries in repetition order rebuilds :meth:`run`'s aggregate
        bit-for-bit.  ``backend`` selects the episode engine; summaries
        are bit-identical either way.
        """
        if rep_start < 0 or rep_stop < rep_start:
            raise ValueError(
                f"invalid shard bounds [{rep_start}, {rep_stop})"
            )
        if resolve_backend(backend) == "numpy":
            kernel = self._kernel_summaries(rep_start, rep_stop)
            if kernel is not None:
                return kernel
        summaries: List[EpisodeSummary] = []
        for rep in range(rep_start, rep_stop):
            rng = spawn_stream(self.seed, f"tree-rep-{rep}")
            summaries.append(EpisodeSummary.from_run(self.run_once(rng)))
        return summaries

    def run(
        self, repetitions: int = 100, backend: Optional[str] = None
    ) -> BarrierAggregate:
        """Average over independent episodes (cf. flat simulator)."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if resolve_backend(backend) == "numpy":
            summaries = self._kernel_summaries(0, repetitions)
            if summaries is not None:
                return aggregate_from_summaries(
                    self.barrier.num_processors,
                    self.arrivals.interval,
                    self.policy_label,
                    summaries,
                )
        aggregate = BarrierAggregate(
            num_processors=self.barrier.num_processors,
            interval_a=self.arrivals.interval,
            policy_name=self.policy_label,
        )
        for rep in range(repetitions):
            rng = spawn_stream(self.seed, f"tree-rep-{rep}")
            aggregate.add_run(self.run_once(rng))
        return aggregate


def simulate_tree_barrier(
    num_processors: int,
    interval_a: int,
    degree: int = 4,
    policy=None,
    repetitions: int = 100,
    seed: int = 0,
    backend: Optional[str] = None,
    poll_budget: Optional[int] = None,
    timeout_cycles: Optional[int] = None,
) -> BarrierAggregate:
    """Convenience wrapper mirroring :func:`simulate_barrier`.

    Like the flat wrapper, an active :class:`repro.exec.ExecConfig`
    (and no fault plan) routes the point through the exec engine —
    parallel repetition shards plus the shared result cache — with
    bit-identical aggregates; the tree loop ignores fault plans, so
    plans take the serial path purely for symmetry with the flat wrapper.
    """
    from repro.core.backoff import NoBackoff

    barrier = CombiningTreeBarrier(
        num_processors,
        degree=degree,
        backoff=policy if policy is not None else NoBackoff(),
        poll_budget=poll_budget,
        timeout_cycles=timeout_cycles,
    )
    config = get_exec_config()
    if config.active and get_fault_plan() is None:
        from repro.exec.engine import PointSpec, execute_barrier_points

        spec = PointSpec(
            num_processors=num_processors,
            interval_a=interval_a,
            policy=barrier.backoff,
            repetitions=repetitions,
            seed=seed,
            backend=backend,
            tree_degree=degree,
            poll_budget=poll_budget,
            timeout_cycles=timeout_cycles,
        )
        return execute_barrier_points([spec], config)[0]
    simulator = TreeBarrierSimulator(
        barrier, UniformArrivals(interval_a), seed=seed
    )
    return simulator.run(repetitions, backend=backend)


def build_tree_simulator(
    num_processors: int,
    interval_a: int,
    policy,
    degree: int = 4,
    seed: int = 0,
    poll_budget: Optional[int] = None,
    timeout_cycles: Optional[int] = None,
) -> TreeBarrierSimulator:
    """The simulator ``simulate_tree_barrier`` would run serially."""
    barrier = CombiningTreeBarrier(
        num_processors,
        degree=degree,
        backoff=policy,
        poll_budget=poll_budget,
        timeout_cycles=timeout_cycles,
    )
    return TreeBarrierSimulator(
        barrier, UniformArrivals(interval_a), seed=seed
    )
