"""Result records and aggregation for barrier simulations.

The paper's metrics (Section 5):

    "(1) the number of network accesses per process in accessing the
    barrier variable and barrier flag; and (2) the number of cycles
    that an average process spends from the time it arrives at the
    barrier to the time it is allowed to proceed from the barrier."

Each simulation point is repeated (the paper uses 100 repetitions) and
averaged; "the standard deviation was less than about 7% over the
hundred runs", which :meth:`BarrierAggregate.relative_stddev_accesses`
lets tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.stats import RunningStats


@dataclass
class BarrierRunResult:
    """Outcome of one simulated barrier episode."""

    num_processors: int
    interval_a: int
    policy_name: str
    accesses_per_process: List[int] = field(default_factory=list)
    waiting_times: List[int] = field(default_factory=list)
    flag_set_time: Optional[int] = None
    completion_time: int = 0
    variable_accesses: int = 0
    flag_accesses: int = 0
    queued_processes: int = 0
    #: Processors that exhausted their degraded-mode poll budget or
    #: timeout and departed without observing the release (a
    #: partial-arrival outcome; empty under the paper's semantics).
    timed_out: List[int] = field(default_factory=list)

    @property
    def mean_accesses(self) -> float:
        if not self.accesses_per_process:
            return 0.0
        return sum(self.accesses_per_process) / len(self.accesses_per_process)

    @property
    def mean_waiting_time(self) -> float:
        if not self.waiting_times:
            return 0.0
        return sum(self.waiting_times) / len(self.waiting_times)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses_per_process)

    @property
    def max_waiting_time(self) -> int:
        return max(self.waiting_times) if self.waiting_times else 0

    @property
    def degraded(self) -> bool:
        """True if any processor departed without seeing the release."""
        return bool(self.timed_out)

    def waiting_percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of per-process waiting times.

        Overshoot shows up in the tail: at A=1000 with a large backoff
        base, the p95 wait can sit several times above the median.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self.waiting_times:
            return 0.0
        ordered = sorted(self.waiting_times)
        index = min(int(round(q / 100.0 * (len(ordered) - 1))), len(ordered) - 1)
        return float(ordered[index])


@dataclass(frozen=True)
class EpisodeSummary:
    """The five numbers one episode contributes to a BarrierAggregate.

    This is the unit of work exchanged with :mod:`repro.exec` pool
    workers and stored in the result cache: a worker simulates a shard
    of repetitions and returns one summary per episode, and the parent
    replays them — in repetition order — through
    :meth:`BarrierAggregate.add_summary`.  Because the replay performs
    the *same* float additions in the *same* order as
    :meth:`BarrierAggregate.add_run` does on the serial path, the
    resulting aggregate is bit-identical regardless of how the shards
    were distributed.  All fields survive a JSON round-trip exactly
    (Python serialises floats via repr).
    """

    mean_accesses: float
    mean_waiting_time: float
    waiting_p95: float
    queued_processes: int
    timed_out: int

    @classmethod
    def from_run(cls, run: BarrierRunResult) -> "EpisodeSummary":
        return cls(
            mean_accesses=run.mean_accesses,
            mean_waiting_time=run.mean_waiting_time,
            waiting_p95=run.waiting_percentile(95.0),
            queued_processes=run.queued_processes,
            timed_out=len(run.timed_out),
        )

    def as_tuple(self) -> Tuple[float, float, float, int, int]:
        return (
            self.mean_accesses,
            self.mean_waiting_time,
            self.waiting_p95,
            self.queued_processes,
            self.timed_out,
        )

    @classmethod
    def from_tuple(cls, values: Sequence) -> "EpisodeSummary":
        accesses, waiting, p95, queued, timed_out = values
        return cls(
            mean_accesses=float(accesses),
            mean_waiting_time=float(waiting),
            waiting_p95=float(p95),
            queued_processes=int(queued),
            timed_out=int(timed_out),
        )


@dataclass
class BarrierAggregate:
    """Aggregate of repeated runs at one (N, A, policy) point."""

    num_processors: int
    interval_a: int
    policy_name: str
    accesses: RunningStats = field(default_factory=RunningStats)
    waiting: RunningStats = field(default_factory=RunningStats)
    waiting_p95: RunningStats = field(default_factory=RunningStats)
    queued: RunningStats = field(default_factory=RunningStats)
    #: Episodes with at least one partial arrival (degraded mode).
    degraded_runs: int = 0
    #: Total processors that timed out across all episodes.
    timed_out_processes: int = 0

    def add_run(self, run: BarrierRunResult) -> None:
        if run.num_processors != self.num_processors:
            raise ValueError("run has a different processor count")
        self.add_summary(EpisodeSummary.from_run(run))

    def add_summary(self, summary: EpisodeSummary) -> None:
        """Fold one episode's summary in (same arithmetic as add_run)."""
        self.accesses.add(summary.mean_accesses)
        self.waiting.add(summary.mean_waiting_time)
        self.waiting_p95.add(summary.waiting_p95)
        self.queued.add(summary.queued_processes)
        if summary.timed_out:
            self.degraded_runs += 1
            self.timed_out_processes += summary.timed_out

    @property
    def repetitions(self) -> int:
        return self.accesses.count

    @property
    def mean_accesses(self) -> float:
        return self.accesses.mean

    @property
    def mean_waiting_time(self) -> float:
        return self.waiting.mean

    @property
    def mean_waiting_p95(self) -> float:
        """Mean 95th-percentile waiting time across repetitions."""
        return self.waiting_p95.mean

    @property
    def relative_stddev_accesses(self) -> float:
        """Relative sigma across repetitions (paper verifies < ~7%)."""
        return self.accesses.relative_stddev

    def savings_vs(self, baseline: "BarrierAggregate") -> float:
        """Fractional reduction in accesses relative to ``baseline``."""
        if baseline.mean_accesses == 0:
            return 0.0
        return 1.0 - self.mean_accesses / baseline.mean_accesses

    def waiting_increase_vs(self, baseline: "BarrierAggregate") -> float:
        """Fractional increase in waiting time relative to ``baseline``."""
        if baseline.mean_waiting_time == 0:
            return 0.0
        return self.mean_waiting_time / baseline.mean_waiting_time - 1.0


def aggregate_from_summaries(
    num_processors: int,
    interval_a: int,
    policy_name: str,
    summaries: Iterable[EpisodeSummary],
) -> BarrierAggregate:
    """Rebuild an aggregate by replaying episode summaries in order.

    The summaries must be ordered by repetition index; the replay then
    reproduces the serial path's accumulator state bit-for-bit.
    """
    aggregate = BarrierAggregate(
        num_processors=num_processors,
        interval_a=interval_a,
        policy_name=policy_name,
    )
    for summary in summaries:
        aggregate.add_summary(summary)
    return aggregate
