"""Parameter sweeps behind Figures 4 through 10.

The paper evaluates N in {2, 4, ..., 512} for A in {0, 100, 1000}
under five policies (no backoff; backoff on the barrier variable;
exponential backoff on the flag with bases 2, 4 and 8 — flag backoff
always includes variable backoff), reporting network accesses per
process (Figures 4-7) and waiting time per process (Figures 8-10).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.barrier.metrics import BarrierAggregate
from repro.barrier.simulator import simulate_barrier
from repro.core.backoff import BackoffPolicy, paper_policies
from repro.exec.plan import resolve_exec_config  # noqa: F401  (re-export)
from repro.faults.plan import get_fault_plan
from repro.sim.stats import Series

#: The processor counts of Figures 4-10.
PAPER_N_VALUES = (2, 4, 8, 16, 32, 64, 128, 256, 512)

#: The arrival intervals of Figures 4-10.
PAPER_A_VALUES = (0, 100, 1000)


def sweep(
    n_values: Sequence[int],
    interval_a: int,
    policies: Optional[Mapping[str, BackoffPolicy]] = None,
    repetitions: int = 100,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, List[BarrierAggregate]]:
    """Simulate every (policy, N) point at one arrival interval A.

    With an active exec config — ambient (CLI ``--jobs``/``--cache``)
    or given explicitly via ``jobs``/``cache``/``cache_dir`` — all
    (policy, N) points are submitted to the exec engine in one batch,
    which fans both the points and their repetition shards across the
    worker pool and consults the result cache, with output bit-identical
    to the serial loop.  An installed fault plan forces the serial path
    (plans are process-global and episode-ordered).  ``backend`` picks
    the episode engine per :mod:`repro.barrier.backend`; results are
    bit-identical across backends.

    Returns:
        ``{policy_label: [BarrierAggregate per N, in n_values order]}``.
    """
    if policies is None:
        policies = paper_policies()
    config = resolve_exec_config(jobs, cache, cache_dir)
    if config.active and get_fault_plan() is None:
        from repro.exec.engine import PointSpec, execute_barrier_points

        specs = [
            PointSpec(
                num_processors=n,
                interval_a=interval_a,
                policy=policy,
                repetitions=repetitions,
                seed=seed,
                backend=backend,
            )
            for policy in policies.values()
            for n in n_values
        ]
        aggregates = execute_barrier_points(specs, config)
        width = len(list(n_values))
        return {
            label: aggregates[row * width : (row + 1) * width]
            for row, label in enumerate(policies)
        }
    results: Dict[str, List[BarrierAggregate]] = {}
    for label, policy in policies.items():
        points = []
        for n in n_values:
            points.append(
                simulate_barrier(
                    n, interval_a, policy, repetitions=repetitions, seed=seed,
                    backend=backend,
                )
            )
        results[label] = points
    return results


def sweep_tree(
    n_values: Sequence[int],
    interval_a: int,
    policies: Optional[Mapping[str, BackoffPolicy]] = None,
    degree: int = 4,
    repetitions: int = 100,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    poll_budget: Optional[int] = None,
    timeout_cycles: Optional[int] = None,
) -> Dict[str, List[BarrierAggregate]]:
    """Simulate every (policy, N) combining-tree point at one interval A.

    The tree analogue of :func:`sweep`: with an active exec config the
    (policy, N) points are batched through the exec engine (worker
    pool, result cache, vectorized tree kernel per
    :mod:`repro.barrier.backend`), bit-identical to the serial loop.

    Returns:
        ``{policy_label: [BarrierAggregate per N, in n_values order]}``
        where each aggregate's label is ``tree-{degree}/{policy}``.
    """
    if policies is None:
        policies = paper_policies()
    config = resolve_exec_config(jobs, cache, cache_dir)
    if config.active and get_fault_plan() is None:
        from repro.exec.engine import PointSpec, execute_barrier_points

        specs = [
            PointSpec(
                num_processors=n,
                interval_a=interval_a,
                policy=policy,
                repetitions=repetitions,
                seed=seed,
                backend=backend,
                tree_degree=degree,
                poll_budget=poll_budget,
                timeout_cycles=timeout_cycles,
            )
            for policy in policies.values()
            for n in n_values
        ]
        aggregates = execute_barrier_points(specs, config)
        width = len(list(n_values))
        return {
            label: aggregates[row * width : (row + 1) * width]
            for row, label in enumerate(policies)
        }
    from repro.barrier.tree import simulate_tree_barrier

    results: Dict[str, List[BarrierAggregate]] = {}
    for label, policy in policies.items():
        points = []
        for n in n_values:
            points.append(
                simulate_tree_barrier(
                    n, interval_a, degree=degree, policy=policy,
                    repetitions=repetitions, seed=seed, backend=backend,
                    poll_budget=poll_budget, timeout_cycles=timeout_cycles,
                )
            )
        results[label] = points
    return results


def _to_series(
    results: Mapping[str, List[BarrierAggregate]], metric: str
) -> Dict[str, Series]:
    series: Dict[str, Series] = {}
    for label, points in results.items():
        curve = Series(label=label)
        for point in points:
            curve.add(point.num_processors, getattr(point, metric))
        series[label] = curve
    return series


def sweep_accesses(
    n_values: Sequence[int] = PAPER_N_VALUES,
    interval_a: int = 0,
    policies: Optional[Mapping[str, BackoffPolicy]] = None,
    repetitions: int = 100,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, Series]:
    """Network accesses per process vs N (Figures 4-7 curves)."""
    results = sweep(
        n_values, interval_a, policies, repetitions, seed,
        jobs=jobs, cache=cache, cache_dir=cache_dir, backend=backend,
    )
    return _to_series(results, "mean_accesses")


def sweep_waiting_time(
    n_values: Sequence[int] = PAPER_N_VALUES,
    interval_a: int = 0,
    policies: Optional[Mapping[str, BackoffPolicy]] = None,
    repetitions: int = 100,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, Series]:
    """Waiting time per process vs N (Figures 8-10 curves)."""
    results = sweep(
        n_values, interval_a, policies, repetitions, seed,
        jobs=jobs, cache=cache, cache_dir=cache_dir, backend=backend,
    )
    return _to_series(results, "mean_waiting_time")


def sweep_interval(
    n: int,
    a_values: Sequence[int],
    policies: Optional[Mapping[str, BackoffPolicy]] = None,
    repetitions: int = 100,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Dict[str, Series]:
    """Network accesses vs the arrival interval A at fixed N.

    The complement of the figures' N-sweeps: shows where each policy's
    savings switch on as A grows past N (the crossover the paper's
    summary describes).
    """
    if policies is None:
        policies = paper_policies()
    series: Dict[str, Series] = {}
    for label, policy in policies.items():
        curve = Series(label=label)
        for interval_a in a_values:
            point = simulate_barrier(
                n, interval_a, policy, repetitions=repetitions, seed=seed,
                backend=backend,
            )
            curve.add(interval_a, point.mean_accesses)
        series[label] = curve
    return series


def sweep_both(
    n_values: Sequence[int] = PAPER_N_VALUES,
    interval_a: int = 0,
    policies: Optional[Mapping[str, BackoffPolicy]] = None,
    repetitions: int = 100,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, Dict[str, Series]]:
    """One simulation pass yielding both metrics (no duplicated work)."""
    results = sweep(
        n_values, interval_a, policies, repetitions, seed,
        jobs=jobs, cache=cache, cache_dir=cache_dir, backend=backend,
    )
    return {
        "accesses": _to_series(results, "mean_accesses"),
        "waiting": _to_series(results, "mean_waiting_time"),
    }
