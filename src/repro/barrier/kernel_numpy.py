"""Vectorized episode kernel: all episodes of a shard as numpy arrays.

The reference event loop (:meth:`repro.barrier.simulator
.BarrierSimulator.run_once`) pops one ``(time, seq, cpu, kind)`` event
at a time off a heap.  This kernel reproduces the *same* pop order —
and therefore bit-identical episode summaries — while processing whole
batches of events across every episode of a shard at once:

**Batched draws and episode dedup.**  Uniform arrival draws happen
directly in numpy — the same generator stream and the same
``integers`` call as the event loop, sorted as an array — and because
an episode summary is a pure function of its arrival vector (each
repetition's stream is spent on the draw), duplicate arrival rows
simulate once and fan back out, collapsing e.g. every ``A == 0``
repetition to a single row.

**Variable phase, closed form.**  Arrival processes draw sorted times,
so the barrier-variable events pop in arrival order and the variable
module's grants collapse to a prefix recurrence: with sorted arrivals
``a_i`` the i-th grant is ``g_i = i + max_{j<=i}(a_j - j)`` (a running
maximum), the fetch&add cost is ``g_i - a_i + 1``, the i-th arrival
reads value ``i + 1``, and the last arrival's flag write is presented
at ``g_{n-1} + 1``.

**Flag phase, closed form (unit waits).**  For the no-backoff regime —
every retry wait exactly one cycle, no degraded-mode bounds, strictly
increasing first polls all before the write — the whole flag phase
also collapses: the module serves one request per cycle from the
first poll to the last release, so total cost, the flag-set time, and
every per-poller wait follow from the first-service cycles alone (see
:func:`_unit_wait_closed_form`).  This covers the paper's figure-4
family without running any rounds; everything below is the general
path.

**Flag phase, guarded batches.**  Each processor owns at most one
pending flag event, so an episode's pending set fits one array row,
kept sorted by ``(ready, tie key)`` — the heap's pop order — and only
re-sorted when an update actually disturbed a row.  Each round the
kernel serves the longest prefix for which no failed poll's retry
would overtake a later pending event (a retry at a strictly earlier
time always pops first; at equal times a pending first poll or write
is deferred one round so the tie resolves through the full sort),
computes the batch grants with the same prefix recurrence, and defers
the rest.

**Tie keys.**  The heap breaks time ties by push order (``seq``).  A
pending flag event's seq is determined by its *parent* pop — the
variable event that scheduled the first poll, or the failed poll that
scheduled the retry — so each event carries the parent pop time plus a
packed word ``kind << 41 | is_write << 40 | index`` (variable parents:
arrival slot; flag parents: a per-episode pop counter).  Variable pops
beat flag pops at equal times because their heap seqs (0..n-1) are
smaller than any flag event's, and the write's slot ``n - 1`` is the
largest variable seq, which is exactly what the packed word encodes.

**Exact fast-forwarding.**  Two accelerators skip rounds without
changing a single pop, keeping the kernel fast where the event loop
degenerates into thousands of polls:

- *Dense wait-1 skip*: when every served event is a failing poll with
  unit retry wait and the batch's grants are consecutive, the module
  is saturated and the next rounds repeat the same round-robin one
  cycle later each — the kernel jumps ``M`` rounds in closed form,
  stopping short of the first deferred event's ready time.
- *Lone-poller skip*: when one poller and the unwritten flag write are
  the only live events, the poller's retry trajectory is the running
  sum of the memoized wait table; a ``searchsorted`` against that
  cumulative sum advances it to just before the write in one step.

The kernel refuses — :class:`KernelUnsupported`, and the caller falls
back to the reference loop — whenever the configuration's semantics
are owned by that loop: an enabled tracer (per-event emission), an
installed fault plan, the single-variable barrier (variable and flag
share one module, so the closed-form variable phase does not apply),
stateful policies (draw order *is* their semantics), or an arrival
process that returns unsorted times.  ``docs/vectorization.md`` is the
written contract for all of this.
"""

from __future__ import annotations

import math
from typing import List, Optional

try:  # pragma: no cover - exercised via backend.numpy_available()
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.barrier.arrivals import UniformArrivals
from repro.barrier.metrics import EpisodeSummary
from repro.faults.plan import get_fault_plan
from repro.obs.tracer import get_tracer
from repro.sim.rng import derive_seed, spawn_stream

#: Sentinel "time" for departed processors / absent retries; far above
#: any reachable cycle count but with headroom for int64 arithmetic.
_SENTINEL = 1 << 62

#: Waits at or above this bound fall back to the event loop rather than
#: risk int64 overflow in the batched time arithmetic (the built-in
#: policies cap waits at ``1 << 20``).
_MAX_WAIT = 1 << 40

#: Packed tie-word bits: bit 41 = flag-pop parent (heap seqs above all
#: variable pops), bit 40 = the flag write (slot n-1, the largest
#: variable seq), low bits = parent pop index.
_KIND_BIT = 1 << 41
_WRITE_BIT = 1 << 40

#: Caps on how far the accelerators grow the wait table in one step.
_MAX_SKIP = 1 << 20
_TABLE_CAP = 1 << 20


class KernelUnsupported(Exception):
    """The configuration's semantics require the reference event loop."""


def unsupported_reason(simulator) -> Optional[str]:
    """Why this simulator cannot run vectorized (None when it can)."""
    if np is None:
        return "numpy is not importable"
    if get_tracer().enabled:
        return "tracing enabled (per-event streams belong to the event loop)"
    if get_fault_plan() is not None:
        return "fault plan installed (plans are episode-ordered)"
    if not simulator.barrier.separate_modules:
        return "single-variable barrier (variable and flag share a module)"
    if getattr(simulator.barrier.backoff, "stateful", False):
        return "stateful policy (draw order is part of its semantics)"
    return None


class _FlagWaitTable:
    """Memoized ``max(policy.flag_wait(k), 1)`` lookups as an array.

    Alongside the raw table it maintains the running sum (a poller's
    retry trajectory, for the lone-poller skip) and the length of the
    leading all-ones prefix (eligibility for the dense wait-1 skip).
    """

    def __init__(self, policy) -> None:
        self._policy = policy
        self._values = [0]  # index 0 unused: polls are counted from 1
        self._ones = 0
        self._ones_capped = False
        self._array = None
        self._cum = None

    def ensure(self, polls: int) -> None:
        if self._array is not None and polls < len(self._values):
            return
        while len(self._values) <= polls:
            wait = max(self._policy.flag_wait(len(self._values)), 1)
            if wait >= _MAX_WAIT:
                raise KernelUnsupported(
                    f"flag wait {wait} exceeds the vectorized bound"
                )
            self._values.append(wait)
        self._array = np.asarray(self._values, dtype=np.int64)
        self._cum = np.cumsum(self._array)
        while not self._ones_capped and self._ones + 1 < len(self._values):
            if self._values[self._ones + 1] != 1:
                self._ones_capped = True
            else:
                self._ones += 1

    def ensure_ones(self, target: int) -> None:
        """Extend until the all-ones prefix covers ``target`` (or caps)."""
        while not self._ones_capped and self._ones < target:
            self.ensure(min(max(2 * len(self._values), 64), target + 1))

    def ensure_cumsum(self, total: int) -> None:
        """Extend until the running sum reaches ``total`` (or caps)."""
        while int(self._cum[-1]) < total and len(self._values) < _TABLE_CAP:
            self.ensure(min(2 * len(self._values), _TABLE_CAP))

    @property
    def array(self):
        return self._array

    @property
    def cumsum(self):
        return self._cum

    @property
    def ones_prefix(self) -> int:
        return self._ones


def shard_summaries(
    simulator, rep_start: int, rep_stop: int
) -> List[EpisodeSummary]:
    """Simulate repetitions ``[rep_start, rep_stop)`` as one batch.

    Bit-identical to ``[EpisodeSummary.from_run(simulator.run_once(...))
    for each rep]`` for every configuration it accepts; raises
    :class:`KernelUnsupported` otherwise.
    """
    reason = unsupported_reason(simulator)
    if reason is not None:
        raise KernelUnsupported(reason)

    n = simulator.barrier.num_processors
    policy = simulator.barrier.backoff
    poll_budget = simulator.barrier.poll_budget
    timeout_cycles = simulator.barrier.timeout_cycles
    bounds_active = poll_budget is not None or timeout_cycles is not None
    episodes = range(rep_start, rep_stop)
    total_rows = len(episodes)
    if total_rows == 0:
        return []

    # Arrival draws are value-equal to the event loop's: each repetition
    # draws from its own derived stream (``barrier-rep-<rep>``), and that
    # stream serves no other purpose, so only the drawn values matter.
    # The uniform process is drawn directly — the same Generator stream
    # (``Generator(PCG64(seed))`` and ``default_rng(seed)`` are the same
    # construction) and the same ``integers`` call, sorted in numpy
    # instead of Python — and an A == 0 draw is ``[0] * n`` with no
    # randomness at all.  Other processes go through their own ``draw``.
    if isinstance(simulator.arrivals, UniformArrivals):
        interval = simulator.arrivals.interval
        arrivals = np.zeros((total_rows, n), dtype=np.int64)
        if interval:
            for i, rep in enumerate(episodes):
                rng = np.random.Generator(np.random.PCG64(
                    derive_seed(simulator.seed, f"barrier-rep-{rep}")
                ))
                arrivals[i] = rng.integers(0, interval + 1, size=n)
            arrivals.sort(axis=1)
    else:
        drawn = []
        for rep in episodes:
            rng = spawn_stream(simulator.seed, f"barrier-rep-{rep}")
            drawn.append(
                [int(when) for when in simulator.arrivals.draw(n, rng)]
            )
        arrivals = np.asarray(drawn, dtype=np.int64)
        if n > 1 and bool(np.any(arrivals[:, 1:] < arrivals[:, :-1])):
            raise KernelUnsupported("arrival process returned unsorted times")

    # An episode summary is a pure function of the arrival vector (the
    # per-rep stream is spent on the draw), so duplicate rows — every
    # row when A == 0 — simulate once and fan back out at the end.
    # The unique pass itself costs a few ms on a paper-scale shard, so
    # only look for duplicates where they are plausible: a degenerate
    # draw (every row identical, e.g. A == 0 or fixed arrivals) found
    # by a cheap comparison, or a draw space small enough
    # ((A + 1) ** n below ~2^40) for birthday collisions to matter.
    row_of = None
    if total_rows > 1:
        if not bool(np.any(arrivals[1:] != arrivals[:1])):
            arrivals = arrivals[:1]
            row_of = np.zeros(total_rows, dtype=np.intp)
        elif n * math.log2(float(arrivals.max()) + 2.0) < 40.0:
            uniq, inverse = np.unique(arrivals, axis=0, return_inverse=True)
            if uniq.shape[0] < total_rows:
                arrivals = uniq
                row_of = inverse.reshape(-1)
    work_rows = arrivals.shape[0]

    # Per-slot first-poll waits: slot i (the i-th arrival) reads value
    # i + 1, and waits max(variable_wait(i + 1, n), 1) before poll 1.
    wait_var = np.asarray(
        [max(policy.variable_wait(i + 1, n), 1) for i in range(max(n - 1, 0))],
        dtype=np.int64,
    )
    if wait_var.size and int(wait_var.max()) >= _MAX_WAIT:
        raise KernelUnsupported("variable wait exceeds the vectorized bound")
    flag_waits = _FlagWaitTable(policy)
    flag_waits.ensure(1)

    pos = np.arange(n, dtype=np.int64)
    # Variable phase (closed form, see module docstring).
    grant_var = pos + np.maximum.accumulate(arrivals - pos, axis=1)
    acc_total = (grant_var - arrivals + 1).sum(axis=1)

    # Unbounded unit-wait configurations (no-backoff polling) admit a
    # closed form for the whole flag phase — no rounds at all.
    if not bounds_active and n >= 2:
        fast = _unit_wait_closed_form(
            n, grant_var, arrivals, wait_var, acc_total, flag_waits
        )
        if fast is not None:
            acc_fast, waiting_fast = fast
            return _assemble(
                n,
                total_rows,
                row_of,
                acc_fast,
                waiting_fast,
                np.zeros(work_rows, dtype=np.int64),
            )

    # Pending flag event per slot.  Slot n-1 is the last arrival: its
    # pending event is the flag *write*, presented one cycle after its
    # fetch&add grant.  From here on the rows are event lists in pop
    # order, permuted in place whenever an update disturbs a row.
    ready = np.empty((work_rows, n), dtype=np.int64)
    if n > 1:
        ready[:, : n - 1] = grant_var[:, : n - 1] + wait_var[None, :]
    ready[:, n - 1] = grant_var[:, n - 1] + 1
    tie_time = arrivals.copy()  # parent pop time (var events: arrival)
    tie_word = np.broadcast_to(pos, (work_rows, n)).copy()
    tie_word[:, n - 1] += _WRITE_BIT
    polls = np.zeros((work_rows, n), dtype=np.int32)
    arr_ev = arrivals  # permuted alongside the events from here on

    flag_next_free = np.zeros(work_rows, dtype=np.int64)
    flag_set = np.full(work_rows, _SENTINEL, dtype=np.int64)  # unset
    flag_pops = np.zeros(work_rows, dtype=np.int64)
    timed_out = np.zeros(work_rows, dtype=np.int64)
    waiting_work = np.zeros((work_rows, n), dtype=np.int64)
    wait_fill = np.zeros(work_rows, dtype=np.int64)
    episode_id = np.arange(work_rows)

    # Finished rows drain into fixed buffers indexed by episode id, so
    # the working arrays can be compacted as episodes complete.
    acc_final = np.zeros(work_rows, dtype=np.int64)
    timeout_final = np.zeros(work_rows, dtype=np.int64)
    waiting_final = np.zeros((work_rows, n), dtype=np.int64)

    def finalize(mask) -> None:
        ids = episode_id[mask]
        acc_final[ids] = acc_total[mask]
        timeout_final[ids] = timed_out[mask]
        waiting_final[ids] = waiting_work[mask]

    # Per-round column chunk: serving a shorter prefix than the guard
    # allows is still exact (deferral is conservative), so the round
    # body runs on `chunk` columns sized to the recent batches instead
    # of the whole row.  `touched` bounds where updates may have
    # disturbed the order since the last round's maintenance.
    chunk = min(n, 64)
    touched = n
    while True:
        rows = ready.shape[0]
        row_ix = np.arange(rows)

        # -- sort maintenance: only the first `touched` columns were
        # disturbed since the last round, so a sort of that window is
        # enough for any row whose window values all stay strictly
        # below the first value beyond it; the rare row whose retries
        # must travel past the boundary gets a full-width sort.  Each
        # sort is one stable lexsort over (ready, parent time, tie
        # word) — the heap's exact pop order, so ties need no separate
        # repair pass.  Clean rows cost two sliced comparisons.
        if n > 1:
            c_end = min(touched + 2, n)
            window = ready[:, :c_end]
            left = window[:, :-1]
            right = window[:, 1:]
            dirty = (
                (right < left) | ((right == left) & (right < _SENTINEL))
            ).any(axis=1)
            if c_end < n:
                # A live tie run crossing the window boundary must be
                # ordered full-width, and a window value at or above
                # the boundary value must travel past it: both take the
                # deep (full-width) path.
                boundary_tie = (ready[:, c_end - 1] == ready[:, c_end]) & (
                    ready[:, c_end] < _SENTINEL
                )
                fits = (window.max(axis=1) < ready[:, c_end]) & ~boundary_tie
                win_rows = dirty & fits
                deep_rows = (dirty & ~fits) | boundary_tie
            else:
                win_rows = dirty
                deep_rows = None
            n_win = int(np.count_nonzero(win_rows))
            if 2 * n_win >= rows:
                # Window-sort every row: a no-op for ordered rows,
                # superseded below for the deep rows.
                order = np.lexsort(
                    (tie_word[:, :c_end], tie_time[:, :c_end], window),
                    axis=1,
                )
                for arr in (ready, tie_time, tie_word, polls, arr_ev):
                    arr[:, :c_end] = np.take_along_axis(
                        arr[:, :c_end], order, axis=1
                    )
            elif n_win:
                ids = np.nonzero(win_rows)[0]
                order = np.lexsort(
                    (
                        tie_word[ids, :c_end],
                        tie_time[ids, :c_end],
                        ready[ids, :c_end],
                    ),
                    axis=1,
                )
                for arr in (ready, tie_time, tie_word, polls, arr_ev):
                    arr[ids, :c_end] = np.take_along_axis(
                        arr[ids, :c_end], order, axis=1
                    )
            if deep_rows is not None and bool(deep_rows.any()):
                ids = np.nonzero(deep_rows)[0]
                order = np.lexsort(
                    (tie_word[ids], tie_time[ids], ready[ids]), axis=1
                )
                for arr in (ready, tie_time, tie_word, polls, arr_ev):
                    arr[ids] = np.take_along_axis(arr[ids], order, axis=1)

        width = min(chunk, n)
        pos_c = pos[:width]
        r = ready[:, :width]  # view: all reads precede the writebacks
        act = r < _SENTINEL
        # Module grants: prefix recurrence with the carried next_free.
        g = np.maximum(
            pos_c + np.maximum.accumulate(r - pos_c, axis=1),
            flag_next_free[:, None] + pos_c,
        )

        word_c = tie_word[:, :width]
        is_w = ((word_c & _WRITE_BIT) != 0) & act
        # Polls at batch positions after the write see the flag set at
        # its grant; grants strictly increase, so they all release.
        after_w = np.logical_or.accumulate(is_w, axis=1)
        released = act & ~is_w & (after_w | (g > flag_set[:, None]))
        fail = act & ~is_w & ~released
        polls_new = polls[:, :width] + fail
        if bounds_active:
            give_up = np.zeros_like(fail)
            if poll_budget is not None:
                give_up |= fail & (polls_new >= poll_budget)
            if timeout_cycles is not None:
                give_up |= fail & (g - arr_ev[:, :width] >= timeout_cycles)
            retrying = fail & ~give_up
        else:
            retrying = fail

        flag_waits.ensure(int(polls_new.max()))
        retry_at = np.where(
            retrying, g + flag_waits.array[polls_new], _SENTINEL
        )

        # The batch is valid up to the first pending event that a retry
        # generated before it would overtake.  A retry at a strictly
        # earlier time always pops first.  At *equal* times the heap
        # seq decides: pending retries were pushed in an earlier round
        # and keep their place, but a pending first poll or write was
        # pushed by a *variable* pop that may postdate the retry's
        # parent — defer it conservatively; the next round's sort
        # orders the tie exactly.
        earliest = np.empty_like(retry_at)
        earliest[:, 0] = _SENTINEL
        if width > 1:
            np.minimum.accumulate(
                retry_at[:, :-1], axis=1, out=earliest[:, 1:]
            )
        from_var_pop = (word_c & _KIND_BIT) == 0
        violated = (r > earliest) | ((r == earliest) & from_var_pop)
        has_violation = violated.any(axis=1)
        batch_len = np.where(
            has_violation, np.argmax(violated, axis=1), width
        )
        serve = act & (pos_c < batch_len[:, None])
        done = serve & ~retrying  # released, timed out, or the write

        acc_total += np.sum(g - r + 1, axis=1, where=serve)
        if bounds_active:
            timed_out += np.sum(serve & give_up, axis=1)
        if bool(done.any()):
            ranks = np.cumsum(done, axis=1)
            d_row, d_col = np.nonzero(done)
            slot = wait_fill[d_row] + ranks[d_row, d_col] - 1
            waiting_work[d_row, slot] = (
                g[d_row, d_col] - arr_ev[d_row, d_col]
            )
            wait_fill += done.sum(axis=1)

        served_counts = serve.sum(axis=1)
        any_served = served_counts > 0
        last_grant = g[row_ix, np.maximum(served_counts - 1, 0)]
        flag_next_free = np.where(
            any_served, last_grant + 1, flag_next_free
        )
        write_served = is_w & serve
        ws_rows = write_served.any(axis=1)
        if bool(ws_rows.any()):
            g_w = np.max(np.where(write_served, g, -1), axis=1)
            flag_set = np.where(ws_rows, g_w, flag_set)

        # Accelerator inputs read before the writebacks clobber `r`.
        if not bounds_active:
            g_first = g[:, 0]
            r_next = r[row_ix, np.minimum(batch_len, width - 1)]

        # Served events sit at positions 0..count-1, so the per-episode
        # pop counter plus the position is the parent pop index.
        served_retry = serve & retrying
        new_ready = np.where(
            served_retry, retry_at, np.where(done, _SENTINEL, r)
        )
        new_tt = np.where(served_retry, r, tie_time[:, :width])
        new_word = np.where(
            served_retry, _KIND_BIT + flag_pops[:, None] + pos_c, word_c
        )
        new_polls = np.where(serve, polls_new, polls[:, :width])
        ready[:, :width] = new_ready
        tie_time[:, :width] = new_tt
        tie_word[:, :width] = new_word
        polls[:, :width] = new_polls
        flag_pops = flag_pops + served_counts

        if not bounds_active:
            # -- dense wait-1 skip (see module docstring).  Applies to
            # rows where the whole batch failed with unit retry waits
            # into a saturated module: the next rounds are the same
            # round-robin shifted one cycle, so jump M of them, staying
            # strictly clear of the first deferred event at r_next.
            cand = (flag_set == _SENTINEL) & any_served
            cand &= batch_len < width
            if bool(cand.any()):
                cand &= (last_grant - g_first) == (served_counts - 1)
                cand &= r_next < _SENTINEL
            if bool(cand.any()):
                k = np.maximum(served_counts, 1)
                skips = np.clip(
                    (r_next - last_grant - 2) // k, 0, _MAX_SKIP
                )
                max_polls = np.max(
                    polls_new, axis=1, where=serve, initial=0
                ).astype(np.int64)
                need = int(np.max(np.where(cand, max_polls + skips, 0)))
                flag_waits.ensure_ones(need)
                skips = np.minimum(
                    skips, flag_waits.ones_prefix - max_polls
                )
                cand &= skips >= 1
                if bool(cand.any()):
                    jump = np.where(cand, skips * k, 0)
                    batch = cand[:, None] & serve
                    ready[:, :width] = np.where(
                        batch, ready[:, :width] + jump[:, None],
                        ready[:, :width],
                    )
                    tie_time[:, :width] = np.where(
                        batch, ready[:, :width] - k[:, None],
                        tie_time[:, :width],
                    )
                    tie_word[:, :width] = np.where(
                        batch, tie_word[:, :width] + jump[:, None],
                        tie_word[:, :width],
                    )
                    polls[:, :width] = np.where(
                        batch,
                        polls[:, :width]
                        + np.where(cand, skips, 0).astype(np.int32)[:, None],
                        polls[:, :width],
                    )
                    acc_total += jump * k
                    flag_next_free = flag_next_free + jump
                    flag_pops = flag_pops + jump

            # -- lone-poller skip: one poller and the unwritten write
            # are the only live events — columns 0 and 1, since clean
            # rows keep live events in a sorted prefix — so the
            # poller's retries are the wait table's running sum:
            # advance it to just before the write in one searchsorted.
            cand2 = (flag_set == _SENTINEL) & (wait_fill == n - 2)
            if bool(cand2.any()):
                head = ready[:, :2]
                live2 = head < _SENTINEL
                cand2 &= live2.all(axis=1)
                w_mask = live2 & ((tie_word[:, :2] & _WRITE_BIT) != 0)
                p_mask = live2 & ~w_mask
                w_ready = np.max(np.where(w_mask, head, -1), axis=1)
                p_ready = np.max(np.where(p_mask, head, -1), axis=1)
                p_polls = np.max(
                    np.where(p_mask, polls[:, :2], 0), axis=1
                ).astype(np.int64)
                cand2 &= (p_ready >= flag_next_free) & (p_ready >= 0)
                cand2 &= p_ready < w_ready
            if bool(cand2.any()):
                cum = flag_waits.cumsum
                base = cum[np.minimum(p_polls, len(cum) - 1)]
                target = np.where(cand2, w_ready - p_ready + base, 0)
                flag_waits.ensure_cumsum(int(target.max()))
                cum = flag_waits.cumsum
                hops = np.searchsorted(cum, target) - p_polls
                hops = np.minimum(hops, len(cum) - 1 - p_polls)
                cand2 &= hops >= 1
                if bool(cand2.any()):
                    hops = np.where(cand2, hops, 0)
                    at = p_polls + hops
                    last = p_ready + cum[at - 1] - cum[p_polls]
                    nxt = p_ready + cum[at] - cum[p_polls]
                    batch2 = cand2[:, None] & p_mask
                    ready[:, :2] = np.where(batch2, nxt[:, None], head)
                    tie_time[:, :2] = np.where(
                        batch2, last[:, None], tie_time[:, :2]
                    )
                    tie_word[:, :2] = np.where(
                        batch2,
                        _KIND_BIT + (flag_pops + hops - 1)[:, None],
                        tie_word[:, :2],
                    )
                    polls[:, :2] = np.where(
                        batch2,
                        polls[:, :2] + hops.astype(np.int32)[:, None],
                        polls[:, :2],
                    )
                    acc_total += hops
                    flag_next_free = np.where(
                        cand2, last + 1, flag_next_free
                    )
                    flag_pops = flag_pops + hops

        top = int(batch_len.max()) if rows else 0
        touched = min(n, top + 2)
        chunk = min(n, max(16, 2 * top + 2))

        complete = wait_fill >= n
        finished = int(complete.sum())
        if finished == rows:
            finalize(complete)
            break
        if finished and rows >= 16 and (rows - finished) * 8 < rows * 5:
            finalize(complete)
            keep = ~complete
            ready = ready[keep]
            tie_time = tie_time[keep]
            tie_word = tie_word[keep]
            polls = polls[keep]
            arr_ev = arr_ev[keep]
            waiting_work = waiting_work[keep]
            wait_fill = wait_fill[keep]
            flag_next_free = flag_next_free[keep]
            flag_set = flag_set[keep]
            flag_pops = flag_pops[keep]
            acc_total = acc_total[keep]
            timed_out = timed_out[keep]
            episode_id = episode_id[keep]

    return _assemble(
        n, total_rows, row_of, acc_final, waiting_final, timeout_final
    )


def _assemble(n, total_rows, row_of, acc_final, waiting_final, timeout_final):
    """Episode summaries from the per-row totals (shared tail).

    Summary floats use the same int/int division the event loop does;
    deduplicated repetitions fan back out through ``row_of``.
    """
    waiting_total = waiting_final.sum(axis=1)
    waiting_sorted = np.sort(waiting_final, axis=1)
    # The exact index arithmetic of BarrierRunResult.waiting_percentile.
    p95_index = min(int(round(95.0 / 100.0 * (n - 1))), n - 1)
    p95 = waiting_sorted[:, p95_index]

    summaries = [
        EpisodeSummary(
            mean_accesses=int(acc_final[e]) / n,
            mean_waiting_time=int(waiting_total[e]) / n,
            waiting_p95=float(int(p95[e])),
            queued_processes=0,
            timed_out=int(timeout_final[e]),
        )
        for e in range(len(acc_final))
    ]
    if row_of is None:
        return summaries
    return [summaries[row_of[e]] for e in range(total_rows)]


def _unit_wait_closed_form(n, grant_var, arrivals, wait_var, acc_var,
                           flag_waits):
    """The flag phase in closed form for unbounded unit-wait polling.

    Applies when every flag retry wait is exactly one cycle (no-backoff
    polling, ``max(flag_wait(k), 1) == 1`` for every reachable k), there
    are no degraded-mode bounds, and each episode's first polls
    ``p_i = g_i + variable_wait`` are strictly increasing and all before
    the write's presentation ``W = g_{n-1} + 1``.  Then:

    - From ``p_0`` on, the flag module serves exactly one request per
      cycle until the last release: a served poller is ready again the
      next cycle, so the module never idles while a poller lives.
    - Poller ``j``'s initial poll is served at ``c_j = b_j - 1 +
      loss_j`` with ``b_0 = p_0 + 1`` and ``b_j = p_j + j``: at cycle
      ``p_j`` exactly ``j`` older instances are pending, ``j - 1`` of
      them strictly earlier and one recirculation tied at ready
      ``p_j``.  The tie breaks on push time — the initial carries its
      variable-pop time ``arrival_j``, the recirculation the ready
      ``r'`` of the event served at cycle ``p_j - 1`` (its parent) —
      so ``loss_j = [arrival_j > r']`` (exact ties go to the initial:
      variable words sort before flag words).
    - The write (ready ``W``, tie key the writer's variable-pop time)
      waits behind ``n - 2`` strictly-earlier recirculations and ties
      with the one created at cycle ``W - 1``:
      ``T_w = W + n - 2 + [r'(W - 1) < arrival_{n-1}]``.
    - Recirculations are consumed in creation order, so the pollers
      pending at ``T_w`` are exactly the ones served at cycles
      ``T_w - n + 1 .. T_w - 1``, with consecutive readies: releases
      land at cycles ``T_w + 1 .. T_w + n - 1`` in that same order.
    - Total flag cost sums in closed form, and per-poller waits need
      only the identity of the poller served at each of those last
      ``n - 1`` pre-write cycles.  That identity follows the recursion
      ``served(c) = served(c - F(c))`` — ``F(c)`` counts first services
      at or before ``c`` — resolved for all targets at once with
      geometric jumps (each iteration either resolves a target or
      crosses one ``F`` level).

    Returns ``(accesses, waits)`` per row, or None when the
    configuration does not qualify (the caller falls back to rounds).
    """
    m = n - 1
    p = grant_var[:, :m] + wait_var[None, :]
    w_ready = grant_var[:, n - 1] + 1
    if n > 2 and not bool(np.all(p[:, 1:] > p[:, :-1])):
        return None
    if not bool(np.all(p[:, m - 1] < w_ready)):
        return None
    p0 = p[:, 0]
    # Every retry wait up to the largest possible poll count must be 1
    # (conservative: the busiest poller is served at most once per cycle
    # from p0 through the last release <= W + 2n - 2).
    bound = int((w_ready + 2 * n - p0).max())
    if bound >= _TABLE_CAP:
        return None
    try:
        flag_waits.ensure_ones(bound)
    except KernelUnsupported:
        return None
    if flag_waits.ones_prefix < bound:
        return None

    rows = grant_var.shape[0]
    row_idx = np.arange(rows)

    # Base service cycles b_j (c_j = b_j - 1 + loss_j) and the tie
    # losses, resolved sequentially over j — loss_j only looks at
    # indices k < j (b_k <= p_j - 1 < b_j) — vectorized over rows via
    # one flat searchsorted per j (rows separated by a stride).
    b = p.copy()
    b[:, 0] += 1
    if m > 1:
        b[:, 1:] += np.arange(1, m, dtype=np.int64)[None, :]
    loss = np.zeros((rows, m), dtype=np.int64)
    stride_b = max(int(b.max()), int(w_ready.max())) + 2
    base_b = row_idx.astype(np.int64) * stride_b
    b_flat = (b + base_b[:, None]).ravel()

    def parent_ready(x):
        # Ready time of the event served at cycle x (per row, x >= p0).
        # If that cycle is a first service c_k, the ready is p_k; else
        # it is a recirculation whose poller was previously served
        # F(x) cycles earlier, so its ready is x - F(x) + 1 with
        # F(x) = #{c_k <= x} = #{b_k <= x} + [b_k == x + 1, loss_k == 0].
        cnt = np.searchsorted(b_flat, x + base_b, side="right") - row_idx * m
        k1 = np.maximum(cnt - 1, 0)
        first1 = (cnt > 0) & (b[row_idx, k1] == x) & (loss[row_idx, k1] == 1)
        k2 = np.minimum(cnt, m - 1)
        first0 = (
            (cnt < m)
            & (b[row_idx, k2] == x + 1)
            & (loss[row_idx, k2] == 0)
        )
        r_prime = x + 1 - (cnt + first0.astype(np.int64))
        r_prime = np.where(first1, p[row_idx, k1], r_prime)
        r_prime = np.where(first0, p[row_idx, k2], r_prime)
        return r_prime

    # Resolve every loss_j at once: the counts and boundary candidates
    # (a b_k equal to p_j - 1 or p_j) never depend on losses, so only
    # pairs with a candidate need its loss value — resolved in rounds,
    # each round settling every pair whose candidates are settled.  The
    # smallest unsettled j always qualifies (candidates sit below j),
    # and in practice chains halve (candidate k has b_k ~ 2k near
    # p_j ~ j), so the rounds are logarithmic, not linear.
    if m > 1:
        rows2 = row_idx[:, None]
        x_all = p[:, 1:] - 1
        cnt = (
            np.searchsorted(
                b_flat, (x_all + base_b[:, None]).ravel(), side="right"
            ).reshape(rows, m - 1)
            - (row_idx * m)[:, None]
        )
        k1 = np.maximum(cnt - 1, 0)
        has1 = (cnt > 0) & (b[rows2, k1] == x_all)
        k2 = np.minimum(cnt, m - 1)
        has2 = (cnt < m) & (b[rows2, k2] == x_all + 1)
        arr_j = arrivals[:, 1:m]
        nodep = ~(has1 | has2)
        loss[:, 1:][nodep] = (arr_j > x_all + 1 - cnt)[nodep]
        settled = np.zeros((rows, m), dtype=bool)
        settled[:, 0] = True
        settled[:, 1:][nodep] = True
        settled_flat = settled.ravel()
        loss_flat = loss.ravel()
        # The unsettled pairs, compressed to flat per-pair arrays so
        # each round costs only the remaining work.
        pr, pc = np.nonzero(~nodep)
        f_tgt = pr * m + pc + 1
        f_k1 = pr * m + k1[pr, pc]
        f_k2 = pr * m + k2[pr, pc]
        f_has1 = has1[pr, pc]
        f_has2 = has2[pr, pc]
        f_base = x_all[pr, pc] + 1 - cnt[pr, pc]
        f_arr = arr_j[pr, pc]
        f_p1 = p[pr, k1[pr, pc]]
        f_p2 = p[pr, k2[pr, pc]]
        while f_tgt.size:
            ready_now = (~f_has1 | settled_flat[f_k1]) & (
                ~f_has2 | settled_flat[f_k2]
            )
            r = np.nonzero(ready_now)[0]
            first1 = f_has1[r] & (loss_flat[f_k1[r]] == 1)
            first0 = f_has2[r] & (loss_flat[f_k2[r]] == 0)
            r_prime = np.where(
                first1,
                f_p1[r],
                np.where(
                    first0,
                    f_p2[r],
                    f_base[r] - first0.astype(np.int64),
                ),
            )
            loss_flat[f_tgt[r]] = f_arr[r] > r_prime
            settled_flat[f_tgt[r]] = True
            keep = ~ready_now
            f_tgt = f_tgt[keep]
            f_k1 = f_k1[keep]
            f_k2 = f_k2[keep]
            f_has1 = f_has1[keep]
            f_has2 = f_has2[keep]
            f_base = f_base[keep]
            f_arr = f_arr[keep]
            f_p1 = f_p1[keep]
            f_p2 = f_p2[keep]

    extra = parent_ready(w_ready - 1) < arrivals[:, n - 1]
    t_w = w_ready + n - 2 + extra.astype(np.int64)

    last = t_w + n - 1  # final release grant
    serves = last - p0 + 1
    sum_grants = (p0 + last) * (last - p0 + 1) // 2
    # Ready times: the first polls, one recirculation per poll-serving
    # cycle (ready c + 1 for c in [p0, t_w - 1]), and the write at W.
    sum_ready = (
        p.sum(axis=1) + (p0 + 1 + t_w) * (t_w - p0) // 2 + w_ready
    )
    accesses = acc_var + sum_grants - sum_ready + serves

    waits = np.empty((rows, n), dtype=np.int64)
    waits[:, n - 1] = t_w - arrivals[:, n - 1]

    # Who is released r-th: the poller served at window cycle
    # T0 + r, T0 = t_w - (n - 1).  Each window cycle serves a distinct
    # poller (their recirculations are the n - 1 instances pending at
    # the write), so a poller whose FIRST service falls in the window
    # places directly at rank c_j - T0.  Every other rank follows the
    # recursion ``served(c) = served(c - F(c))`` — ``F(c)`` counts
    # first services at or before ``c`` — resolved for all remaining
    # targets at once with geometric jumps (each iteration either
    # resolves a target or crosses one ``F`` level).
    arange_m = np.arange(m, dtype=np.int64)
    rows2m = row_idx[:, None]
    c_all = b - 1 + loss  # first-service cycles, strictly increasing
    t0_win = t_w - m
    stride_c = int(t_w.max()) + 2
    base_c = row_idx.astype(np.int64) * stride_c
    c_flat = (c_all + base_c[:, None]).ravel()
    j_lo = (
        np.searchsorted(c_flat, t0_win + base_c, side="left") - row_idx * m
    )
    poller_at = np.empty((rows, m), dtype=np.int64)
    taken = np.zeros((rows, m), dtype=bool)
    rs, js = np.nonzero(arange_m[None, :] >= j_lo[:, None])
    rank_direct = c_all[rs, js] - t0_win[rs]
    taken[rs, rank_direct] = True
    poller_at[rs, rank_direct] = js
    rs2, free_rank = np.nonzero(~taken)
    cycle = t0_win[rs2] + free_rank
    block = rs2 * m
    base_f = base_c[rs2]
    poller = np.empty(rs2.size, dtype=np.int64)
    idx = np.arange(rs2.size)
    while idx.size:
        c = cycle[idx]
        count = (
            np.searchsorted(c_flat, c + base_f[idx], side="right")
            - block[idx]
        )
        c_first = c_flat[block[idx] + count - 1] - base_f[idx]
        done = c == c_first
        if bool(done.any()):
            poller[idx[done]] = count[done] - 1
            keep = ~done
            idx = idx[keep]
            c = c[keep]
            count = count[keep]
            c_first = c_first[keep]
        if idx.size:
            jump = np.maximum(1, (c - c_first) // count)
            cycle[idx] = c - jump * count
    poller_at[rs2, free_rank] = poller
    waits[rows2m, poller_at] = (
        t_w[:, None] + 1 + arange_m[None, :] - arrivals[rows2m, poller_at]
    )
    return accesses, waits
