"""Steady-state application model: rounds of work separated by barriers.

The paper evaluates single barrier episodes with an *imposed* arrival
interval A.  A real application (Figure 2's E/A timeline) alternates
compute phases of length ~E with barriers, and the arrival spread at
each barrier *emerges* from the previous barrier's departure spread
plus compute-time jitter.  This module closes that loop:

- each of N processors repeatedly computes for ``work ~ Uniform[E(1-j),
  E(1+j)]`` cycles and then synchronizes at a Tang-Yew barrier under
  the configured backoff policy;
- the barrier variable and flag live in their own modules (one access
  per cycle, denied accesses retried and counted), shared across
  rounds, so a straggler's drain polls can collide with the next
  round's arrivals — exactly the congestion coupling the paper worries
  about;
- metrics: end-to-end completion time, per-processor network accesses,
  the synchronization traffic rate (accesses per cycle per processor,
  the Section 7.1 quantity), and the emergent mean arrival spread.

This gives the end-to-end answer the paper's per-barrier figures imply:
how much does each policy slow the *application* down, and how much
network traffic does it remove?
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backoff import BackoffPolicy, NoBackoff
from repro.network.module import MemoryModule
from repro.sim.rng import spawn_stream
from repro.sim.stats import RunningStats

_REQ_VARIABLE = 0
_REQ_FLAG_READ = 1
_REQ_FLAG_WRITE = 2


@dataclass
class ApplicationRunResult:
    """Outcome of one multi-round application episode."""

    num_processors: int
    rounds: int
    work_interval: int
    completion_time: int = 0
    accesses_per_process: List[int] = field(default_factory=list)
    arrival_spans: List[int] = field(default_factory=list)  # per round

    @property
    def mean_accesses(self) -> float:
        if not self.accesses_per_process:
            return 0.0
        return sum(self.accesses_per_process) / len(self.accesses_per_process)

    @property
    def sync_traffic_rate(self) -> float:
        """Synchronization accesses per cycle per processor (§7.1 metric)."""
        if not self.completion_time or not self.num_processors:
            return 0.0
        total = sum(self.accesses_per_process)
        return total / (self.completion_time * self.num_processors)

    @property
    def mean_arrival_span(self) -> float:
        """Emergent A: mean first-to-last arrival span across rounds."""
        if not self.arrival_spans:
            return 0.0
        return sum(self.arrival_spans) / len(self.arrival_spans)

    @property
    def ideal_completion_time(self) -> float:
        """Lower bound: all rounds of work with zero barrier cost."""
        return self.rounds * self.work_interval

    @property
    def overhead_fraction(self) -> float:
        """(completion - ideal) / ideal — the barrier's end-to-end cost."""
        ideal = self.ideal_completion_time
        if not ideal:
            return 0.0
        return (self.completion_time - ideal) / ideal


@dataclass
class ApplicationAggregate:
    """Aggregate over repeated application episodes."""

    num_processors: int
    policy_name: str
    completion: RunningStats = field(default_factory=RunningStats)
    accesses: RunningStats = field(default_factory=RunningStats)
    traffic_rate: RunningStats = field(default_factory=RunningStats)
    arrival_span: RunningStats = field(default_factory=RunningStats)
    overhead: RunningStats = field(default_factory=RunningStats)

    def add_run(self, run: ApplicationRunResult) -> None:
        self.completion.add(run.completion_time)
        self.accesses.add(run.mean_accesses)
        self.traffic_rate.add(run.sync_traffic_rate)
        self.arrival_span.add(run.mean_arrival_span)
        self.overhead.add(run.overhead_fraction)


class ApplicationSimulator:
    """N processors alternating jittered work and Tang-Yew barriers."""

    def __init__(
        self,
        num_processors: int,
        work_interval: int,
        rounds: int = 10,
        jitter: float = 0.2,
        policy: Optional[BackoffPolicy] = None,
        seed: int = 0,
    ) -> None:
        if num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if work_interval < 1:
            raise ValueError("work_interval must be >= 1")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.num_processors = num_processors
        self.work_interval = work_interval
        self.rounds = rounds
        self.jitter = jitter
        self.policy = policy if policy is not None else NoBackoff()
        self.seed = seed

    def _draw_work(self, rng: np.random.Generator) -> int:
        if self.jitter == 0.0:
            return self.work_interval
        low = int(self.work_interval * (1.0 - self.jitter))
        high = int(self.work_interval * (1.0 + self.jitter))
        return int(rng.integers(max(low, 1), high + 1))

    def run_once(self, rng: np.random.Generator) -> ApplicationRunResult:
        n = self.num_processors
        policy = self.policy
        variable_module = MemoryModule("app-barrier-variable")
        flag_module = MemoryModule("app-barrier-flag")

        result = ApplicationRunResult(
            num_processors=n, rounds=self.rounds, work_interval=self.work_interval
        )
        accesses = [0] * n
        polls = [0] * n
        round_of = [0] * n
        depart = [0] * n

        counts = [0] * self.rounds
        flag_set: List[Optional[int]] = [None] * self.rounds
        first_arrival: List[Optional[int]] = [None] * self.rounds
        last_arrival: List[int] = [0] * self.rounds

        heap: List[Tuple[int, int, int, int]] = []
        seq = 0

        def push(time: int, cpu: int, kind: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, cpu, kind))
            seq += 1

        for cpu in range(n):
            push(self._draw_work(rng), cpu, _REQ_VARIABLE)

        def advance(cpu: int, now: int) -> None:
            """Move cpu to the next round (or finish)."""
            round_of[cpu] += 1
            polls[cpu] = 0
            if round_of[cpu] < self.rounds:
                push(now + self._draw_work(rng), cpu, _REQ_VARIABLE)
            else:
                depart[cpu] = now

        while heap:
            ready, __, cpu, kind = heapq.heappop(heap)
            barrier_round = round_of[cpu]

            if kind == _REQ_VARIABLE:
                grant, cost = variable_module.request(ready)
                accesses[cpu] += cost
                if first_arrival[barrier_round] is None:
                    first_arrival[barrier_round] = grant
                last_arrival[barrier_round] = grant
                counts[barrier_round] += 1
                value = counts[barrier_round]
                if value == n:
                    push(grant + 1, cpu, _REQ_FLAG_WRITE)
                else:
                    wait = max(policy.variable_wait(value, n), 1)
                    push(grant + wait, cpu, _REQ_FLAG_READ)
                continue

            if kind == _REQ_FLAG_WRITE:
                grant, cost = flag_module.request(ready)
                accesses[cpu] += cost
                flag_set[barrier_round] = grant
                advance(cpu, grant)
                continue

            # _REQ_FLAG_READ
            grant, cost = flag_module.request(ready)
            accesses[cpu] += cost
            set_time = flag_set[barrier_round]
            if set_time is not None and grant > set_time:
                advance(cpu, grant)
            else:
                polls[cpu] += 1
                wait = max(policy.flag_wait(polls[cpu]), 1)
                push(grant + wait, cpu, _REQ_FLAG_READ)

        result.completion_time = max(depart) if depart else 0
        result.accesses_per_process = accesses
        result.arrival_spans = [
            last_arrival[k] - (first_arrival[k] or 0) for k in range(self.rounds)
        ]
        return result

    def run(self, repetitions: int = 20) -> ApplicationAggregate:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        aggregate = ApplicationAggregate(
            num_processors=self.num_processors, policy_name=self.policy.name
        )
        for rep in range(repetitions):
            rng = spawn_stream(self.seed, f"app-rep-{rep}")
            aggregate.add_run(self.run_once(rng))
        return aggregate


def simulate_application(
    num_processors: int,
    work_interval: int,
    policy: Optional[BackoffPolicy] = None,
    rounds: int = 10,
    jitter: float = 0.2,
    repetitions: int = 20,
    seed: int = 0,
) -> ApplicationAggregate:
    """Convenience wrapper for one application configuration."""
    simulator = ApplicationSimulator(
        num_processors=num_processors,
        work_interval=work_interval,
        rounds=rounds,
        jitter=jitter,
        policy=policy,
        seed=seed,
    )
    return simulator.run(repetitions)
