"""Barrier evaluation harness (Sections 5-7 of the paper).

- :mod:`repro.barrier.arrivals` — arrival processes (uniform within A).
- :mod:`repro.barrier.simulator` — the cycle-exact barrier simulator.
- :mod:`repro.barrier.models` — Model 1 / Model 2 analytic predictions.
- :mod:`repro.barrier.hardware` — hardware-supported barrier baselines.
- :mod:`repro.barrier.metrics` — per-run results and aggregation.
- :mod:`repro.barrier.sweep` — the parameter sweeps behind Figures 4-10.
- :mod:`repro.barrier.tree` — software combining-tree barriers.
- :mod:`repro.barrier.queueing` — spin vs block vs threshold-queue.
- :mod:`repro.barrier.resource` — Section 8 resource waiting.
"""

from repro.barrier.application import (
    ApplicationAggregate,
    ApplicationSimulator,
    simulate_application,
)
from repro.barrier.coherent import (
    CoherentBarrierSimulator,
    simulate_coherent_barrier,
)
from repro.barrier.arrivals import (
    EmpiricalArrivals,
    FixedArrivals,
    UniformArrivals,
)
from repro.barrier.hardware import (
    full_map_directory_accesses,
    hoshino_accesses,
    invalidating_bus_accesses,
    updating_bus_accesses,
)
from repro.barrier.metrics import BarrierAggregate, BarrierRunResult
from repro.barrier.models import (
    expected_span,
    exponential_savings_bound,
    model1_accesses,
    model2_accesses,
    model_prediction,
)
from repro.barrier.simulator import BarrierSimulator, simulate_barrier
from repro.barrier.validation import ValidationResult, validate_uniform_model
from repro.barrier.sweep import sweep_accesses, sweep_interval, sweep_waiting_time

__all__ = [
    "UniformArrivals",
    "FixedArrivals",
    "EmpiricalArrivals",
    "BarrierSimulator",
    "simulate_barrier",
    "BarrierRunResult",
    "BarrierAggregate",
    "model1_accesses",
    "model2_accesses",
    "model_prediction",
    "expected_span",
    "exponential_savings_bound",
    "invalidating_bus_accesses",
    "updating_bus_accesses",
    "full_map_directory_accesses",
    "hoshino_accesses",
    "sweep_accesses",
    "sweep_interval",
    "sweep_waiting_time",
    "ValidationResult",
    "validate_uniform_model",
    "ApplicationSimulator",
    "ApplicationAggregate",
    "simulate_application",
    "CoherentBarrierSimulator",
    "simulate_coherent_barrier",
]
