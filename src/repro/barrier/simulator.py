"""The cycle-exact barrier simulator (Sections 3 and 5).

Model, from the paper:

- processors access any memory over the network in one network cycle;
- the barrier variable and the barrier flag live in *different* memory
  modules (except for the single-variable barrier);
- a module satisfies exactly one access per cycle; a denied access is
  repeated — and counted — every cycle until it succeeds;
- each processor arrives at a time drawn from the arrival process,
  increments the barrier variable (fetch&add), then polls the flag
  until it observes the value written by the last arrival.

Backoff semantics:

- after reading barrier value ``i`` at cycle ``g``, the first flag poll
  is presented at ``g + max(variable_wait(i, N), 1)`` — the paper's
  "can start polling the barrier flag at least (N - i) cycles after
  reaching the barrier variable";
- after the ``k``-th unsuccessful flag read at cycle ``g``, the next
  poll is presented at ``g + max(flag_wait(k), 1)``;
- the last arrival presents its flag *write* one cycle after its
  fetch&add completes, and contends with the pollers for the flag
  module ("backoff ... can also help prevent interference with the
  final processor write request").

The per-cycle retry loop is collapsed exactly by
:class:`~repro.network.module.MemoryModule`: a request presented at
``t`` and granted at ``g`` made ``g - t + 1`` network accesses.  Events
are processed in presented-time order off a heap, so each module sees
non-decreasing request times (earliest-request-first arbitration; for
continuously polling processors this equals round-robin service).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.barrier.arrivals import ArrivalProcess, UniformArrivals
from repro.barrier.backend import get_kernel_counters, resolve_backend
from repro.barrier.metrics import (
    BarrierAggregate,
    BarrierRunResult,
    EpisodeSummary,
    aggregate_from_summaries,
)
from repro.core.backoff import BackoffPolicy
from repro.core.barrier import SingleVariableBarrier, TangYewBarrier
from repro.exec.context import get_exec_config
from repro.faults.plan import GRANT_DROP, GRANT_DUP, get_fault_plan
from repro.network.model import NetworkModel
from repro.network.module import MemoryModule
from repro.obs.tracer import get_tracer
from repro.sim.rng import spawn_stream

# Event kinds.
_REQ_VARIABLE = 0
_REQ_FLAG_READ = 1
_REQ_FLAG_WRITE = 2

BarrierAlgorithm = Union[TangYewBarrier, SingleVariableBarrier]


class BarrierSimulator:
    """Simulates one barrier algorithm under one arrival process."""

    def __init__(
        self,
        barrier: BarrierAlgorithm,
        arrivals: Optional[ArrivalProcess] = None,
        seed: int = 0,
    ) -> None:
        self.barrier = barrier
        self.arrivals = arrivals if arrivals is not None else UniformArrivals(0)
        self.seed = seed

    @property
    def policy(self) -> BackoffPolicy:
        return self.barrier.backoff

    def run_once(
        self,
        rng: np.random.Generator,
        network: Optional[NetworkModel] = None,
        heap: Optional[List[Tuple[int, int, int, int]]] = None,
    ) -> BarrierRunResult:
        """Simulate one barrier episode; returns its metrics.

        ``network`` and ``heap`` let callers that run many episodes
        (:meth:`run`, :meth:`run_shard`) reuse the allocations across
        repetitions; both are reset here, so a reused episode is
        bit-identical to a fresh one.
        """
        n = self.barrier.num_processors
        policy = self.barrier.backoff
        if network is None:
            network = NetworkModel()
        else:
            network.reset()
        variable_module = network.variable_module
        if self.barrier.separate_modules:
            flag_module: MemoryModule = network.flag_module
        else:
            flag_module = variable_module

        plan = get_fault_plan()
        if plan is not None:
            plan.begin_episode()
            modules = (
                (variable_module,)
                if flag_module is variable_module
                else (variable_module, flag_module)
            )
            for module in modules:
                for start, end in plan.module_windows(module.name):
                    module.add_outage(start, end)

        # Degraded-mode bounds: the barrier's own fields win; an active
        # plan can supply them for registry experiments.  Both None
        # (the default) preserves the paper's wait-forever semantics.
        poll_budget = self.barrier.poll_budget
        timeout_cycles = self.barrier.timeout_cycles
        if plan is not None:
            if poll_budget is None:
                poll_budget = plan.poll_budget
            if timeout_cycles is None:
                timeout_cycles = plan.timeout_cycles

        arrival_times = [int(when) for when in self.arrivals.draw(n, rng)]
        if plan is not None:
            for cpu in range(n):
                arrival_times[cpu] += plan.arrival_delay(
                    cpu, n, arrival_times[cpu]
                )
        result = BarrierRunResult(
            num_processors=n,
            interval_a=self.arrivals.interval,
            policy_name=policy.name,
        )
        accesses = [0] * n
        polls = [0] * n
        depart = [0] * n
        losses = [0] * n

        if heap is None:
            heap = []
        else:
            heap.clear()
        seq = 0

        def push(time: int, cpu: int, kind: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, cpu, kind))
            seq += 1

        for cpu, when in enumerate(arrival_times):
            push(when, cpu, _REQ_VARIABLE)

        barrier_count = 0
        flag_set_time: Optional[int] = None
        tracer = get_tracer()
        trace_on = tracer.enabled

        while heap:
            ready, __, cpu, kind = heapq.heappop(heap)

            if kind == _REQ_VARIABLE:
                grant, cost = variable_module.request(ready)
                accesses[cpu] += cost
                barrier_count += 1
                value = barrier_count
                if trace_on:
                    tracer.emit(
                        "barrier.variable",
                        cpu=cpu,
                        ready=ready,
                        grant=grant,
                        cost=cost,
                        value=value,
                    )
                if value == n:
                    if self.barrier.separate_modules:
                        # Travel to the flag module takes one cycle.
                        push(grant + 1, cpu, _REQ_FLAG_WRITE)
                    else:
                        # Single-variable barrier: the final increment
                        # itself is the release.
                        flag_set_time = grant
                        depart[cpu] = grant
                else:
                    wait = max(policy.variable_wait(value, n), 1)
                    if trace_on:
                        tracer.count("barrier.backoff_wait_cycles", wait)
                    push(grant + wait, cpu, _REQ_FLAG_READ)
                continue

            if kind == _REQ_FLAG_WRITE:
                grant, cost = flag_module.request(ready)
                accesses[cpu] += cost
                if plan is not None:
                    outcome = plan.grant_outcome(
                        f"{flag_module.name}.write", cpu, grant
                    )
                    if outcome == GRANT_DROP:
                        # The write was lost in the network: the flag
                        # stays clear and the writer re-issues it after
                        # an adaptive loss backoff.
                        losses[cpu] += 1
                        wait = max(policy.loss_wait(losses[cpu]), 1)
                        push(grant + wait, cpu, _REQ_FLAG_WRITE)
                        if trace_on:
                            tracer.emit(
                                "barrier.flag_write_dropped",
                                cpu=cpu,
                                grant=grant,
                                retry=grant + wait,
                            )
                        continue
                    if outcome == GRANT_DUP:
                        # A duplicated write is harmless (the flag is
                        # idempotent) but costs one extra access.
                        accesses[cpu] += 1
                flag_set_time = grant
                depart[cpu] = grant
                if trace_on:
                    tracer.emit(
                        "barrier.flag_write",
                        cpu=cpu,
                        ready=ready,
                        grant=grant,
                        cost=cost,
                    )
                continue

            # _REQ_FLAG_READ
            grant, cost = flag_module.request(ready)
            accesses[cpu] += cost
            released = flag_set_time is not None and grant > flag_set_time
            if (
                released
                and plan is not None
                and plan.flaky_read(f"{flag_module.name}.read", cpu, grant)
            ):
                # A transiently wrong read: the flag is set, but this
                # poll observes it clear and the processor re-polls.
                released = False
            if trace_on:
                tracer.emit(
                    "barrier.flag_poll",
                    cpu=cpu,
                    ready=ready,
                    grant=grant,
                    cost=cost,
                    released=released,
                )
            if released:
                depart[cpu] = grant
            else:
                polls[cpu] += 1
                if (poll_budget is not None and polls[cpu] >= poll_budget) or (
                    timeout_cycles is not None
                    and grant - arrival_times[cpu] >= timeout_cycles
                ):
                    # Degraded mode: give up waiting and depart with a
                    # partial-arrival outcome instead of hanging.
                    result.timed_out.append(cpu)
                    depart[cpu] = grant
                    if plan is not None:
                        plan.count("barrier.partial_arrival")
                    if trace_on:
                        tracer.emit(
                            "barrier.partial_arrival",
                            cpu=cpu,
                            grant=grant,
                            polls=polls[cpu],
                        )
                    continue
                wait = max(policy.flag_wait(polls[cpu]), 1)
                if trace_on:
                    tracer.count("barrier.backoff_wait_cycles", wait)
                push(grant + wait, cpu, _REQ_FLAG_READ)

        result.accesses_per_process = accesses
        result.waiting_times = [
            depart[cpu] - arrival_times[cpu] for cpu in range(n)
        ]
        result.flag_set_time = flag_set_time
        result.completion_time = max(depart) if depart else 0
        result.variable_accesses = variable_module.total_accesses
        if self.barrier.separate_modules:
            result.flag_accesses = flag_module.total_accesses
        else:
            result.flag_accesses = 0
        if trace_on:
            tracer.count("barrier.episodes")
            tracer.count("barrier.accesses", network.total_accesses)
            tracer.count("barrier.denied_accesses", network.contention_accesses)
            tracer.count("barrier.flag_polls", sum(polls))
            tracer.observe("barrier.completion_cycles", result.completion_time)
            network.publish(tracer)
            tracer.emit(
                "barrier.episode",
                n=n,
                interval_a=self.arrivals.interval,
                policy=policy.name,
                completion=result.completion_time,
                flag_set=flag_set_time,
                variable_accesses=result.variable_accesses,
                flag_accesses=result.flag_accesses,
                denied=network.contention_accesses,
            )
        return result

    def _kernel_summaries(
        self, rep_start: int, rep_stop: int
    ) -> Optional[List[EpisodeSummary]]:
        """Try the vectorized kernel on a shard; None means fall back.

        The kernel raises :class:`repro.barrier.kernel_numpy.KernelUnsupported`
        for configurations outside its contract (tracing, fault plans,
        the single-variable barrier, stateful policies — see
        ``docs/vectorization.md``); those shards take the reference loop
        and the fallback counter records that the knob had no effect.
        """
        from repro.barrier import kernel_numpy

        try:
            summaries = kernel_numpy.shard_summaries(self, rep_start, rep_stop)
        except kernel_numpy.KernelUnsupported:
            get_kernel_counters().fallback_shards += 1
            return None
        get_kernel_counters().vectorized_shards += 1
        return summaries

    def run(
        self, repetitions: int = 100, backend: Optional[str] = None
    ) -> BarrierAggregate:
        """Average over ``repetitions`` independent episodes.

        The paper: "The simulation for each set of parameters is
        repeated 100 times and the numbers are averaged over all the
        runs."

        ``backend`` selects the episode engine (``python`` / ``numpy`` /
        ``auto``); None defers to the process default installed by
        :func:`repro.barrier.backend.set_default_backend`.  Both
        backends produce bit-identical aggregates for every supported
        configuration.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if resolve_backend(backend) == "numpy":
            summaries = self._kernel_summaries(0, repetitions)
            if summaries is not None:
                return aggregate_from_summaries(
                    self.barrier.num_processors,
                    self.arrivals.interval,
                    self.barrier.backoff.name,
                    summaries,
                )
        aggregate = BarrierAggregate(
            num_processors=self.barrier.num_processors,
            interval_a=self.arrivals.interval,
            policy_name=self.barrier.backoff.name,
        )
        # Episode state (network modules, event heap) is allocated once
        # and reset per repetition; only the derived RNG stream is
        # per-repetition, because the stream name is the determinism
        # contract that makes shards location-independent.
        network = NetworkModel()
        heap: List[Tuple[int, int, int, int]] = []
        for rep in range(repetitions):
            rng = spawn_stream(self.seed, f"barrier-rep-{rep}")
            aggregate.add_run(self.run_once(rng, network=network, heap=heap))
        return aggregate

    def run_shard(
        self,
        rep_start: int,
        rep_stop: int,
        backend: Optional[str] = None,
    ) -> List[EpisodeSummary]:
        """Simulate repetitions ``[rep_start, rep_stop)``; one summary each.

        Because every repetition's stream is derived from ``(seed,
        "barrier-rep-<rep>")`` alone, a shard's episodes are identical
        no matter which process runs them or what ran before; replaying
        the summaries of shards ``[0,a) [a,b) ... [z,R)`` in order
        through :meth:`BarrierAggregate.add_summary` reproduces
        :meth:`run`'s aggregate bit-for-bit.  ``backend`` works as in
        :meth:`run`; summaries are bit-identical either way.
        """
        if rep_start < 0 or rep_stop < rep_start:
            raise ValueError(
                f"invalid shard bounds [{rep_start}, {rep_stop})"
            )
        if resolve_backend(backend) == "numpy":
            kernel = self._kernel_summaries(rep_start, rep_stop)
            if kernel is not None:
                return kernel
        summaries: List[EpisodeSummary] = []
        network = NetworkModel()
        heap: List[Tuple[int, int, int, int]] = []
        for rep in range(rep_start, rep_stop):
            rng = spawn_stream(self.seed, f"barrier-rep-{rep}")
            summaries.append(
                EpisodeSummary.from_run(
                    self.run_once(rng, network=network, heap=heap)
                )
            )
        return summaries


def simulate_barrier(
    num_processors: int,
    interval_a: int,
    policy: BackoffPolicy,
    repetitions: int = 100,
    seed: int = 0,
    single_variable: bool = False,
    backend: Optional[str] = None,
) -> BarrierAggregate:
    """Convenience wrapper: simulate a (N, A, policy) point.

    Args:
        num_processors: N.
        interval_a: the arrival interval A in cycles.
        policy: backoff policy to apply.
        repetitions: independent episodes to average (paper: 100).
        seed: root seed (episodes use derived streams).
        single_variable: use the naive one-variable barrier instead of
            the Tang-Yew two-variable barrier.
        backend: episode engine (``python`` / ``numpy`` / ``auto``);
            None defers to the process default.  Results are
            bit-identical across backends, so the result cache is
            shared between them.

    When an active :class:`repro.exec.ExecConfig` is installed (via the
    ``--jobs``/``--cache`` CLI flags or :func:`repro.exec.execution`)
    and no fault plan is in effect, the point is routed through the
    exec engine — parallel repetition shards plus the result cache —
    with bit-identical output.  Fault plans are process-global and
    stateful across episodes, so they always take the serial path here
    (the faults runner parallelizes at the point level instead).
    """
    config = get_exec_config()
    if config.active and get_fault_plan() is None:
        from repro.exec.engine import PointSpec, execute_barrier_points

        spec = PointSpec(
            num_processors=num_processors,
            interval_a=interval_a,
            policy=policy,
            repetitions=repetitions,
            seed=seed,
            single_variable=single_variable,
            backend=backend,
        )
        return execute_barrier_points([spec], config)[0]
    return _simulate_barrier_serial(
        num_processors,
        interval_a,
        policy,
        repetitions=repetitions,
        seed=seed,
        single_variable=single_variable,
        backend=backend,
    )


def _simulate_barrier_serial(
    num_processors: int,
    interval_a: int,
    policy: BackoffPolicy,
    repetitions: int = 100,
    seed: int = 0,
    single_variable: bool = False,
    backend: Optional[str] = None,
) -> BarrierAggregate:
    """The original serial path (also the exec engine's inline runner)."""
    simulator = build_simulator(
        num_processors,
        interval_a,
        policy,
        seed=seed,
        single_variable=single_variable,
    )
    return simulator.run(repetitions, backend=backend)


def build_simulator(
    num_processors: int,
    interval_a: int,
    policy: BackoffPolicy,
    seed: int = 0,
    single_variable: bool = False,
) -> BarrierSimulator:
    """The simulator ``simulate_barrier`` would run for these params."""
    barrier: BarrierAlgorithm
    if single_variable:
        barrier = SingleVariableBarrier(num_processors, backoff=policy)
    else:
        barrier = TangYewBarrier(num_processors, backoff=policy)
    return BarrierSimulator(barrier, UniformArrivals(interval_a), seed=seed)
