"""Batched episode kernel for the combining-tree barrier family.

The reference semantics live in :mod:`repro.barrier.tree`: a global
event heap drives per-node Tang-Yew barriers whose variable and flag
live in that node's own two memory modules.  This kernel reproduces
those episodes *bit-identically* without the heap, by exploiting the
structure the heap obscures:

- **Module independence.**  Every memory module belongs to exactly one
  node, and a module's grant sequence depends only on the order in
  which *its own* requests are presented.  The heap pops events in
  ``(ready, seq)`` order, so a module's request order is simply its
  requests sorted by ``(ready, push order)`` — the episode decomposes
  into per-node *games* coupled only by a few scalars per node: the
  winner's ascent time and the release write's ready time.

- **Ascent (one pass, leaves upward).**  A node's variable game is the
  prefix-max grant recurrence ``g_i = max(r_i, g_{i-1} + 1)`` over its
  participants in processing order.  Leaf processing order is arrival
  order (ties broken by cpu index — the initial pushes' seq order); an
  interior node's participants are its children's winners, arriving at
  ``g_last(child) + 1``.

- **Descent (one pass, root downward).**  Each node's flag module sees
  at most ``degree - 1`` pollers plus one release write whose ready is
  known from the parent's game (the winner's release observation + 1;
  at the root, ``g_last + 1``).  The game is replayed pop-by-pop, with
  a closed-form *dense skip* for the saturated unit-wait regime
  (constant-zero ``flag_wait`` policies poll every cycle; the module
  round-robins the pollers, so whole rounds advance arithmetically) —
  exactly the regime where the event loop's cost explodes with N.

- **Exact tie resolution via ancestry chains.**  Same-ready events tie
  on the heap's ``seq``, which is push order; pushes happen during
  pops (one push per pop), so push order is the pop order of the
  pushing events, recursively.  Every event therefore carries its
  *ancestry chain* — the lineage of pushing-pop ready times, bottoming
  out at the initial arrival pushes whose seq is the cpu index — and
  same-ready candidates compare chains lexicographically (an initial
  push precedes every runtime push).  Distinct events have distinct
  chains, so the comparison is total and the replay is exact with no
  tie refusals.  Chains are linked nodes (O(1) to extend); rounds
  advanced by the dense skip append one arithmetic-progression node
  instead of one node per skipped poll.

Identical arrival rows are deduplicated before simulation — episodes
are pure functions of their arrival vector for stateless policies, so
an ``A=0`` shard is one unique episode however many repetitions it
spans.

Degraded-mode bounds (``poll_budget`` / ``timeout_cycles``) follow the
tree loop: counted per (processor, node) on failed polls; a winner
that gives up at an interior node never writes its child's flag, so
the subtree below drains through the same bounds.

The kernel refuses (raises :class:`KernelUnsupported`, making the
caller fall back to the event loop) when numpy is missing, a tracer is
active, a fault plan is installed, or the policy is stateful — the
same contract as the flat kernel (``docs/vectorization.md``).
"""

from __future__ import annotations

import functools
import weakref
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via the availability override
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.barrier.kernel_numpy import KernelUnsupported
from repro.barrier.metrics import EpisodeSummary
from repro.faults.plan import get_fault_plan
from repro.obs.tracer import get_tracer
from repro.sim.rng import spawn_stream


def unsupported_reason(simulator) -> Optional[str]:
    """Why this simulator cannot take the tree kernel (None = it can)."""
    if np is None:
        return "numpy is not importable"
    from repro.barrier.backend import numpy_available

    if not numpy_available():
        return "numpy backend unavailable"
    if get_tracer().enabled:
        return "tracer enabled (per-event emission needs the event loop)"
    if get_fault_plan() is not None:
        return "fault plan installed"
    if getattr(simulator.barrier.backoff, "stateful", False):
        return "stateful policy (draws depend on episode order)"
    return None


# -- policy classification ------------------------------------------------

#: Per-policy-instance cache: True when ``flag_wait`` probed as
#: constant zero (NoBackoff, VariableBackoff), enabling the dense skip.
#: Weakly keyed so a recycled object id can never alias a stale entry.
_ZERO_FLAG_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_ZERO_PROBES = tuple(range(1, 130)) + tuple(1 << b for b in range(8, 21))


def _constant_zero_flag_wait(policy) -> bool:
    """True when ``flag_wait`` is (probed) identically zero.

    The dense skip advances many failed polls at once and therefore
    needs every skipped wait to be the effective unit wait.  Rather
    than trusting a monotonicity assumption, the skip is only enabled
    for policies whose ``flag_wait`` probes to a constant zero — the
    continuously-polling family, which is exactly where the event
    loop's cost is proportional to the release gap.
    """
    cached = _ZERO_FLAG_CACHE.get(policy)
    if cached is None:
        cached = all(policy.flag_wait(k) == 0 for k in _ZERO_PROBES)
        _ZERO_FLAG_CACHE[policy] = cached
    return cached


#: Per-policy memo of effective flag waits, ``waits[p-1] ==
#: max(flag_wait(p), 1)`` — flag_wait is a pure function of the poll
#: count for every stateless policy (the only kind the kernel accepts),
#: and the game loop calls it once per failed poll otherwise.
_WAIT_TABLES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _wait_table(policy) -> List[int]:
    table = _WAIT_TABLES.get(policy)
    if table is None:
        table = []
        _WAIT_TABLES[policy] = table
    return table


# -- ancestry chains ------------------------------------------------------
#
# Chain encodings (tuples, compared structurally):
#   ("i", s0)                     initial push with seq s0 (= cpu index)
#   ("n", ready, parent)          pushed during a pop at `ready`
#   ("a", last, step, count, parent)
#       `count` pushes at readys last, last-step, ..., newest first
#       (the dense skip's rounds), then `parent`
#
# Lexicographic chain order IS heap seq order for same-ready events:
# push order = pushing-pop order = (pop ready, pushing event's seq),
# recursively; initial pushes precede every runtime push and carry the
# episode's first seqs.  Distinct events always differ somewhere along
# the chain (each pop pushes at most one event), so comparison is total.


def _chain_next(chain: Tuple) -> Tuple:
    """Drop the newest ancestry element."""
    if chain[0] == "n":
        return chain[2]
    # ("a", last, step, count, parent)
    if chain[3] == 1:
        return chain[4]
    return ("a", chain[1] - chain[2], chain[2], chain[3] - 1, chain[4])


def _chain_less(a: Tuple, b: Tuple) -> bool:
    """True when event ``a`` was pushed before event ``b``."""
    while True:
        if a is b:
            return False
        ka, kb = a[0], b[0]
        if ka == "i" or kb == "i":
            if ka == "i" and kb == "i":
                return a[1] < b[1]
            return ka == "i"
        ra, rb = a[1], b[1]
        if ra != rb:
            return ra < rb
        if ka == "a" and kb == "a" and a[2] == b[2]:
            # Same ready and step: the next min(count) elements agree
            # pairwise, so consume them in one jump.
            jump = min(a[3], b[3])
            a = (
                a[4]
                if a[3] == jump
                else ("a", ra - a[2] * jump, a[2], a[3] - jump, a[4])
            )
            b = (
                b[4]
                if b[3] == jump
                else ("a", rb - b[2] * jump, b[2], b[3] - jump, b[4])
            )
            continue
        a = _chain_next(a)
        b = _chain_next(b)


# -- tree topology --------------------------------------------------------


class _Topology:
    """Static episode structure shared by every episode of a shard."""

    __slots__ = ("n", "degree", "parents", "expected", "leaf_of", "order")

    def __init__(self, n: int, degree: int) -> None:
        from repro.barrier.tree import _build_nodes

        nodes, leaf_of = _build_nodes(n, degree)
        self.n = n
        self.degree = degree
        self.parents = [node.parent for node in nodes]
        self.expected = [node.expected for node in nodes]
        self.leaf_of = leaf_of
        self.order = len(nodes)


# -- the per-node flag game ----------------------------------------------


class _GameResult:
    __slots__ = ("obs_grant", "obs_ready", "obs_chain", "timed_out", "flag_set")

    def __init__(self, m: int) -> None:
        self.obs_grant: List[Optional[int]] = [None] * m
        self.obs_ready: List[Optional[int]] = [None] * m
        self.obs_chain: List[Optional[Tuple]] = [None] * m
        self.timed_out: List[bool] = [False] * m
        self.flag_set: Optional[int] = None


def _flag_game(
    policy,
    entries: List[Tuple[int, int, int, Tuple]],
    write: Optional[Tuple[int, Tuple]],
    poll_budget: Optional[int],
    timeout_cycles: Optional[int],
    arrival_times: List[int],
    accesses: List[int],
) -> _GameResult:
    """Replay one node's flag module exactly; returns per-agent outcomes.

    ``entries`` are the node's participants in variable-game processing
    order as ``(cpu, fa_ready, fa_grant, fa_chain)``; the last entry is
    the winner (the writer).  ``write`` is ``(ready, chain)`` or None
    when the winner gave up upstream and the flag is never set.
    """
    m = len(entries)
    result = _GameResult(m)
    zero_wait = m > 1 and _constant_zero_flag_wait(policy)
    waits = _wait_table(policy)

    # Poller state, indexed by participant position j (0..m-2).
    ready: List[int] = [0] * max(m - 1, 0)
    chain: List[Tuple] = [()] * max(m - 1, 0)
    polls: List[int] = [0] * max(m - 1, 0)
    live: List[int] = []
    for j in range(m - 1):
        __, fa_ready, fa_grant, fa_chain = entries[j]
        ready[j] = fa_grant + max(policy.variable_wait(j + 1, m), 1)
        chain[j] = ("n", fa_ready, fa_chain)
        live.append(j)

    write_pending = write is not None
    if not live and not write_pending:
        return result
    if write is None and poll_budget is None and timeout_cycles is None:
        raise AssertionError("flag write absent without degraded-mode bounds")

    nf = 0
    flag_set: Optional[int] = None

    while live or write_pending:
        # Dense skip: saturated continuous polling round-robins the
        # module, so whole rounds advance in O(live) arithmetic.  Only
        # rounds that stay strictly clear of the write's ready and of
        # both degraded-mode bounds are skipped; the remainder replays
        # pop-by-pop, so under-skipping is always safe.
        if flag_set is None and zero_wait and live:
            saturated = True
            for j in live:
                if ready[j] > nf:
                    saturated = False
                    break
            k = len(live)
            if saturated:
                order = sorted(live, key=lambda j: ready[j])
                readys = [ready[j] for j in order]
            if saturated and len(set(readys)) == k:
                rounds = 1 << 60
                if write is not None:
                    # Skipped pop readys reach nf + (rounds-1)*k; keep
                    # them strictly below the write's ready so the
                    # write is never due during a skipped round.
                    rounds = min(rounds, (write[0] - nf - 1) // k)
                if poll_budget is not None:
                    rounds = min(
                        rounds,
                        min(poll_budget - 1 - polls[j] for j in order),
                    )
                if timeout_cycles is not None:
                    for p, j in enumerate(order):
                        margin = (
                            timeout_cycles - 1
                            + arrival_times[entries[j][0]]
                            - nf
                            - p
                        )
                        rounds = min(rounds, margin // k + 1)
                if rounds > 1:
                    for p, j in enumerate(order):
                        first_grant = nf + p
                        last_grant = first_grant + (rounds - 1) * k
                        accesses[entries[j][0]] += (
                            first_grant - ready[j] + 1 + (rounds - 1) * k
                        )
                        polls[j] += rounds
                        # Pop readys, newest first: rounds 2..R popped
                        # at last_grant-k+1, ..., nf+p+1 (step k), then
                        # round 1 popped at the pre-skip ready.
                        chain[j] = (
                            "a",
                            last_grant - k + 1,
                            k,
                            rounds - 1,
                            ("n", ready[j], chain[j]),
                        )
                        ready[j] = last_grant + 1
                    nf += rounds * k
                    continue

        # Pop the earliest pending request (exact heap order).
        best_j = -2  # -1 = the write
        best_ready = 0
        best_chain: Tuple = ()
        for j in live:
            if (
                best_j == -2
                or ready[j] < best_ready
                or (
                    ready[j] == best_ready
                    and _chain_less(chain[j], best_chain)
                )
            ):
                best_j, best_ready, best_chain = j, ready[j], chain[j]
        if write_pending:
            wready, wchain = write  # type: ignore[misc]
            if (
                best_j == -2
                or wready < best_ready
                or (wready == best_ready and _chain_less(wchain, best_chain))
            ):
                best_j, best_ready, best_chain = -1, wready, wchain

        grant = max(best_ready, nf)
        nf = grant + 1

        if best_j == -1:
            cpu = entries[m - 1][0]
            accesses[cpu] += grant - best_ready + 1
            flag_set = grant
            result.flag_set = grant
            result.obs_grant[m - 1] = grant
            result.obs_ready[m - 1] = best_ready
            result.obs_chain[m - 1] = best_chain
            write_pending = False
            continue

        j = best_j
        cpu = entries[j][0]
        accesses[cpu] += grant - best_ready + 1
        if flag_set is not None and grant > flag_set:
            result.obs_grant[j] = grant
            result.obs_ready[j] = best_ready
            result.obs_chain[j] = best_chain
            live.remove(j)
            continue
        polls[j] += 1
        if (poll_budget is not None and polls[j] >= poll_budget) or (
            timeout_cycles is not None
            and grant - arrival_times[cpu] >= timeout_cycles
        ):
            result.obs_grant[j] = grant
            result.timed_out[j] = True
            live.remove(j)
            continue
        while polls[j] > len(waits):
            waits.append(max(policy.flag_wait(len(waits) + 1), 1))
        ready[j] = grant + waits[polls[j] - 1]
        chain[j] = ("n", best_ready, chain[j])

    return result


# -- one episode ----------------------------------------------------------


def _entry_cmp(a, b):
    if a[1] != b[1]:
        return -1 if a[1] < b[1] else 1
    return -1 if _chain_less(a[2], b[2]) else 1


def _episode(
    topo: _Topology,
    policy,
    arrival_times: List[int],
    poll_budget: Optional[int],
    timeout_cycles: Optional[int],
) -> Tuple[List[int], List[int], int]:
    """Simulate one episode exactly; returns (accesses, departs, #timeouts)."""
    n = topo.n
    accesses = [0] * n
    depart = [0] * n
    timeouts = 0

    # Ascent: per node, participants as (cpu, ready, chain, src child).
    part: List[List[Tuple[int, int, Tuple, Optional[int]]]] = [
        [] for _ in range(topo.order)
    ]
    grants: List[List[int]] = [[] for _ in range(topo.order)]
    for cpu in range(n):
        part[topo.leaf_of[cpu]].append(
            (cpu, arrival_times[cpu], ("i", cpu), None)
        )

    for node_id in range(topo.order):
        entries = part[node_id]
        # Processing order: (ready, push order).  Leaf rows built from
        # sorted draws arrive pre-sorted with cpu-index chains, so the
        # general chain sort only runs when an inversion or a same-ready
        # chain inversion is present.
        for i in range(1, len(entries)):
            ra, rb = entries[i - 1][1], entries[i][1]
            if ra > rb or (
                ra == rb and _chain_less(entries[i][2], entries[i - 1][2])
            ):
                entries.sort(key=functools.cmp_to_key(_entry_cmp))
                break
        if len(entries) != topo.expected[node_id]:
            raise AssertionError("participant count mismatch")
        g = -1
        node_grants = grants[node_id]
        for cpu, r, __, ___ in entries:
            g = max(r, g + 1)
            node_grants.append(g)
            accesses[cpu] += g - r + 1
        parent = topo.parents[node_id]
        if parent is not None:
            last = entries[-1]
            part[parent].append(
                (last[0], node_grants[-1] + 1, ("n", last[1], last[2]), node_id)
            )

    # Descent: per node (root first — parents have larger ids), the
    # release write's (ready, chain), or None if the winner gave up at
    # the parent and the flag is never written.
    write_info: List[Optional[Tuple[int, Tuple]]] = [None] * topo.order
    root = topo.order - 1
    root_last = part[root][-1]
    write_info[root] = (
        grants[root][-1] + 1,
        ("n", root_last[1], root_last[2]),
    )

    for node_id in range(topo.order - 1, -1, -1):
        entries = part[node_id]
        game = _flag_game(
            policy,
            [
                (e[0], e[1], grants[node_id][j], e[2])
                for j, e in enumerate(entries)
            ],
            write_info[node_id],
            poll_budget,
            timeout_cycles,
            arrival_times,
            accesses,
        )
        is_leaf = node_id == topo.leaf_of[entries[0][0]]
        for j, entry in enumerate(entries):
            cpu, __, ___, src = entry
            obs = game.obs_grant[j]
            if game.timed_out[j]:
                depart[cpu] = obs  # type: ignore[assignment]
                timeouts += 1
                continue
            if obs is None:
                # Flag never written here: the writer never ran because
                # it already gave up (or was stranded) upstream.
                continue
            if is_leaf:
                depart[cpu] = obs
            elif src is not None:
                # The child this participant won is released one cycle
                # after the observation; the release write is pushed
                # during the observation event's pop.
                write_info[src] = (
                    obs + 1,
                    ("n", game.obs_ready[j], game.obs_chain[j]),
                )

    return accesses, depart, timeouts


# -- the shard entry point ------------------------------------------------


def shard_summaries(
    simulator, rep_start: int, rep_stop: int
) -> List[EpisodeSummary]:
    """Episode summaries for repetitions ``[rep_start, rep_stop)``.

    Bit-identical to the event loop's
    :meth:`~repro.barrier.tree.TreeBarrierSimulator.run_shard` python
    path; raises :class:`KernelUnsupported` when the configuration is
    outside the kernel's contract.
    """
    reason = unsupported_reason(simulator)
    if reason is not None:
        raise KernelUnsupported(reason)
    reps = list(range(rep_start, rep_stop))
    if not reps:
        return []

    barrier = simulator.barrier
    n = barrier.num_processors
    topo = _Topology(n, barrier.degree)
    policy = barrier.backoff

    # Draws: delegate to the arrival process on the per-rep streams the
    # event loop uses, so any ArrivalProcess matches exactly.
    rows: List[Tuple[int, ...]] = []
    for rep in reps:
        rng = spawn_stream(simulator.seed, f"tree-rep-{rep}")
        rows.append(
            tuple(int(when) for when in simulator.arrivals.draw(n, rng))
        )

    # Dedup: an episode is a pure function of its arrival row (the
    # policy is stateless here), so duplicate rows share one result.
    cache: Dict[Tuple[int, ...], EpisodeSummary] = {}
    for row in rows:
        if row in cache:
            continue
        accesses, depart, timeouts = _episode(
            topo,
            policy,
            list(row),
            barrier.poll_budget,
            barrier.timeout_cycles,
        )
        waits = sorted(depart[cpu] - row[cpu] for cpu in range(n))
        index = min(int(round(95.0 / 100.0 * (n - 1))), n - 1)
        cache[row] = EpisodeSummary(
            mean_accesses=sum(accesses) / n,
            mean_waiting_time=(
                sum(depart[cpu] - row[cpu] for cpu in range(n)) / n
            ),
            waiting_p95=float(waits[index]),
            queued_processes=0,
            timed_out=timeouts,
        )

    return [cache[row] for row in rows]
