"""Barrier episodes executed through cache-coherence protocols (§5.1).

Section 5.1 prices hardware-supported barriers with back-of-envelope
counts: invalidating bus ~3 accesses/processor, updating bus ~2,
full-map directory ~4, against which the backoff schemes on uncached
variables are compared.  This module *simulates* those numbers: it
drives one Tang-Yew barrier episode, reference by reference, through

- the snoopy bus (:mod:`repro.memory.snoopy`, invalidate / update /
  fetch-intent-write variants),
- the directory (:mod:`repro.memory.coherence`, any pointer count), or
- uncached synchronization variables with an optional backoff policy
  (every poll is a two-transaction network access — the software
  scheme the paper proposes).

Episode model (cycle-driven, matching the post-mortem scheduler's
conventions): processors arrive uniformly in [0, A]; each performs a
fetch&add on the barrier variable (one grant per cycle — the atomic is
serialized), then polls the flag once per cycle (or per its backoff
schedule) until it observes the value written by the last arrival.
With caching, repeat polls hit in the cache and cost nothing until the
flag write invalidates (or updates) the copies — which is precisely why
"all repeat accesses of a synchronization variable can be satisfied by
the cache" on such machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.backoff import BackoffPolicy, NoBackoff
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.memory.snoopy import SnoopyConfig, SnoopySimulator
from repro.sim.rng import spawn_stream
from repro.sim.stats import RunningStats

#: Distinct block-aligned addresses for the two synchronization words.
_VARIABLE_ADDRESS = 0x1000
_FLAG_ADDRESS = 0x2000


@dataclass
class CoherentBarrierResult:
    """Traffic of one simulated barrier episode."""

    num_processors: int
    scheme: str
    transactions: int = 0
    cycles: int = 0

    @property
    def transactions_per_process(self) -> float:
        if not self.num_processors:
            return 0.0
        return self.transactions / self.num_processors


class CoherentBarrierSimulator:
    """One Tang-Yew barrier through a coherence protocol.

    Args:
        num_processors: N.
        scheme: ``"snoopy-invalidate"``, ``"snoopy-invalidate-fiw"``
            (fetch-intent-write), ``"snoopy-update"``, ``"directory"``,
            or ``"uncached"``.
        interval_a: arrival interval A.
        policy: backoff policy (meaningful for ``"uncached"``, where
            every poll costs network transactions; cached schemes poll
            their caches for free, so backoff is a no-op there).
        num_pointers: directory pointer count (``"directory"`` only).
    """

    SCHEMES = (
        "snoopy-invalidate",
        "snoopy-invalidate-fiw",
        "snoopy-update",
        "directory",
        "uncached",
    )

    def __init__(
        self,
        num_processors: int,
        scheme: str = "snoopy-invalidate",
        interval_a: int = 0,
        policy: Optional[BackoffPolicy] = None,
        num_pointers: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if scheme not in self.SCHEMES:
            raise ValueError(f"scheme must be one of {self.SCHEMES}, got {scheme!r}")
        if interval_a < 0:
            raise ValueError("interval_a must be non-negative")
        self.num_processors = num_processors
        self.scheme = scheme
        self.interval_a = interval_a
        self.policy = policy if policy is not None else NoBackoff()
        self.num_pointers = num_pointers
        self.seed = seed

    def _make_backend(self):
        n = self.num_processors
        if self.scheme == "snoopy-invalidate":
            return SnoopySimulator(SnoopyConfig(num_cpus=n))
        if self.scheme == "snoopy-invalidate-fiw":
            return SnoopySimulator(
                SnoopyConfig(num_cpus=n, fetch_intent_write=True)
            )
        if self.scheme == "snoopy-update":
            return SnoopySimulator(SnoopyConfig(num_cpus=n, protocol="update"))
        if self.scheme == "directory":
            pointers = self.num_pointers if self.num_pointers else n
            return CoherenceSimulator(
                CoherenceConfig(num_cpus=n, num_pointers=pointers)
            )
        return CoherenceSimulator(
            CoherenceConfig(num_cpus=n, num_pointers=n, cache_sync=False)
        )

    def _transactions(self, backend) -> int:
        if isinstance(backend, SnoopySimulator):
            return backend.stats.bus_transactions
        return backend.stats.total_traffic

    def run_once(self, rng: np.random.Generator) -> CoherentBarrierResult:
        n = self.num_processors
        backend = self._make_backend()
        is_sync = True
        if self.interval_a == 0:
            arrivals = [0] * n
        else:
            arrivals = sorted(
                int(t) for t in rng.integers(0, self.interval_a + 1, size=n)
            )

        # Per-cpu state: -1 done; 0 awaiting arrival; 1 needs F&A;
        # 2 polling.
        AWAIT, FETCH, POLL, DONE = 0, 1, 2, -1
        state = [AWAIT] * n
        next_action = list(arrivals)
        polls = [0] * n
        count = 0
        flag_written_cycle: Optional[int] = None
        active = n
        cycle = 0
        guard = 0

        while active:
            guard += 1
            if guard > 10_000_000:
                raise RuntimeError("coherent barrier episode did not converge")
            fa_granted_this_cycle = False
            for cpu in range(n):
                if state[cpu] == DONE or next_action[cpu] > cycle:
                    continue
                if state[cpu] == AWAIT:
                    state[cpu] = FETCH
                if state[cpu] == FETCH:
                    if fa_granted_this_cycle:
                        continue  # the atomic is serialized; retry next cycle
                    fa_granted_this_cycle = True
                    backend._process(cpu, False, _VARIABLE_ADDRESS, is_sync)
                    count += 1
                    if count == n:
                        # Last arrival: write the flag next cycle.
                        backend._process(cpu, False, _FLAG_ADDRESS, is_sync)
                        flag_written_cycle = cycle + 1
                        state[cpu] = DONE
                        active -= 1
                    else:
                        wait = max(self.policy.variable_wait(count, n), 1)
                        state[cpu] = POLL
                        next_action[cpu] = cycle + wait
                    continue
                # POLL
                backend._process(cpu, True, _FLAG_ADDRESS, is_sync)
                if flag_written_cycle is not None and cycle >= flag_written_cycle:
                    state[cpu] = DONE
                    active -= 1
                else:
                    polls[cpu] += 1
                    wait = max(self.policy.flag_wait(polls[cpu]), 1)
                    next_action[cpu] = cycle + wait
            cycle += 1

        return CoherentBarrierResult(
            num_processors=n,
            scheme=self.scheme,
            transactions=self._transactions(backend),
            cycles=cycle,
        )

    def run(self, repetitions: int = 20) -> RunningStats:
        """Transactions-per-process statistics over repeated episodes."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        stats = RunningStats()
        for rep in range(repetitions):
            rng = spawn_stream(self.seed, f"coherent-rep-{rep}")
            stats.add(self.run_once(rng).transactions_per_process)
        return stats


def simulate_coherent_barrier(
    num_processors: int,
    scheme: str,
    interval_a: int = 0,
    policy: Optional[BackoffPolicy] = None,
    num_pointers: Optional[int] = None,
    repetitions: int = 20,
    seed: int = 0,
) -> RunningStats:
    """Convenience wrapper: transactions/process for one configuration."""
    simulator = CoherentBarrierSimulator(
        num_processors=num_processors,
        scheme=scheme,
        interval_a=interval_a,
        policy=policy,
        num_pointers=num_pointers,
        seed=seed,
    )
    return simulator.run(repetitions)
