"""Hardware-supported barrier baselines (Section 5.1).

    "If there are n processors the invalidating bus incurs 3n+1
    accesses for a barrier ... roughly 3 accesses per processor per
    barrier operation.  The updating bus ... roughly 2 bus accesses per
    processor.  ... the directory scheme must incur 3n on barrier
    variable accesses and invalidations, and flag accesses, but lacking
    a global broadcast must incur an additional n for the individual
    invalidates on the final write to the barrier flag, yielding 4 on
    average per processor per barrier operation.  The Hoshino scheme
    uses n accesses to the global synchronization gate and the final
    single broadcast message ... for a per-processor average of 1."

These constants are the comparison floor for the software backoff
schemes: "the small number of network accesses with backoff on the
barrier flag ... compares reasonably with the network accesses in the
bus-based schemes, the broadcast based schemes, or the Hoshino scheme,
with no extra hardware."
"""

from __future__ import annotations


def invalidating_bus_accesses(n: int) -> float:
    """Invalidating snoopy bus: (3n + 1)/n per processor (~3)."""
    _check(n)
    return (3 * n + 1) / n


def updating_bus_accesses(n: int) -> float:
    """Updating bus (or fetch-with-intent-to-write): (2n + 1)/n (~2)."""
    _check(n)
    return (2 * n + 1) / n


def full_map_directory_accesses(n: int) -> float:
    """Full-map directory without broadcast: (3n + n)/n = 4."""
    _check(n)
    return 4.0


def hoshino_accesses(n: int) -> float:
    """PAX global synchronization gate: (n + 1)/n per processor (~1)."""
    _check(n)
    return (n + 1) / n


def hardware_baselines(n: int) -> dict:
    """All four baselines, keyed by the paper's names."""
    return {
        "invalidating bus": invalidating_bus_accesses(n),
        "updating bus": updating_bus_accesses(n),
        "full-map directory": full_map_directory_accesses(n),
        "Hoshino gate": hoshino_accesses(n),
    }


def _check(n: int) -> None:
    if n < 1:
        raise ValueError("n must be >= 1")
