"""Arrival processes for the barrier model.

    "We now define A to be the interval during which processors may
    arrive at the barrier, and N to be the number of synchronizing
    processors.  We further assume that each processor has a uniform
    probability of appearing at any time instant during the interval A."

:class:`UniformArrivals` is that model; :class:`FixedArrivals` pins the
times for deterministic tests; :class:`EmpiricalArrivals` resamples the
per-barrier arrival offsets measured by the post-mortem scheduler, so
the barrier simulator can be driven by application-shaped arrivals
(used to validate the uniform model, as in Section 5 / Figure 3).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class ArrivalProcess:
    """Base class: draws sorted arrival cycles for ``n`` processors."""

    def draw(self, n: int, rng: np.random.Generator) -> List[int]:
        raise NotImplementedError

    @property
    def interval(self) -> int:
        """Nominal A of the process (0 if not applicable)."""
        return 0


class UniformArrivals(ArrivalProcess):
    """Each processor arrives uniformly at random within [0, A]."""

    def __init__(self, interval_a: int) -> None:
        if interval_a < 0:
            raise ValueError("interval_a must be non-negative")
        self._interval = interval_a

    @property
    def interval(self) -> int:
        return self._interval

    def draw(self, n: int, rng: np.random.Generator) -> List[int]:
        if n < 1:
            raise ValueError("n must be >= 1")
        if self._interval == 0:
            return [0] * n
        times = rng.integers(0, self._interval + 1, size=n)
        return sorted(int(t) for t in times)

    def __repr__(self) -> str:
        return f"UniformArrivals(A={self._interval})"


class FixedArrivals(ArrivalProcess):
    """Deterministic arrival times (tests and worked examples)."""

    def __init__(self, times: Sequence[int]) -> None:
        if not times:
            raise ValueError("times must be non-empty")
        if any(t < 0 for t in times):
            raise ValueError("arrival times must be non-negative")
        self._times = sorted(int(t) for t in times)

    @property
    def interval(self) -> int:
        return self._times[-1] - self._times[0]

    def draw(self, n: int, rng: np.random.Generator) -> List[int]:
        if n != len(self._times):
            raise ValueError(
                f"FixedArrivals holds {len(self._times)} times, asked for {n}"
            )
        return list(self._times)

    def __repr__(self) -> str:
        return f"FixedArrivals(n={len(self._times)}, A={self.interval})"


class EmpiricalArrivals(ArrivalProcess):
    """Resamples measured arrival offsets (e.g. from a ScheduledTrace).

    ``offsets`` is a pool of arrival offsets (cycles from the first
    arrival) observed at real barriers; each draw samples ``n`` of them
    with replacement, anchored at 0.
    """

    def __init__(self, offsets: Sequence[int]) -> None:
        if not offsets:
            raise ValueError("offsets must be non-empty")
        if any(o < 0 for o in offsets):
            raise ValueError("offsets must be non-negative")
        self._offsets = np.asarray(sorted(offsets), dtype=np.int64)

    @property
    def interval(self) -> int:
        return int(self._offsets[-1])

    def draw(self, n: int, rng: np.random.Generator) -> List[int]:
        if n < 1:
            raise ValueError("n must be >= 1")
        sample = rng.choice(self._offsets, size=n, replace=True)
        sample = np.sort(sample)
        return [int(t - sample[0]) for t in sample]

    def __repr__(self) -> str:
        return f"EmpiricalArrivals(pool={len(self._offsets)}, A={self.interval})"
