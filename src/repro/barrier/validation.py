"""Validating the uniform-arrival barrier model against real arrivals.

Section 5 justifies the uniform-arrival assumption by inspecting the
measured arrival distributions (Figure 3) and by cross-checking the
model's traffic prediction against the trace measurement (Section 7.1:
"barrier simulations predicting 0.136 net accesses per cycle per
processor, while measurements from FFT yielded 0.135").

This module makes that validation a first-class operation: drive the
barrier simulator once with :class:`~repro.barrier.arrivals.UniformArrivals`
(the model) and once with
:class:`~repro.barrier.arrivals.EmpiricalArrivals` resampled from a
scheduled trace's measured offsets, and compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.barrier.arrivals import EmpiricalArrivals, UniformArrivals
from repro.barrier.metrics import BarrierAggregate
from repro.barrier.simulator import BarrierSimulator
from repro.core.backoff import BackoffPolicy, NoBackoff
from repro.core.barrier import TangYewBarrier


@dataclass
class ValidationResult:
    """Uniform-model vs empirical-arrival comparison at one point."""

    uniform: BarrierAggregate
    empirical: BarrierAggregate

    @property
    def access_ratio(self) -> float:
        """uniform / empirical mean accesses (1.0 = perfect agreement)."""
        if not self.empirical.mean_accesses:
            return 0.0
        return self.uniform.mean_accesses / self.empirical.mean_accesses

    @property
    def waiting_ratio(self) -> float:
        if not self.empirical.mean_waiting_time:
            return 0.0
        return self.uniform.mean_waiting_time / self.empirical.mean_waiting_time

    @property
    def access_error_pct(self) -> float:
        """Absolute percentage error of the uniform model's accesses."""
        return abs(self.access_ratio - 1.0) * 100.0


def validate_uniform_model(
    trace,
    policy: BackoffPolicy = None,
    repetitions: int = 100,
    seed: int = 0,
) -> ValidationResult:
    """Compare the uniform model against a trace's measured arrivals.

    Args:
        trace: a :class:`~repro.trace.scheduler.ScheduledTrace` (its
            pooled per-barrier arrival offsets are resampled).
        policy: backoff policy to run under (default: no backoff, the
            paper's validation configuration).
        repetitions: episodes per arrival process.
        seed: root seed.
    """
    if policy is None:
        policy = NoBackoff()
    offsets = trace.arrival_offsets()
    if not offsets:
        raise ValueError("trace has no barrier arrivals to validate against")
    n = trace.num_cpus
    interval = max(int(round(trace.mean_interval_a())), 0)

    uniform = BarrierSimulator(
        TangYewBarrier(n, backoff=policy), UniformArrivals(interval), seed=seed
    ).run(repetitions)
    span = max(offsets)
    if span == 0:
        empirical_arrivals = UniformArrivals(0)
    else:
        empirical_arrivals = EmpiricalArrivals(offsets)
    empirical = BarrierSimulator(
        TangYewBarrier(n, backoff=policy), empirical_arrivals, seed=seed
    ).run(repetitions)
    return ValidationResult(uniform=uniform, empirical=empirical)
