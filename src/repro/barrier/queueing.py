"""Spin vs block vs spin-then-queue barriers (Sections 1, 4 and 7).

The paper frames blocking as the alternative to spinning:

    "alternate barrier implementations might use a scheme where all but
    the last processor to arrive at the barrier are put to sleep ...
    This method avoids the extra network traffic of polling a barrier
    flag, but incurs the potentially high overhead of enqueuing a
    process on a condition variable"

and proposes the adaptive hybrid:

    "If the backoff amount crosses some preset threshold, then it might
    be worthwhile to place the process on a queue pending the arrival
    of the last process."

Model: a process that queues pays ``enqueue_overhead`` cycles (plus two
network accesses to manipulate the queue) and stops polling.  When the
last process sets the flag it wakes the queue: the ``k``-th queued
process resumes ``wakeup_overhead + k`` cycles after the flag write
(wake-ups are serialised through the queue lock, one per cycle), at a
cost of one network access each.

:class:`QueueingBarrierSimulator` runs a Tang-Yew barrier whose policy
may answer ``should_queue(polls) == True``; with
:class:`~repro.core.barrier.BlockingBarrier` semantics (queue
immediately, never poll) it degenerates to the pure blocking scheme.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.barrier.arrivals import ArrivalProcess, UniformArrivals
from repro.barrier.metrics import BarrierAggregate, BarrierRunResult
from repro.core.backoff import BackoffPolicy, ThresholdQueueBackoff
from repro.core.barrier import BlockingBarrier, TangYewBarrier
from repro.network.model import NetworkModel
from repro.sim.rng import spawn_stream

_REQ_VARIABLE = 0
_REQ_FLAG_READ = 1
_REQ_FLAG_WRITE = 2


class QueueingBarrierSimulator:
    """Tang-Yew barrier where processes may block instead of spinning."""

    def __init__(
        self,
        barrier: Union[TangYewBarrier, BlockingBarrier],
        arrivals: Optional[ArrivalProcess] = None,
        seed: int = 0,
        enqueue_overhead: int = 100,
        wakeup_overhead: int = 100,
    ) -> None:
        self.barrier = barrier
        self.arrivals = arrivals if arrivals is not None else UniformArrivals(0)
        self.seed = seed
        if isinstance(barrier, BlockingBarrier):
            self.enqueue_overhead = barrier.enqueue_overhead
            self.wakeup_overhead = barrier.wakeup_overhead
            self._always_queue = True
            self._policy: Optional[BackoffPolicy] = None
        else:
            self.enqueue_overhead = enqueue_overhead
            self.wakeup_overhead = wakeup_overhead
            self._always_queue = False
            self._policy = barrier.backoff

    def run_once(self, rng: np.random.Generator) -> BarrierRunResult:
        n = self.barrier.num_processors
        network = NetworkModel()
        variable_module = network.variable_module
        flag_module = network.flag_module

        arrival_times = self.arrivals.draw(n, rng)
        accesses = [0] * n
        polls = [0] * n
        depart = [0] * n
        queued: List[int] = []  # cpus asleep, in enqueue order

        heap: List[Tuple[int, int, int, int]] = []
        seq = 0

        def push(time: int, cpu: int, kind: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, cpu, kind))
            seq += 1

        for cpu, when in enumerate(arrival_times):
            push(when, cpu, _REQ_VARIABLE)

        barrier_count = 0
        flag_set_time: Optional[int] = None

        def enqueue(cpu: int, at: int) -> None:
            # Two accesses to manipulate the shared queue under its lock.
            accesses[cpu] += 2
            queued.append(cpu)

        while heap:
            ready, __, cpu, kind = heapq.heappop(heap)

            if kind == _REQ_VARIABLE:
                grant, cost = variable_module.request(ready)
                accesses[cpu] += cost
                barrier_count += 1
                value = barrier_count
                if value == n:
                    push(grant + 1, cpu, _REQ_FLAG_WRITE)
                elif self._always_queue:
                    enqueue(cpu, grant + self.enqueue_overhead)
                else:
                    assert self._policy is not None
                    wait = max(self._policy.variable_wait(value, n), 1)
                    push(grant + wait, cpu, _REQ_FLAG_READ)
                continue

            if kind == _REQ_FLAG_WRITE:
                grant, cost = flag_module.request(ready)
                accesses[cpu] += cost
                flag_set_time = grant
                depart[cpu] = grant
                # Wake the sleepers: one per cycle through the queue.
                for position, sleeper in enumerate(queued):
                    accesses[sleeper] += 1  # wake-up notification
                    depart[sleeper] = (
                        grant + self.wakeup_overhead + position + 1
                    )
                continue

            # _REQ_FLAG_READ
            grant, cost = flag_module.request(ready)
            accesses[cpu] += cost
            if flag_set_time is not None and grant > flag_set_time:
                depart[cpu] = grant
            else:
                polls[cpu] += 1
                assert self._policy is not None
                if self._policy.should_queue(polls[cpu]):
                    enqueue(cpu, grant + self.enqueue_overhead)
                else:
                    wait = max(self._policy.flag_wait(polls[cpu]), 1)
                    push(grant + wait, cpu, _REQ_FLAG_READ)

        policy_name = (
            "blocking" if self._always_queue else f"queue/{self._policy.name}"
        )
        result = BarrierRunResult(
            num_processors=n,
            interval_a=self.arrivals.interval,
            policy_name=policy_name,
        )
        result.accesses_per_process = accesses
        # Enqueue overhead delays the *process*, not the flag: waiting
        # time for a sleeper runs to its wake-up completion.
        result.waiting_times = [depart[cpu] - arrival_times[cpu] for cpu in range(n)]
        result.flag_set_time = flag_set_time
        result.completion_time = max(depart) if depart else 0
        result.variable_accesses = variable_module.total_accesses
        result.flag_accesses = flag_module.total_accesses
        result.queued_processes = len(queued)
        return result

    def run(self, repetitions: int = 100) -> BarrierAggregate:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        label = "blocking" if self._always_queue else "queue-hybrid"
        aggregate = BarrierAggregate(
            num_processors=self.barrier.num_processors,
            interval_a=self.arrivals.interval,
            policy_name=label,
        )
        for rep in range(repetitions):
            rng = spawn_stream(self.seed, f"queue-rep-{rep}")
            aggregate.add_run(self.run_once(rng))
        return aggregate


def simulate_blocking_barrier(
    num_processors: int,
    interval_a: int,
    enqueue_overhead: int = 100,
    wakeup_overhead: int = 100,
    repetitions: int = 100,
    seed: int = 0,
) -> BarrierAggregate:
    """Pure blocking barrier at one (N, A) point."""
    barrier = BlockingBarrier(
        num_processors,
        enqueue_overhead=enqueue_overhead,
        wakeup_overhead=wakeup_overhead,
    )
    return QueueingBarrierSimulator(
        barrier, UniformArrivals(interval_a), seed=seed
    ).run(repetitions)


def simulate_threshold_barrier(
    num_processors: int,
    interval_a: int,
    inner_policy: BackoffPolicy,
    threshold: int,
    enqueue_overhead: int = 100,
    wakeup_overhead: int = 100,
    repetitions: int = 100,
    seed: int = 0,
) -> BarrierAggregate:
    """Spin-then-queue hybrid at one (N, A) point."""
    policy = ThresholdQueueBackoff(inner_policy, threshold)
    barrier = TangYewBarrier(num_processors, backoff=policy)
    return QueueingBarrierSimulator(
        barrier,
        UniformArrivals(interval_a),
        seed=seed,
        enqueue_overhead=enqueue_overhead,
        wakeup_overhead=wakeup_overhead,
    ).run(repetitions)
