"""Resource waiting with adaptive backoff (Section 8).

    "this technique can be applied to processors waiting on a resource.
    Processors waiting to access a resource can backoff testing the
    resource by an amount proportional to the number of processors
    waiting ... Adaptive techniques will likely perform much better in
    this situation than with barrier synchronizations because the
    amount of time a processor has to wait at a resource is directly
    proportional to the number of processors waiting."

Model: N processors each need a shared resource (a lock word in one
memory module) ``acquisitions`` times.  An acquisition attempt is a
network RMW against the module (denied cycles counted, as everywhere).
If the attempt is granted while the resource is free the processor
holds it for ``hold_time`` cycles and then releases it with one more
network access.  If the resource is busy the attempt fails; the lock
strategy (:mod:`repro.core.locks`) decides the retry delay — the
adaptive :class:`~repro.core.locks.BackoffLock` waits ``hold_time *
waiters_ahead`` cycles.

Metrics: network accesses per processor and makespan (time until the
last processor finishes all its acquisitions).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.barrier.arrivals import ArrivalProcess, UniformArrivals
from repro.network.module import MemoryModule
from repro.sim.rng import spawn_stream
from repro.sim.stats import RunningStats

_REQ_ACQUIRE = 0
_REQ_RELEASE = 1


@dataclass
class ResourceRunResult:
    """Outcome of one resource-contention episode."""

    num_processors: int
    strategy_name: str
    accesses_per_process: List[int] = field(default_factory=list)
    finish_times: List[int] = field(default_factory=list)
    failed_attempts: int = 0
    #: Processors that hit their lock's ``max_attempts`` bound and gave
    #: up without finishing all acquisitions (degraded outcome).
    aborted: List[int] = field(default_factory=list)

    @property
    def mean_accesses(self) -> float:
        if not self.accesses_per_process:
            return 0.0
        return sum(self.accesses_per_process) / len(self.accesses_per_process)

    @property
    def makespan(self) -> int:
        return max(self.finish_times) if self.finish_times else 0

    @property
    def degraded(self) -> bool:
        """True if any processor aborted its acquisition loop."""
        return bool(self.aborted)


@dataclass
class ResourceAggregate:
    """Aggregate over repeated resource episodes."""

    num_processors: int
    strategy_name: str
    accesses: RunningStats = field(default_factory=RunningStats)
    makespan: RunningStats = field(default_factory=RunningStats)

    def add_run(self, run: ResourceRunResult) -> None:
        self.accesses.add(run.mean_accesses)
        self.makespan.add(run.makespan)

    @property
    def mean_accesses(self) -> float:
        return self.accesses.mean

    @property
    def mean_makespan(self) -> float:
        return self.makespan.mean


class ResourceSimulator:
    """N processors contending for one resource through one module."""

    def __init__(
        self,
        num_processors: int,
        strategy,
        hold_time: int = 8,
        acquisitions: int = 1,
        arrivals: Optional[ArrivalProcess] = None,
        seed: int = 0,
    ) -> None:
        if num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if hold_time < 1:
            raise ValueError("hold_time must be >= 1")
        if acquisitions < 1:
            raise ValueError("acquisitions must be >= 1")
        self.num_processors = num_processors
        self.strategy = strategy
        self.hold_time = hold_time
        self.acquisitions = acquisitions
        self.arrivals = arrivals if arrivals is not None else UniformArrivals(0)
        self.seed = seed

    def run_once(self, rng: np.random.Generator) -> ResourceRunResult:
        n = self.num_processors
        module = MemoryModule("resource-lock")
        arrival_times = self.arrivals.draw(n, rng)

        accesses = [0] * n
        attempts = [0] * n
        remaining = [self.acquisitions] * n
        finish = [0] * n
        result = ResourceRunResult(
            num_processors=n, strategy_name=self.strategy.name
        )

        # Module grants are strictly increasing in processing order, so
        # a boolean evaluated at processing time is exactly the lock
        # state at the attempt's grant time.
        held = False
        waiters = 0  # processors that have failed and not yet acquired

        heap: List[Tuple[int, int, int, int]] = []
        seq = 0

        def push(time: int, cpu: int, kind: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, cpu, kind))
            seq += 1

        for cpu, when in enumerate(arrival_times):
            push(when, cpu, _REQ_ACQUIRE)

        waiting_flags = [False] * n

        while heap:
            ready, __, cpu, kind = heapq.heappop(heap)

            if kind == _REQ_RELEASE:
                grant, cost = module.request(ready)
                accesses[cpu] += cost
                # The lock is free once the release write is granted.
                held = False
                if remaining[cpu] > 0:
                    push(grant + 1, cpu, _REQ_ACQUIRE)
                else:
                    finish[cpu] = grant
                continue

            # _REQ_ACQUIRE: an RMW test&set against the lock word.
            grant, cost = module.request(ready)
            accesses[cpu] += cost
            if not held:
                # Acquired: hold, then release.
                held = True
                if waiting_flags[cpu]:
                    waiting_flags[cpu] = False
                    waiters -= 1
                attempts[cpu] = 0
                remaining[cpu] -= 1
                # The release write is presented when the hold ends.
                push(grant + self.hold_time, cpu, _REQ_RELEASE)
            else:
                result.failed_attempts += 1
                if not waiting_flags[cpu]:
                    waiting_flags[cpu] = True
                    waiters += 1
                attempts[cpu] += 1
                should_abort = getattr(self.strategy, "should_abort", None)
                if should_abort is not None and should_abort(attempts[cpu]):
                    # Degraded mode: the lock's attempt bound is
                    # exhausted; give up instead of spinning forever.
                    waiting_flags[cpu] = False
                    waiters -= 1
                    result.aborted.append(cpu)
                    finish[cpu] = grant
                    continue
                ahead = max(waiters - 1, 0)
                wait = max(self.strategy.retry_wait(attempts[cpu], ahead), 1)
                push(grant + wait, cpu, _REQ_ACQUIRE)

        result.accesses_per_process = accesses
        result.finish_times = finish
        return result

    def run(self, repetitions: int = 50) -> ResourceAggregate:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        aggregate = ResourceAggregate(
            num_processors=self.num_processors,
            strategy_name=self.strategy.name,
        )
        for rep in range(repetitions):
            rng = spawn_stream(self.seed, f"resource-rep-{rep}")
            aggregate.add_run(self.run_once(rng))
        return aggregate


def simulate_resource(
    num_processors: int,
    strategy,
    hold_time: int = 8,
    acquisitions: int = 1,
    interval_a: int = 0,
    repetitions: int = 50,
    seed: int = 0,
) -> ResourceAggregate:
    """Convenience wrapper for one resource-contention configuration."""
    simulator = ResourceSimulator(
        num_processors=num_processors,
        strategy=strategy,
        hold_time=hold_time,
        acquisitions=acquisitions,
        arrivals=UniformArrivals(interval_a),
        seed=seed,
    )
    return simulator.run(repetitions)
