"""The episode-backend knob: ``python`` (reference) vs ``numpy`` (batched).

The barrier simulator has two execution backends:

- ``python`` — the cycle-exact event loop in
  :mod:`repro.barrier.simulator`, the reference semantics;
- ``numpy`` — the vectorized episode kernel in
  :mod:`repro.barrier.kernel_numpy`, which simulates all episodes of a
  shard as arrays and is bit-identical to the reference loop for every
  configuration it accepts (see ``docs/vectorization.md``).

This module is the knob, not the kernel: it holds the process-global
default backend (set by the CLI ``--backend`` flag), resolves the
three-valued user-facing setting (``python`` / ``numpy`` / ``auto``)
to a concrete backend, and reports whether numpy is importable at all
— without importing numpy itself at module scope, so environments
without the ``[fast]`` extra can still ``import repro`` and run
``backend=python``.

Like :mod:`repro.exec.context`, everything here is deliberately
stdlib-only.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro._ambient import AmbientState

#: The user-facing backend settings.
BACKENDS = ("auto", "python", "numpy")

#: Ambient default, consulted when no explicit backend is given.
#: ``auto`` means: the numpy kernel when it is importable and supports
#: the configuration, the reference loop otherwise.
_default_backend = AmbientState("barrier.backend", "auto")

#: Test hook: force :func:`numpy_available` to this value when not None
#: (simulates a missing numpy without uninstalling it).
_availability_override: Optional[bool] = None


class BackendUnavailableError(RuntimeError):
    """``backend=numpy`` was requested but numpy cannot be imported."""


def numpy_available() -> bool:
    """True when the vectorized kernel's numpy import succeeded."""
    if _availability_override is not None:
        return _availability_override
    from repro.barrier import kernel_numpy

    return kernel_numpy.np is not None


def get_default_backend() -> str:
    """The ambient backend setting: this thread's innermost
    :func:`backend_context` override, else the process default."""
    return _default_backend.get()


def set_default_backend(backend: Optional[str]) -> str:
    """Install a new process-wide default; returns the previous one.

    ``None`` restores the built-in ``auto`` default.
    """
    previous = _default_backend.get_default()
    _default_backend.set(validate_backend(backend) if backend else "auto")
    return previous


@contextlib.contextmanager
def backend_context(backend: Optional[str]) -> Iterator[str]:
    """Run a block under ``backend`` as this thread's default.

    Thread-scoped so concurrent serve jobs can pin different backends."""
    value = validate_backend(backend) if backend else "auto"
    with _default_backend.scoped(value):
        yield value


def validate_backend(backend: str) -> str:
    """Check a user-supplied backend name; returns it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {', '.join(BACKENDS)}"
        )
    return backend


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend setting to a concrete ``python`` or ``numpy``.

    Precedence: an explicit ``backend`` argument wins; ``None`` falls
    back to the process default (the CLI ``--backend`` flag); ``auto``
    — from either source — picks ``numpy`` when it is importable and
    ``python`` otherwise.  Requesting ``numpy`` explicitly without
    numpy installed is an error, not a silent fallback.
    """
    choice = validate_backend(backend) if backend else get_default_backend()
    if choice == "auto":
        return "numpy" if numpy_available() else "python"
    if choice == "numpy" and not numpy_available():
        raise BackendUnavailableError(
            "backend=numpy requested but numpy is not importable; "
            "install the vectorized kernel's dependency with "
            "`pip install .[fast]` or run with backend=python"
        )
    return choice


# -- kernel usage counters ----------------------------------------------
#
# Non-digested diagnostics (like repro.exec.context.ExecStats): tests
# and the CLI use them to tell whether the vectorized kernel actually
# ran or the shard fell back to the reference loop.  They never enter
# results or tracer counters, so both backends keep identical digests.

class KernelCounters:
    """Shards served by the kernel vs handed back to the event loop."""

    def __init__(self) -> None:
        self.vectorized_shards = 0
        self.fallback_shards = 0


_counters = KernelCounters()


def get_kernel_counters() -> KernelCounters:
    return _counters


def reset_kernel_counters() -> None:
    global _counters
    _counters = KernelCounters()
