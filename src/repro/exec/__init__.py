"""Parallel, cache-aware sweep execution.

Public surface:

- :class:`ExecConfig` / :func:`execution` / :func:`get_exec_config` —
  the ambient ``--jobs`` / ``--cache`` configuration.
- :func:`validate_jobs` / :func:`jobs_arg` — the shared ``--jobs``
  validation used by every CLI subcommand.
- :class:`ExecStats` / :func:`get_stats` / :func:`reset_stats` —
  per-process counters (points, cache hits/misses/stores, shards).
- :class:`ResultCache` / :func:`cache_key` / :func:`code_digest` /
  :func:`payload_digest` — the content-addressed result cache.
- :class:`PointSpec` / :func:`execute_barrier_points` /
  :func:`shutdown_pools` — the executor itself (imported lazily: the
  engine pulls in the barrier layer, which itself reads the exec
  config, so an eager import would make package order matter).
- :class:`SupervisorConfig` / :func:`supervision` /
  :class:`RetryPolicy` / :class:`ChaosPlan` / :func:`chaos_injection`
  — the supervision layer (also lazy): worker-death recovery,
  adaptive-backoff retries, deadlines, checkpoint/resume, and the
  chaos-injection hooks.  See docs/resilience.md.
- :class:`RunPlan` / :class:`FaultOptions` / :class:`PlanOutcome` /
  :func:`execute` / :func:`resolve_exec_config` /
  :func:`validate_seed` — the declarative run-plan layer (also lazy):
  one dataclass capturing an entire run, one ``execute`` path shared
  by the CLI, the scenario matrices and the serve job runner.  See
  docs/scenarios.md.
- :func:`plan_to_json` / :func:`plan_from_json` /
  :func:`plan_cache_key` — the canonical plan serialization (the HTTP
  submission schema of ``repro serve`` and its dedupe key).  See
  docs/serving.md.

See docs/performance.md for the determinism guarantees.
"""

from __future__ import annotations

from repro.exec.cache import (
    ResultCache,
    cache_key,
    canonical_params,
    code_digest,
    payload_digest,
)
from repro.exec.context import (
    DEFAULT_CACHE_DIR,
    ExecConfig,
    ExecStats,
    execution,
    get_exec_config,
    get_stats,
    jobs_arg,
    reset_stats,
    set_exec_config,
    validate_jobs,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ChaosPlan",
    "ExecConfig",
    "ExecStats",
    "FaultOptions",
    "MAX_SEED",
    "PlanOutcome",
    "PointSpec",
    "RunPlan",
    "ResultCache",
    "RetryPolicy",
    "SupervisorConfig",
    "cache_key",
    "canonical_params",
    "chaos_injection",
    "code_digest",
    "execute",
    "execute_barrier_points",
    "execution",
    "get_exec_config",
    "get_stats",
    "get_supervisor_config",
    "jobs_arg",
    "payload_digest",
    "plan_cache_key",
    "plan_from_json",
    "plan_to_json",
    "reset_stats",
    "resolve_exec_config",
    "set_exec_config",
    "set_supervisor_config",
    "shutdown_pools",
    "supervision",
    "validate_jobs",
    "validate_seed",
]

_LAZY_ENGINE = {"PointSpec", "execute_barrier_points", "shutdown_pools"}

_LAZY_PLAN = {
    "FaultOptions",
    "MAX_SEED",
    "PlanOutcome",
    "RunPlan",
    "execute",
    "plan_cache_key",
    "plan_from_json",
    "plan_to_json",
    "resolve_exec_config",
    "validate_seed",
}

_LAZY_SUPERVISOR = {
    "ChaosPlan",
    "RetryPolicy",
    "SupervisorConfig",
    "chaos_injection",
    "get_supervisor_config",
    "set_supervisor_config",
    "supervision",
}


def __getattr__(name: str):
    if name in _LAZY_ENGINE:
        from repro.exec import engine

        return getattr(engine, name)
    if name in _LAZY_SUPERVISOR:
        from repro.exec import supervisor

        return getattr(supervisor, name)
    if name in _LAZY_PLAN:
        from repro.exec import plan

        return getattr(plan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
