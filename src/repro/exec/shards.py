"""Pool-worker entry points for parallel sweep execution.

A *shard* is a contiguous repetition range ``[rep_start, rep_stop)`` of
one (N, A, policy) sweep point.  Shards are the unit of work shipped to
:class:`concurrent.futures.ProcessPoolExecutor` workers: each worker
simulates its range and returns one compact summary tuple per episode
(see :class:`repro.barrier.metrics.EpisodeSummary`), and the parent
replays the tuples in repetition order to rebuild the aggregate
bit-for-bit.

Why this is deterministic: every repetition's RNG stream is derived
from ``(root_seed, "barrier-rep-<rep>")`` alone (:mod:`repro.sim.rng`),
so an episode's outcome does not depend on which process runs it or
what ran before it in that process.

Workers are forked from a live parent and inherit its process-global
registries — an active tracer (possibly holding an open JSONL sink), a
fault plan, an exec config.  :func:`reset_worker_state` clears all
three at shard entry so a worker can neither corrupt the parent's sink
nor recursively re-enter the exec engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.exec.context import set_exec_config
from repro.faults.plan import clear_fault_plan
from repro.obs.tracer import set_tracer


def shard_bounds(repetitions: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, repetitions)`` into at most ``shards`` contiguous ranges.

    Every range but the last has the same size (the ceiling of an even
    split), so the slowest worker gets no more than one extra episode's
    worth of imbalance per shard.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    size = -(-repetitions // shards)  # ceil division
    return [
        (start, min(start + size, repetitions))
        for start in range(0, repetitions, size)
    ]


def make_shard_task(
    num_processors: int,
    interval_a: int,
    policy: Any,
    seed: int,
    single_variable: bool,
    rep_start: int,
    rep_stop: int,
    backend: str = "python",
) -> Dict[str, Any]:
    """The picklable work order :func:`run_barrier_shard` executes.

    ``backend`` must already be resolved (``python`` or ``numpy``) —
    workers inherit whatever ambient default existed when the pool was
    forked, so deferring resolution to the worker would ignore a
    ``--backend`` flag set afterwards in the parent.
    """
    return {
        "num_processors": num_processors,
        "interval_a": interval_a,
        "policy": policy,
        "seed": seed,
        "single_variable": single_variable,
        "rep_start": rep_start,
        "rep_stop": rep_stop,
        "backend": backend,
    }


def make_tree_shard_task(
    num_processors: int,
    interval_a: int,
    policy: Any,
    seed: int,
    degree: int,
    rep_start: int,
    rep_stop: int,
    backend: str = "python",
    poll_budget: Any = None,
    timeout_cycles: Any = None,
) -> Dict[str, Any]:
    """The picklable work order :func:`run_tree_shard` executes.

    The combining-tree analogue of :func:`make_shard_task`; ``backend``
    must already be resolved in the parent for the same reason.
    """
    return {
        "num_processors": num_processors,
        "interval_a": interval_a,
        "policy": policy,
        "seed": seed,
        "degree": degree,
        "rep_start": rep_start,
        "rep_stop": rep_stop,
        "backend": backend,
        "poll_budget": poll_budget,
        "timeout_cycles": timeout_cycles,
    }


def reset_worker_state() -> None:
    """Drop registries a forked worker inherited from its parent."""
    # Imported here for the same package-initialisation reason as the
    # simulator import below: supervisor pulls in exec.context.
    from repro._ambient import reset_thread_overrides
    from repro.exec.supervisor import set_chaos_plan, set_supervisor_config

    # A forked worker's main thread is a snapshot of the submitting
    # thread, so thread-scoped overrides (a serve job's tracer/config)
    # must be dropped along with the process defaults.
    reset_thread_overrides()
    set_tracer(None)
    clear_fault_plan()
    set_exec_config(None)
    set_supervisor_config(None)
    set_chaos_plan(None)


def run_experiment_point(task: Dict[str, Any]) -> Any:
    """Execute one registry experiment point; returns its JSON payload.

    The unit of work for :func:`repro.exec.engine
    .execute_experiment_points`: the worker looks the spec up in its
    own registry (specs hold callables, so the task ships only the
    experiment id and the point kwargs) and returns the JSON-native
    payload ``run_point`` produced, round-tripped through strict JSON
    so pool, cache and inline paths hand the aggregate the same object.
    """
    reset_worker_state()
    from repro.exec.cache import canonical_payload
    from repro.registry.spec import get_spec

    spec = get_spec(task["experiment_id"])
    return canonical_payload(spec.run_point(**task["kwargs"]))


def run_barrier_shard(task: Dict[str, Any]) -> List[tuple]:
    """Simulate one barrier shard; returns episode-summary tuples.

    Top-level by design: pool workers receive this function by
    reference, so it must be importable, not a closure.
    """
    reset_worker_state()
    # Imported here, not at module top: repro.barrier.simulator imports
    # repro.exec.context, so a top-level import would make package
    # initialisation order-dependent.
    from repro.barrier.simulator import build_simulator

    simulator = build_simulator(
        task["num_processors"],
        task["interval_a"],
        task["policy"],
        seed=task["seed"],
        single_variable=task["single_variable"],
    )
    summaries = simulator.run_shard(
        task["rep_start"],
        task["rep_stop"],
        backend=task.get("backend", "python"),
    )
    return [summary.as_tuple() for summary in summaries]


def run_tree_shard(task: Dict[str, Any]) -> List[tuple]:
    """Simulate one combining-tree shard; returns episode-summary tuples.

    Top-level and lazily importing for the same reasons as
    :func:`run_barrier_shard`.
    """
    reset_worker_state()
    from repro.barrier.tree import build_tree_simulator

    simulator = build_tree_simulator(
        task["num_processors"],
        task["interval_a"],
        task["policy"],
        degree=task["degree"],
        seed=task["seed"],
        poll_budget=task.get("poll_budget"),
        timeout_cycles=task.get("timeout_cycles"),
    )
    summaries = simulator.run_shard(
        task["rep_start"],
        task["rep_stop"],
        backend=task.get("backend", "python"),
    )
    return [summary.as_tuple() for summary in summaries]
