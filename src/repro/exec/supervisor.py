"""Supervised execution: the crash-proofing layer under the exec engine.

The paper's thesis is that synchronization should degrade gracefully
under contention and failure-like delay; this module applies the same
discipline to the execution substrate itself.  It provides the four
recovery primitives every dispatch path shares:

1. :func:`run_supervised` — fan picklable tasks across a worker pool
   and *survive the pool*: a killed worker (``BrokenProcessPool``) is
   detected, the pool is respawned, and only the lost tasks are
   re-dispatched.  Name-keyed RNG streams make the re-run bit-identical
   to an undisturbed one, so supervision never changes a result, only
   whether one arrives.
2. :class:`RetryPolicy` — bounded per-point retries whose wait schedule
   is driven by the repository's *own* backoff policies
   (:mod:`repro.core.backoff`): the paper's exponential/linear adaptive
   backoff, dogfooded as the retry scheduler.  The legacy faults-runner
   schedule (``base * 2**(n-1)``) is exactly
   ``RetryPolicy(ExponentialFlagBackoff(base=2), base_seconds=base)``.
3. :func:`time_limit` / per-task deadlines — each attempt is bounded by
   ``SIGALRM`` on platforms that have it, **on the main thread only**;
   elsewhere the block runs unbounded and the fallback is recorded on
   the ``exec.deadline_unenforced`` counter (see docs/resilience.md).
   Pool workers run tasks on their own main thread, so worker-side
   deadlines always engage on POSIX.
4. :class:`CheckpointStore` / :class:`PointRecord` — atomic,
   digest-verified per-point checkpoints (moved here from
   :mod:`repro.faults.runner`, which re-exports them), so *every*
   registry experiment — not just the faults CLI — can resume a crashed
   sweep from disk.  A truncated or hand-edited record reads as absent
   and is recomputed, never trusted.

Chaos testing hooks live here too: a :class:`ChaosPlan` installed via
:func:`chaos_injection` marks selected task submissions for worker
suicide (``SIGKILL``) or a pre-task hang, which is how
``python -m repro chaos`` and the test suite exercise the recovery
paths deterministically.

Observability contract: everything supervision does is counted on the
ambient tracer under the ``exec.`` prefix (``exec.retries``,
``exec.worker_deaths``, ``exec.points_resumed``,
``exec.deadline_unenforced``; the cache adds
``exec.cache_quarantined``) and mirrored into
:class:`repro.exec.context.ExecStats`.  ``exec.*`` counters are
excluded from the manifest's deterministic digest
(:mod:`repro.obs.manifest`): recovery describes how a result was
*obtained*, never what it *is*, so a run that survived a crash digests
identically to one that never saw it.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import shutil
import signal
import threading
import time
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.backoff import (
    BackoffPolicy,
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
)
from repro._ambient import AmbientState
from repro.exec.context import get_stats
from repro.obs.manifest import git_revision, jsonable
from repro.obs.tracer import get_tracer

#: Checkpoint schema version; bump when the on-disk layout changes.
CHECKPOINT_VERSION = 1

COMPLETED = "completed"
DEGRADED = "degraded"
FAILED = "failed"


class PointTimeoutError(RuntimeError):
    """A sweep point exceeded its wall-clock budget."""


class CheckpointMismatchError(RuntimeError):
    """The checkpoint on disk was written by a different configuration."""


class SupervisionError(RuntimeError):
    """Supervised execution exhausted its recovery budget."""


# -- deadlines ----------------------------------------------------------


def deadline_enforceable() -> bool:
    """True when :func:`time_limit` can actually bound the wall clock.

    Requires ``SIGALRM`` (POSIX) *and* the calling thread to be the
    main thread — ``signal.setitimer`` raises elsewhere.  Pool workers
    run their tasks on the worker's main thread, so worker-side
    deadlines are enforceable whenever the platform has ``SIGALRM``.
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Bound the block's wall clock; raises :class:`PointTimeoutError`.

    Uses ``SIGALRM``, so it only engages on the main thread of a
    platform that has it.  Elsewhere the block runs unbounded — the
    documented fallback: retries and checkpointing still apply, the
    deadline alone degrades, and the degradation is recorded once per
    attempt on the ``exec.deadline_unenforced`` counter so it is
    observable rather than silent.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    if not deadline_enforceable():
        get_tracer().count("exec.deadline_unenforced")
        yield
        return

    def _expired(signum, frame):
        raise PointTimeoutError(
            f"point exceeded its wall-clock budget of {seconds:g}s"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- retry scheduling ----------------------------------------------------


def parse_backoff_spec(spec: str) -> BackoffPolicy:
    """A backoff policy from a retry-schedule spec string.

    Accepted forms: ``exponential`` (base 2), ``exponential:base=B``,
    ``linear`` (step 1), ``linear:step=S``, and ``none`` (retry
    immediately).  These are the paper's own policies
    (:mod:`repro.core.backoff`) reused as retry-wait shapes.
    """
    name, _, rest = spec.partition(":")
    options: Dict[str, int] = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad retry-policy option {item!r} (expected KEY=VALUE)"
                )
            try:
                options[key.strip()] = int(value)
            except ValueError:
                raise ValueError(
                    f"retry-policy option {key.strip()!r} must be an "
                    f"integer, got {value!r}"
                ) from None
    name = name.strip()
    try:
        if name == "exponential":
            return ExponentialFlagBackoff(base=options.pop("base", 2))
        if name == "linear":
            return LinearFlagBackoff(step=options.pop("step", 1))
        if name == "none":
            options.pop("base", None)  # tolerated, meaningless
            return NoBackoff()
    finally:
        if options:
            raise ValueError(
                f"unknown retry-policy option(s) {sorted(options)} "
                f"for {name!r}"
            )
    raise ValueError(
        f"unknown retry policy {name!r} (expected exponential, linear "
        "or none)"
    )


class RetryPolicy:
    """A retry-wait schedule built from a repository backoff policy.

    ``wait_seconds(failures)`` is the sleep before re-dispatching a
    point that has failed ``failures`` times, scaled so the policy's
    first wait equals ``base_seconds``:

    - ``ExponentialFlagBackoff(base=2)`` → ``base * 2**(n-1)`` —
      exactly the faults runner's historical schedule;
    - ``LinearFlagBackoff(step=s)`` → ``base * n``;
    - ``NoBackoff`` → ``0`` (immediate retry).

    ``cap_seconds`` bounds the wait the same way the paper's policies
    cap their cycle counts, so a deep retry cannot sleep unboundedly.
    """

    def __init__(
        self,
        policy: Optional[BackoffPolicy] = None,
        base_seconds: float = 0.05,
        cap_seconds: float = 30.0,
    ) -> None:
        if base_seconds < 0:
            raise ValueError("base_seconds must be non-negative")
        if cap_seconds <= 0:
            raise ValueError("cap_seconds must be positive")
        self.policy = policy if policy is not None else ExponentialFlagBackoff()
        self.base_seconds = float(base_seconds)
        self.cap_seconds = float(cap_seconds)

    @classmethod
    def from_spec(
        cls,
        spec: str,
        base_seconds: float = 0.05,
        cap_seconds: float = 30.0,
    ) -> "RetryPolicy":
        return cls(
            parse_backoff_spec(spec),
            base_seconds=base_seconds,
            cap_seconds=cap_seconds,
        )

    def wait_seconds(self, failures: int) -> float:
        """Sleep before the retry that follows failure number ``failures``."""
        if failures < 1:
            raise ValueError("failures must be >= 1")
        raw = self.policy.flag_wait(failures)
        if raw <= 0:
            return 0.0
        unit = self.policy.flag_wait(1)
        scaled = self.base_seconds * (raw / unit if unit > 0 else 1.0)
        return min(scaled, self.cap_seconds)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy({self.policy!r}, base_seconds={self.base_seconds}, "
            f"cap_seconds={self.cap_seconds})"
        )


# -- supervisor configuration -------------------------------------------


@dataclass(frozen=True)
class SupervisorConfig:
    """How supervised execution recovers: retries, deadlines, checkpoints.

    The ambient analogue of :class:`repro.exec.context.ExecConfig`: the
    CLI installs one for the duration of a command via
    :func:`supervision` and the exec engine reads it through
    :func:`get_supervisor_config`.  The default survives worker death
    (``respawns=2``) but adds nothing else — no retries, no deadline,
    no checkpointing — so an unconfigured run takes the historical code
    path with zero measurable overhead.
    """

    #: Per-point retry budget for task failures (exceptions, timeouts).
    retries: int = 0
    #: Per-attempt wall-clock budget in seconds (None = unbounded).
    deadline_seconds: Optional[float] = None
    #: Retry-wait schedule spec (see :func:`parse_backoff_spec`).
    backoff: str = "exponential"
    #: First retry wait in seconds; the schedule scales from here.
    backoff_base_seconds: float = 0.05
    #: Upper bound on any single retry wait.
    backoff_cap_seconds: float = 30.0
    #: Pool respawn budget per fan-out after worker death.
    respawns: int = 2
    #: Per-point checkpoint directory (None = no checkpointing).
    checkpoint_dir: Optional[str] = None
    #: Load compatible records from ``checkpoint_dir`` before running.
    resume: bool = False

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.respawns < 0:
            raise ValueError(f"respawns must be >= 0, got {self.respawns}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        parse_backoff_spec(self.backoff)  # fail at construction, not mid-sweep

    @property
    def active(self) -> bool:
        """True when this config changes behavior beyond the default."""
        return bool(
            self.retries
            or self.deadline_seconds
            or self.checkpoint_dir
        )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy.from_spec(
            self.backoff,
            base_seconds=self.backoff_base_seconds,
            cap_seconds=self.backoff_cap_seconds,
        )


#: The recover-worker-death-only default every process starts with.
DEFAULT_SUPERVISOR = SupervisorConfig()

_active = AmbientState("exec.supervisor", DEFAULT_SUPERVISOR)


def get_supervisor_config() -> SupervisorConfig:
    """The active supervisor config: this thread's innermost
    :func:`supervision` override, else the process default."""
    return _active.get()


def set_supervisor_config(
    config: Optional[SupervisorConfig],
) -> SupervisorConfig:
    """Install the process-wide default; returns the previous one
    (None = default)."""
    previous = _active.get_default()
    _active.set(config if config is not None else DEFAULT_SUPERVISOR)
    return previous


@contextmanager
def supervision(config: SupervisorConfig) -> Iterator[SupervisorConfig]:
    """Context manager: install ``config`` for the duration of the block.

    Thread-scoped, so each serve job thread supervises its own run."""
    with _active.scoped(config if config is not None else DEFAULT_SUPERVISOR):
        yield config


# -- chaos injection -----------------------------------------------------


@dataclass
class ChaosPlan:
    """Deterministic mid-sweep failures for the chaos harness.

    ``kill_workers`` first-attempt task submissions are marked for
    worker suicide (the worker ``SIGKILL``s itself before touching the
    task — the parent observes a broken pool exactly as if the OOM
    killer struck); ``hang_points`` further submissions sleep
    ``hang_seconds`` before working, which a configured deadline then
    cuts short.  Victims are the first distinct task keys submitted, so
    a plan is reproducible for a fixed sweep; each key suffers at most
    one chaos effect, and a re-dispatched task is never re-killed —
    recovery must be able to finish.
    """

    kill_workers: int = 0
    hang_points: int = 0
    hang_seconds: float = 30.0
    seed: int = 0
    _killed: Set[Any] = field(default_factory=set, repr=False)
    _hung: Set[Any] = field(default_factory=set, repr=False)

    def claim_kill(self, key: Any) -> bool:
        if len(self._killed) >= self.kill_workers or key in self._killed:
            return False
        if key in self._hung:
            return False
        self._killed.add(key)
        return True

    def claim_hang(self, key: Any) -> bool:
        if len(self._hung) >= self.hang_points or key in self._hung:
            return False
        if key in self._killed:
            return False
        self._hung.add(key)
        return True

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kill_workers": self.kill_workers,
            "killed": sorted(str(k) for k in self._killed),
            "hang_points": self.hang_points,
            "hung": sorted(str(k) for k in self._hung),
        }


_chaos: Optional[ChaosPlan] = None


def get_chaos_plan() -> Optional[ChaosPlan]:
    """The installed chaos plan, or None (the overwhelmingly common case)."""
    return _chaos


def set_chaos_plan(plan: Optional[ChaosPlan]) -> Optional[ChaosPlan]:
    global _chaos
    previous = _chaos
    _chaos = plan
    return previous


@contextmanager
def chaos_injection(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """Context manager: install ``plan`` for the duration of the block."""
    previous = set_chaos_plan(plan)
    try:
        yield plan
    finally:
        set_chaos_plan(previous)


# -- worker entry --------------------------------------------------------

#: Task entry points by name; tasks ship the *name*, workers resolve it
#: locally, so task dicts stay small and import order stays lazy.
_ENTRIES: Dict[str, str] = {
    "barrier_shard": "repro.exec.shards:run_barrier_shard",
    "tree_shard": "repro.exec.shards:run_tree_shard",
    "experiment_point": "repro.exec.shards:run_experiment_point",
    "fault_point": "repro.faults.runner:run_fault_point_task",
}


def register_entry(name: str, target: str) -> None:
    """Register a supervised task entry (``target`` = "module:callable").

    The extension hook tests and future runners use to route their own
    work through :func:`run_supervised`.
    """
    if ":" not in target:
        raise ValueError(f"target must be 'module:callable', got {target!r}")
    _ENTRIES[name] = target


def _resolve_entry(name: str) -> Callable[[Any], Any]:
    try:
        target = _ENTRIES[name]
    except KeyError:
        raise ValueError(f"unknown supervised entry {name!r}") from None
    module_name, _, attr = target.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def run_supervised_task(task: Dict[str, Any]) -> Any:
    """Pool-worker entry for every supervised task.

    Applies the chaos markers (worker suicide / pre-task hang) and the
    per-attempt deadline, then dispatches to the named entry.  Both the
    hang and the real work run *inside* the deadline, which is how a
    hung point is cut short instead of stalling the sweep.
    """
    if task.get("chaos_kill"):
        os.kill(os.getpid(), signal.SIGKILL)
    entry = _resolve_entry(task["entry"])
    with time_limit(task.get("deadline_seconds")):
        hang = task.get("chaos_hang_seconds")
        if hang:
            time.sleep(hang)
        return entry(task["payload"])


# -- supervised fan-out --------------------------------------------------


@dataclass
class SupervisionOutcome:
    """What supervised fan-out produced, and what it took to get there."""

    #: Per-key results, for every key that eventually succeeded.
    results: Dict[Any, Any] = field(default_factory=dict)
    #: Per-key terminal failures (the original exception), after retries.
    errors: Dict[Any, BaseException] = field(default_factory=dict)
    #: Attempts actually charged to each key (worker death not counted).
    attempts: Dict[Any, int] = field(default_factory=dict)
    worker_deaths: int = 0
    retries: int = 0

    def raise_first_error(self, keys: Any) -> None:
        """Re-raise the first error in ``keys`` order, if any."""
        for key in keys:
            if key in self.errors:
                raise self.errors[key]


def run_supervised(
    tasks: Dict[Any, Any],
    *,
    entry: str,
    get_pool: Callable[[], Any],
    discard_pool: Callable[[], None],
    config: Optional[SupervisorConfig] = None,
    on_result: Optional[Callable[[Any, Any], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> SupervisionOutcome:
    """Fan ``tasks`` (key → picklable payload) across a supervised pool.

    The single fan-out primitive behind the exec engine and the faults
    runner.  Work proceeds in rounds: every pending key is submitted,
    results are collected, and three failure classes are handled
    distinctly —

    - **worker death** (``BrokenProcessPool``): the pool is discarded
      and respawned via ``discard_pool``/``get_pool``, and only the
      keys whose futures were lost are re-dispatched.  Bounded by
      ``config.respawns`` per call; the attempt is *not* charged to the
      point (infrastructure failed, not the point).
    - **task failure** (any exception out of the task, including
      :class:`PointTimeoutError` from a worker-side deadline): retried
      up to ``config.retries`` times, waiting out the
      :class:`RetryPolicy` schedule between rounds; afterwards the
      original exception lands in ``outcome.errors``.
    - **interrupt** (``KeyboardInterrupt``/``SystemExit``): propagates
      immediately; completed results up to that point were already
      delivered through ``on_result``.

    ``on_result(key, value)`` fires as soon as a key succeeds — the
    checkpoint hook, so a crash after N points preserves N points.
    """
    if config is None:
        config = get_supervisor_config()
    policy = config.retry_policy()
    tracer = get_tracer()
    stats = get_stats()
    chaos = get_chaos_plan()
    outcome = SupervisionOutcome(attempts={key: 0 for key in tasks})
    respawns_left = config.respawns
    pending: List[Any] = list(tasks)

    while pending:
        pool = get_pool()
        round_keys, pending = pending, []
        futures: Dict[Any, Any] = {}
        submit_lost: List[Any] = []
        for position, key in enumerate(round_keys):
            task: Dict[str, Any] = {"entry": entry, "payload": tasks[key]}
            if config.deadline_seconds:
                task["deadline_seconds"] = config.deadline_seconds
            if chaos is not None and outcome.attempts[key] == 0:
                if chaos.claim_kill(key):
                    task["chaos_kill"] = True
                elif chaos.claim_hang(key):
                    task["chaos_hang_seconds"] = chaos.hang_seconds
            outcome.attempts[key] += 1
            try:
                futures[pool.submit(run_supervised_task, task)] = key
            except (BrokenExecutor, RuntimeError):
                # The pool broke under us mid-submission; everything
                # not yet submitted in this round is lost with it.
                submit_lost = round_keys[position:]
                outcome.attempts[key] -= 1
                break

        lost: List[Any] = list(submit_lost)
        retry_keys: List[Any] = []
        for future, key in futures.items():
            try:
                result = future.result()
            except BrokenExecutor:
                # The worker running (or queued to run) this key died;
                # infrastructure failure, so no attempt is charged.
                outcome.attempts[key] -= 1
                lost.append(key)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 - supervision boundary
                if outcome.attempts[key] <= config.retries:
                    retry_keys.append(key)
                else:
                    outcome.errors[key] = error
            else:
                outcome.results[key] = result
                if on_result is not None:
                    on_result(key, result)

        if lost:
            outcome.worker_deaths += 1
            stats.worker_deaths += 1
            tracer.count("exec.worker_deaths")
            discard_pool()
            if respawns_left <= 0:
                raise SupervisionError(
                    f"worker pool died {outcome.worker_deaths} time(s) and "
                    f"the respawn budget ({config.respawns}) is exhausted; "
                    f"{len(lost)} task(s) were never completed"
                )
            respawns_left -= 1

        if retry_keys:
            outcome.retries += len(retry_keys)
            stats.retries += len(retry_keys)
            tracer.count("exec.retries", len(retry_keys))
            wait = max(
                policy.wait_seconds(outcome.attempts[key])
                for key in retry_keys
            )
            if wait > 0:
                sleep(wait)

        # Lost keys first: they were in flight before the retries were.
        pending = lost + retry_keys

    return outcome


def call_supervised(
    fn: Callable[[], Any],
    *,
    config: Optional[SupervisorConfig] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Run ``fn`` inline under the retry/deadline discipline.

    The serial (``jobs=1``) counterpart of :func:`run_supervised`, so a
    ``--retries``/``--deadline`` surface behaves identically whether or
    not a pool is involved.  With the default config this is a plain
    call — no wrapper state, no overhead.
    """
    if config is None:
        config = get_supervisor_config()
    if not config.retries and not config.deadline_seconds:
        return fn()
    policy = config.retry_policy()
    tracer = get_tracer()
    stats = get_stats()
    for attempt in range(1, config.retries + 2):
        try:
            with time_limit(config.deadline_seconds):
                return fn()
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            if attempt > config.retries:
                raise
            stats.retries += 1
            tracer.count("exec.retries")
            sleep(policy.wait_seconds(attempt))
    raise AssertionError("unreachable")  # pragma: no cover


# -- durable per-point records (checkpoint/resume) -----------------------


@dataclass
class PointRecord:
    """The durable outcome of one sweep point."""

    key: str
    status: str
    attempts: int = 1
    wall_time_seconds: float = 0.0
    data: Any = None
    fault_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "version": CHECKPOINT_VERSION,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_seconds": self.wall_time_seconds,
            "data": jsonable(self.data),
            "fault_counts": jsonable(self.fault_counts),
            "error": self.error,
        }
        payload["digest"] = record_digest(payload)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PointRecord":
        return cls(
            key=payload["key"],
            status=payload["status"],
            attempts=payload.get("attempts", 1),
            wall_time_seconds=payload.get("wall_time_seconds", 0.0),
            data=payload.get("data"),
            fault_counts=payload.get("fault_counts", {}) or {},
            error=payload.get("error"),
        )

    @property
    def done(self) -> bool:
        """True if this point never needs to run again."""
        return self.status in (COMPLETED, DEGRADED)


def record_digest(payload: Dict[str, Any]) -> str:
    """Integrity digest over the fields that make a record meaningful."""
    deterministic = {
        "key": payload["key"],
        "status": payload["status"],
        "data": payload.get("data"),
        "fault_counts": payload.get("fault_counts", {}),
    }
    blob = json.dumps(deterministic, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def safe_filename(key: str) -> str:
    return "".join(c if c.isalnum() or c in "-._=" else "_" for c in key)


def config_digest(payload: Dict[str, Any]) -> str:
    """Digest identifying a checkpoint's configuration (experiment,
    plan, seed, point set); a mismatch means the directory belongs to a
    different sweep."""
    blob = json.dumps(jsonable(payload), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Directory-backed per-point checkpoints for one sweep."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.points_dir = os.path.join(self.directory, "points")
        self.meta_path = os.path.join(self.directory, "checkpoint.json")

    def clear(self) -> None:
        """Delete the checkpoint (start the sweep from scratch)."""
        if os.path.isdir(self.directory):
            shutil.rmtree(self.directory)

    def _ensure_dirs(self) -> None:
        os.makedirs(self.points_dir, exist_ok=True)

    def write_meta(self, meta: Dict[str, Any]) -> None:
        self._ensure_dirs()
        payload = dict(meta)
        payload["version"] = CHECKPOINT_VERSION
        payload["git_rev"] = git_revision()
        with open(self.meta_path, "w", encoding="utf-8") as handle:
            json.dump(jsonable(payload), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def load(self, config_digest: str) -> Dict[str, PointRecord]:
        """Completed/degraded/failed points recorded by a prior run.

        Raises:
            CheckpointMismatchError: the directory holds a checkpoint
                for a different configuration (different experiment,
                plan, seed or point set).  Pass ``fresh=True`` (CLI:
                ``--fresh``) to discard it instead.
        """
        if not os.path.isfile(self.meta_path):
            return {}
        with open(self.meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        recorded = meta.get("config_digest")
        if recorded != config_digest:
            raise CheckpointMismatchError(
                f"checkpoint at {self.directory!r} was written by a different "
                f"configuration (digest {recorded!r} != {config_digest!r}); "
                "rerun with fresh=True / --fresh to discard it"
            )
        records: Dict[str, PointRecord] = {}
        if os.path.isdir(self.points_dir):
            for filename in sorted(os.listdir(self.points_dir)):
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(self.points_dir, filename)
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    if payload.get("digest") != record_digest(payload):
                        continue  # corrupt or hand-edited: recompute it
                    record = PointRecord.from_dict(payload)
                except (OSError, ValueError, KeyError):
                    continue  # a torn write from a crash: recompute it
                records[record.key] = record
        return records

    def save_point(self, record: PointRecord) -> str:
        self._ensure_dirs()
        path = os.path.join(
            self.points_dir, f"{safe_filename(record.key)}.json"
        )
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(record.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)  # atomic: a crash never tears a point
        return path


def open_experiment_checkpoint(
    experiment_id: str,
    points: Dict[str, dict],
    seed: int,
    config: SupervisorConfig,
) -> Tuple[CheckpointStore, Dict[str, PointRecord]]:
    """The universal checkpoint for one registry experiment's point set.

    Called by :func:`repro.exec.engine.execute_experiment_points` when
    ``config.checkpoint_dir`` is set: every registry experiment — not
    just the faults runner — gains ``--checkpoint-dir``/``--resume``.
    Without ``resume`` any prior checkpoint in the directory is
    discarded; with it, records whose configuration digest matches are
    loaded (a mismatch raises :class:`CheckpointMismatchError` rather
    than silently mixing sweeps) and digest-verified point-by-point.
    """
    digest = config_digest(
        {
            "kind": "experiment",
            "experiment_id": experiment_id,
            "seed": seed,
            "points": {key: kwargs for key, kwargs in points.items()},
        }
    )
    store = CheckpointStore(config.checkpoint_dir)
    if config.resume:
        existing = store.load(digest)
    else:
        store.clear()
        existing = {}
    store.write_meta(
        {
            "experiment_id": experiment_id,
            "seed": seed,
            "config_digest": digest,
            "points": sorted(points),
        }
    )
    return store, existing
