"""The parallel, cache-aware sweep executor.

:func:`execute_barrier_points` takes a batch of (N, A, policy) sweep
points and returns their :class:`~repro.barrier.metrics.BarrierAggregate`
results, bit-identical to the serial loop, by combining three paths:

1. **Cache** — with ``ExecConfig.cache`` on, each point's episode
   summaries are looked up by content address (experiment id,
   canonical params, seed, code digest; :mod:`repro.exec.cache`) and
   replayed through the aggregate on a hit — no simulation at all.
2. **Pool** — with ``jobs > 1``, missed points are split into
   repetition shards (:mod:`repro.exec.shards`) and fanned across a
   shared :class:`~concurrent.futures.ProcessPoolExecutor`; the parent
   replays each point's summaries in repetition order, which rebuilds
   the exact accumulator state of the serial path.
3. **Inline** — ``jobs == 1`` (cache-only mode) and *stateful*
   policies (``policy.stateful``, e.g. randomized backoff, whose draws
   depend on everything simulated before them) run serially in the
   parent, in submission order, and stateful results are never cached.

Observability contract: while the engine owns a point, simulator-level
tracing is suppressed (workers carry no tracer; inline execution runs
under the null tracer) and the engine emits exactly one ``exec.point``
event per point to the caller's tracer.  Every execution mode thus
produces the same event kinds and counts, so a run's deterministic
manifest digest is identical whether the work was simulated cold,
sharded across any number of workers, or replayed from a warm cache.
Cache hit/miss totals go to :class:`repro.exec.context.ExecStats` (and
the manifest's non-digested ``execution`` section), never to tracer
counters, for the same reason.

Resilience: every pool dispatch goes through
:func:`repro.exec.supervisor.run_supervised`, so a killed worker
(``BrokenProcessPool``) respawns the pool and re-dispatches only the
lost tasks — name-keyed RNG streams make the replay bit-identical — and
an ambient :class:`~repro.exec.supervisor.SupervisorConfig` adds
bounded adaptive-backoff retries, per-attempt deadlines, and (for
registry points) durable checkpoint/resume.  Inline execution honours
the same retry/deadline discipline via
:func:`~repro.exec.supervisor.call_supervised`.  With the default
config all of this is dormant: no retries, no deadline, no checkpoint
I/O — just worker-death recovery, which costs nothing until a worker
actually dies.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.barrier.backend import resolve_backend
from repro.barrier.metrics import (
    BarrierAggregate,
    EpisodeSummary,
    aggregate_from_summaries,
)
from repro.exec.cache import ResultCache, cache_key, canonical_payload
from repro.exec.context import (
    DEFAULT_CONFIG,
    ExecConfig,
    execution,
    get_exec_config,
    get_stats,
)
from repro.exec.shards import make_shard_task, make_tree_shard_task, shard_bounds
from repro.exec.supervisor import (
    COMPLETED,
    PointRecord,
    call_supervised,
    get_supervisor_config,
    open_experiment_checkpoint,
    run_supervised,
)
from repro.obs.tracer import NULL_TRACER, get_tracer, tracing

#: Experiment id under which barrier sweep points are cached.
BARRIER_KIND = "barrier"

#: Cache-key namespace prefix for registry experiment points.
EXPERIMENT_KIND = "experiment"


@dataclass
class PointSpec:
    """One (N, A, policy) sweep point, as ``simulate_barrier`` takes it."""

    num_processors: int
    interval_a: int
    policy: Any
    repetitions: int = 100
    seed: int = 0
    single_variable: bool = False
    #: Episode engine (``python`` / ``numpy`` / ``auto``; None defers
    #: to the process default).  Deliberately NOT part of ``params()``:
    #: backends are bit-identical, so both share one cache entry and a
    #: warm cache serves either backend's request.
    backend: Optional[str] = None
    #: Set to run a combining-tree barrier point instead of a flat one
    #: (``simulate_tree_barrier``); ``single_variable`` is then ignored.
    tree_degree: Optional[int] = None
    #: Degraded-mode bounds, forwarded to the barrier when set.
    poll_budget: Optional[int] = None
    timeout_cycles: Optional[int] = None

    def params(self) -> Dict[str, Any]:
        """The canonicalizable parameter dict used in the cache key.

        Tree and degraded-mode fields enter the key only when set, so
        every pre-existing flat point keeps its original address and a
        cache warmed before trees existed stays valid.
        """
        params: Dict[str, Any] = {
            "num_processors": self.num_processors,
            "interval_a": self.interval_a,
            "repetitions": self.repetitions,
            "single_variable": self.single_variable,
            "policy": policy_fingerprint(self.policy),
        }
        if self.tree_degree is not None:
            params["tree_degree"] = self.tree_degree
        if self.poll_budget is not None:
            params["poll_budget"] = self.poll_budget
        if self.timeout_cycles is not None:
            params["timeout_cycles"] = self.timeout_cycles
        return params

    @property
    def policy_label(self) -> str:
        """The label the aggregate carries (mirrors the simulators)."""
        if self.tree_degree is not None:
            return f"tree-{self.tree_degree}/{self.policy.name}"
        return self.policy.name


def policy_fingerprint(policy: Any) -> Dict[str, Any]:
    """A structural identity for a policy, for cache keying.

    ``repr`` alone is not enough (some reprs omit inherited parameters,
    e.g. ``LinearFlagBackoff`` hides its variable-backoff multiplier),
    so the fingerprint combines the class name, the repr, and every
    public instance attribute rendered via ``repr`` (nested policies
    fingerprint through their own reprs).
    """
    state = {
        key: repr(value)
        for key, value in sorted(vars(policy).items())
        if not key.startswith("_")
    }
    return {
        "class": type(policy).__name__,
        "repr": repr(policy),
        "state": state,
    }


# -- worker pools -------------------------------------------------------

_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """A shared pool with ``jobs`` workers, created on first use."""
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = _POOLS[jobs] = ProcessPoolExecutor(max_workers=jobs)
    return pool


def _discard_pool(jobs: int) -> None:
    """Drop (and tear down) the cached pool for ``jobs`` workers.

    Called by supervision after worker death: a broken
    ``ProcessPoolExecutor`` can never be reused, so it must leave the
    cache or every later ``_get_pool`` would hand back a corpse.  The
    shutdown does not wait — the remaining workers of a broken pool are
    already dead or dying.
    """
    pool = _POOLS.pop(jobs, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools(wait: bool = True) -> None:
    """Shut down every worker pool the engine has created.

    Registered with ``atexit`` and called by the CLI's
    ``KeyboardInterrupt`` handler (with ``wait=False``, which is
    signal-safe: it only flags the executors and releases their worker
    processes without blocking on them).
    """
    while _POOLS:
        __, pool = _POOLS.popitem()
        pool.shutdown(wait=wait, cancel_futures=True)


atexit.register(shutdown_pools)


# -- execution ----------------------------------------------------------


def _cache_payload(spec: PointSpec, summaries: List[EpisodeSummary]) -> dict:
    return {
        "num_processors": spec.num_processors,
        "interval_a": spec.interval_a,
        "policy_name": spec.policy_label,
        "summaries": [summary.as_tuple() for summary in summaries],
    }


def _replay_payload(spec: PointSpec, payload: dict) -> BarrierAggregate:
    return aggregate_from_summaries(
        spec.num_processors,
        spec.interval_a,
        spec.policy_label,
        (EpisodeSummary.from_tuple(t) for t in payload["summaries"]),
    )


def _emit_point(tracer, spec: PointSpec, source: str, shards: int) -> None:
    if not tracer.enabled:
        return
    # One event per point in every mode; only the fields (which do not
    # enter the deterministic digest) say how the point was satisfied.
    tracer.emit(
        "exec.point",
        n=spec.num_processors,
        interval_a=spec.interval_a,
        policy=spec.policy_label,
        repetitions=spec.repetitions,
        source=source,
        shards=shards,
    )


def _run_point_inline(spec: PointSpec) -> List[EpisodeSummary]:
    """Simulate a whole point serially, with simulator tracing off."""
    if spec.tree_degree is not None:
        from repro.barrier.tree import build_tree_simulator

        simulator = build_tree_simulator(
            spec.num_processors,
            spec.interval_a,
            spec.policy,
            degree=spec.tree_degree,
            seed=spec.seed,
            poll_budget=spec.poll_budget,
            timeout_cycles=spec.timeout_cycles,
        )
    else:
        from repro.barrier.simulator import build_simulator

        simulator = build_simulator(
            spec.num_processors,
            spec.interval_a,
            spec.policy,
            seed=spec.seed,
            single_variable=spec.single_variable,
        )
    with tracing(NULL_TRACER):
        return simulator.run_shard(0, spec.repetitions, backend=spec.backend)


def execute_barrier_points(
    specs: List[PointSpec], config: Optional[ExecConfig] = None
) -> List[BarrierAggregate]:
    """Execute sweep points under ``config``; results in ``specs`` order.

    The ambient config (:func:`repro.exec.context.get_exec_config`) is
    used when ``config`` is None.
    """
    if config is None:
        config = get_exec_config()
    stats = get_stats()
    tracer = get_tracer()
    cache = ResultCache(config.cache_dir) if config.cache else None

    results: List[Optional[BarrierAggregate]] = [None] * len(specs)
    #: (index, spec, cache key or None) still needing simulation.
    pending: List[Tuple[int, PointSpec, Optional[str]]] = []

    for index, spec in enumerate(specs):
        stats.points += 1
        key: Optional[str] = None
        if cache is not None and not getattr(spec.policy, "stateful", False):
            key = cache_key(BARRIER_KIND, spec.params(), spec.seed)
            payload = cache.get(key)
            if payload is not None:
                stats.cache_hits += 1
                results[index] = _replay_payload(spec, payload)
                _emit_point(tracer, spec, "cache", 0)
                continue
            stats.cache_misses += 1
        pending.append((index, spec, key))

    # Fan shardable points across the pool; stateful policies stay
    # inline so their draw state evolves in exactly the serial order.
    pooled: List[Tuple[int, PointSpec, Optional[str], int]] = []
    #: Flat and tree shards run different worker entry points, and
    #: run_supervised dispatches one entry per call, so tasks are
    #: partitioned by entry and fanned out in two supervised batches.
    tasks_by_entry: Dict[str, Dict[Tuple[int, int], dict]] = {}
    if config.jobs > 1:
        for index, spec, key in pending:
            if getattr(spec.policy, "stateful", False):
                continue
            bounds = shard_bounds(spec.repetitions, config.jobs)
            # Resolve the backend here, in the parent: workers inherit
            # whatever ambient default existed when the pool forked, so
            # the caller's --backend choice must travel in the task.
            backend = resolve_backend(spec.backend)
            if spec.tree_degree is not None:
                tasks = tasks_by_entry.setdefault("tree_shard", {})
                for shard_index, (start, stop) in enumerate(bounds):
                    tasks[(index, shard_index)] = make_tree_shard_task(
                        spec.num_processors,
                        spec.interval_a,
                        spec.policy,
                        spec.seed,
                        spec.tree_degree,
                        start,
                        stop,
                        backend=backend,
                        poll_budget=spec.poll_budget,
                        timeout_cycles=spec.timeout_cycles,
                    )
            else:
                tasks = tasks_by_entry.setdefault("barrier_shard", {})
                for shard_index, (start, stop) in enumerate(bounds):
                    tasks[(index, shard_index)] = make_shard_task(
                        spec.num_processors,
                        spec.interval_a,
                        spec.policy,
                        spec.seed,
                        spec.single_variable,
                        start,
                        stop,
                        backend=backend,
                    )
            pooled.append((index, spec, key, len(bounds)))

    pooled_indices = {index for index, *_ in pooled}
    shard_results: Dict[int, Dict[int, List[tuple]]] = {}
    for entry, tasks in tasks_by_entry.items():
        # Supervised fan-out: a killed worker respawns the pool and
        # re-dispatches only the lost shards; name-keyed RNG streams
        # make the replay bit-identical to an undisturbed run.
        outcome = run_supervised(
            tasks,
            entry=entry,
            get_pool=lambda: _get_pool(config.jobs),
            discard_pool=lambda: _discard_pool(config.jobs),
        )
        outcome.raise_first_error(tasks)
        for (index, shard_index), values in outcome.results.items():
            shard_results.setdefault(index, {})[shard_index] = values

    for index, spec, key, shard_count in pooled:
        shards = shard_results[index]
        summaries = [
            EpisodeSummary.from_tuple(values)
            for shard_index in range(shard_count)
            for values in shards[shard_index]
        ]
        results[index] = aggregate_from_summaries(
            spec.num_processors,
            spec.interval_a,
            spec.policy_label,
            summaries,
        )
        stats.shards += shard_count
        stats.parallel_points += 1
        if key is not None and cache is not None:
            cache.put(key, _cache_payload(spec, summaries))
            stats.cache_stores += 1
        _emit_point(tracer, spec, "pool", shard_count)

    # Inline: cache-only mode (jobs == 1) and stateful policies, in
    # submission order.  call_supervised applies the ambient
    # retry/deadline discipline (a plain call under the default config).
    for index, spec, key in pending:
        if index in pooled_indices:
            continue
        summaries = call_supervised(lambda spec=spec: _run_point_inline(spec))
        results[index] = aggregate_from_summaries(
            spec.num_processors,
            spec.interval_a,
            spec.policy_label,
            summaries,
        )
        if key is not None and cache is not None:
            cache.put(key, _cache_payload(spec, summaries))
            stats.cache_stores += 1
        _emit_point(tracer, spec, "inline", 1)

    return results  # type: ignore[return-value]


# -- registry experiment points -----------------------------------------


def _emit_experiment_point(
    tracer, experiment_id: str, point_key: str, source: str
) -> None:
    if not tracer.enabled:
        return
    # As with _emit_point: one event per point in every mode, with the
    # non-digested fields recording how the point was satisfied, so a
    # profile's deterministic digest is the same for any --jobs/--cache
    # combination.
    tracer.emit(
        "exec.experiment_point",
        experiment=experiment_id,
        point=point_key,
        source=source,
    )


def _run_experiment_point_inline(experiment_id: str, kwargs: dict) -> Any:
    """Run one point in-process exactly as a pool worker would.

    The ambient exec config is dropped for the duration (so a sweep
    inside ``run_point`` cannot recursively re-enter the engine) and
    simulator tracing is suppressed — the same environment
    ``reset_worker_state`` gives a forked worker, which is what keeps
    ``jobs=1`` and ``jobs=N`` runs event-identical.
    """
    from repro.registry.spec import get_spec

    spec = get_spec(experiment_id)
    with execution(DEFAULT_CONFIG):
        with tracing(NULL_TRACER):
            return canonical_payload(spec.run_point(**kwargs))


def execute_experiment_points(
    experiment_id: str,
    points: Dict[str, dict],
    seed: int,
    config: Optional[ExecConfig] = None,
) -> Dict[str, Any]:
    """Execute registry points under ``config``; results in ``points`` order.

    The registry analogue of :func:`execute_barrier_points`, at point
    granularity: each ``{point_key: run_point_kwargs}`` entry is looked
    up in the cache (key: experiment id, point key, canonical kwargs,
    seed, code digest), missed points fan out whole across the worker
    pool when ``jobs > 1``, and cache-only mode runs them inline under
    the null tracer.  Payloads are strict-JSON in every path, so the
    aggregate sees identical inputs cold, warm, serial or parallel.

    When the ambient :class:`~repro.exec.supervisor.SupervisorConfig`
    names a ``checkpoint_dir``, every point's payload is additionally
    recorded as an atomic digest-verified checkpoint the moment it is
    known (computed, cached, or resumed), and ``resume=True`` replays
    compatible records from a prior interrupted run before consulting
    the cache — the faults runner's durability, generalized to every
    registry experiment.
    """
    if config is None:
        config = get_exec_config()
    supervisor = get_supervisor_config()
    stats = get_stats()
    tracer = get_tracer()
    cache = ResultCache(config.cache_dir) if config.cache else None

    checkpoint = None
    resumed: Dict[str, Any] = {}
    if supervisor.checkpoint_dir:
        checkpoint, records = open_experiment_checkpoint(
            experiment_id, points, seed, supervisor
        )
        resumed = {
            key: record.data
            for key, record in records.items()
            if record.done and key in points
        }

    def _record(point_key: str, payload: Any) -> None:
        if checkpoint is not None:
            checkpoint.save_point(
                PointRecord(key=point_key, status=COMPLETED, data=payload)
            )

    results: Dict[str, Any] = {}
    #: (point key, kwargs, cache address or None) still needing a run.
    pending: List[Tuple[str, dict, Optional[str]]] = []

    for point_key, kwargs in points.items():
        stats.points += 1
        if point_key in resumed:
            stats.points_resumed += 1
            tracer.count("exec.points_resumed")
            results[point_key] = resumed[point_key]
            _emit_experiment_point(
                tracer, experiment_id, point_key, "checkpoint"
            )
            continue
        address: Optional[str] = None
        if cache is not None:
            # The backend knob never enters the address: backends are
            # bit-identical, so a cache warmed under one serves the
            # other (mirrors PointSpec.params()).
            keyed = {k: v for k, v in kwargs.items() if k != "backend"}
            address = cache_key(
                f"{EXPERIMENT_KIND}:{experiment_id}",
                {"point": point_key, "params": keyed},
                seed,
            )
            payload = cache.get(address)
            if payload is not None:
                stats.cache_hits += 1
                results[point_key] = payload
                _record(point_key, payload)
                _emit_experiment_point(tracer, experiment_id, point_key, "cache")
                continue
            stats.cache_misses += 1
        pending.append((point_key, kwargs, address))

    if config.jobs > 1 and pending:
        tasks = {
            point_key: {"experiment_id": experiment_id, "kwargs": kwargs}
            for point_key, kwargs, __ in pending
        }
        # on_result checkpoints each point the moment its future lands,
        # so a crash after N points preserves N points; cache stores
        # and event emission stay in submission order below for
        # deterministic stats and digests.
        outcome = run_supervised(
            tasks,
            entry="experiment_point",
            get_pool=lambda: _get_pool(config.jobs),
            discard_pool=lambda: _discard_pool(config.jobs),
            on_result=_record,
        )
        outcome.raise_first_error(tasks)
        for point_key, kwargs, address in pending:
            payload = outcome.results[point_key]
            results[point_key] = payload
            stats.parallel_points += 1
            if address is not None and cache is not None:
                cache.put(address, payload)
                stats.cache_stores += 1
            _emit_experiment_point(tracer, experiment_id, point_key, "pool")
    else:
        for point_key, kwargs, address in pending:
            payload = call_supervised(
                lambda kwargs=kwargs: _run_experiment_point_inline(
                    experiment_id, kwargs
                )
            )
            results[point_key] = payload
            if address is not None and cache is not None:
                cache.put(address, payload)
                stats.cache_stores += 1
            _record(point_key, payload)
            _emit_experiment_point(tracer, experiment_id, point_key, "inline")

    return {point_key: results[point_key] for point_key in points}
