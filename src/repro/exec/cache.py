"""Content-addressed on-disk result cache.

A cache entry is keyed by the four things that determine a simulation
result bit-for-bit:

1. the **experiment id** (a namespaced label such as ``barrier`` or
   ``faults:figure5``),
2. the **canonicalized parameters** (JSON with sorted keys, tuples
   normalised to lists — see :func:`canonical_params`),
3. the **root seed**, and
4. the **code digest** — a SHA-256 over every ``.py`` file in the
   ``repro`` package, so editing any simulator invalidates every entry
   automatically.

The key is the SHA-256 of that 4-tuple's canonical JSON; entries live
at ``<cache-dir>/<key[:2]>/<key>.json`` with an integrity digest over
the stored payload (a torn or hand-edited entry reads as a miss, never
as wrong data).  Writes are atomic (``os.replace``), so concurrent
writers at worst duplicate work.

Corrupted entries are **quarantined**, not merely skipped: an
unparseable file or an integrity-digest mismatch moves the entry aside
into ``<cache-dir>/quarantine/`` (preserving the evidence for
post-mortems), bumps ``ExecStats.cache_quarantined`` and the
``exec.cache_quarantined`` tracer counter, and reads as a miss so the
point is recomputed and the slot heals on the next ``put``.  A missing
file or a key/version mismatch is a plain miss — nothing is wrong with
the entry, it just isn't ours.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.exec.context import get_stats
from repro.obs.tracer import get_tracer

#: Subdirectory (inside the cache dir) where damaged entries land.
QUARANTINE_DIR = "quarantine"

#: Cache entry schema version; bump when the payload layout changes.
CACHE_VERSION = 1

#: Environment override for the code digest (tests use this to force
#: invalidation without editing source files).
CODE_DIGEST_ENV = "REPRO_EXEC_CODE_DIGEST"

_code_digest_memo: Optional[str] = None


def _package_root() -> str:
    """The directory of the installed ``repro`` package."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def code_digest() -> str:
    """SHA-256 over every ``repro/**/*.py`` file (path + contents).

    Memoized per process — the source tree does not change under a
    running experiment.  ``REPRO_EXEC_CODE_DIGEST`` overrides the
    computed value (read on every call, so tests can flip it).
    """
    override = os.environ.get(CODE_DIGEST_ENV)
    if override:
        return override
    global _code_digest_memo
    if _code_digest_memo is not None:
        return _code_digest_memo
    root = _package_root()
    hasher = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    for path in paths:
        hasher.update(os.path.relpath(path, root).encode("utf-8"))
        hasher.update(b"\0")
        with open(path, "rb") as handle:
            hasher.update(handle.read())
        hasher.update(b"\0")
    _code_digest_memo = hasher.hexdigest()
    return _code_digest_memo


def canonical_params(params: Any) -> Any:
    """Normalise params for hashing: sorted keys, tuples -> lists."""
    return json.loads(json.dumps(params, sort_keys=True, default=str))


def canonical_payload(payload: Any) -> Any:
    """Round-trip a point payload through strict JSON.

    Unlike :func:`canonical_params` there is no ``default=`` escape
    hatch: a ``run_point`` payload that is not JSON-native (a numpy
    scalar, a dataclass, a tuple dict key) fails loudly here instead of
    silently stringifying — the payload must survive the cache and the
    process boundary unchanged, or aggregates would differ between a
    cold run and a warm one.
    """
    return json.loads(json.dumps(payload, sort_keys=True))


def payload_digest(payload: Any) -> str:
    """SHA-256 of a value's canonical JSON (the ``run`` CLI's digest)."""
    blob = json.dumps(canonical_params(payload), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(experiment_id: str, params: Any, seed: int) -> str:
    """The content address of one (experiment, params, seed, code) result."""
    blob = json.dumps(
        {
            "experiment": experiment_id,
            "params": canonical_params(params),
            "seed": seed,
            "code": code_digest(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed content-addressed store of result payloads."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def _quarantine(self, path: str) -> Optional[str]:
        """Move a damaged entry aside; returns its new path (or None).

        The damaged file is preserved under ``<dir>/quarantine/`` for
        post-mortems instead of being deleted or left to fail every
        future read.  Counted on ``ExecStats.cache_quarantined`` and
        the ``exec.cache_quarantined`` tracer counter.
        """
        quarantine_root = os.path.join(self.directory, QUARANTINE_DIR)
        destination = os.path.join(quarantine_root, os.path.basename(path))
        suffix = 0
        while os.path.exists(destination):
            suffix += 1
            destination = os.path.join(
                quarantine_root, f"{os.path.basename(path)}.{suffix}"
            )
        try:
            os.makedirs(quarantine_root, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            return None  # racing reader already moved it; still a miss
        get_stats().cache_quarantined += 1
        get_tracer().count("exec.cache_quarantined")
        return destination

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None on miss/corruption.

        A corrupted entry (unparseable JSON, torn write, integrity
        digest mismatch) is quarantined — moved aside and counted — so
        the caller recomputes and the next ``put`` heals the slot.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None  # plain miss: nothing stored here yet
        except (OSError, ValueError):
            self._quarantine(path)
            return None
        payload = entry.get("payload")
        if entry.get("key") != key or entry.get("version") != CACHE_VERSION:
            return None  # someone else's entry or an old schema: a miss
        if entry.get("digest") != payload_digest(payload):
            self._quarantine(path)  # torn write or hand-edited: recompute
            return None
        return payload

    def put(
        self, key: str, payload: Any, meta: Optional[Dict[str, Any]] = None
    ) -> str:
        """Store ``payload`` under ``key`` atomically; returns the path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "key": key,
            "payload": canonical_params(payload),
            "digest": payload_digest(payload),
        }
        if meta:
            entry["meta"] = canonical_params(meta)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __repr__(self) -> str:
        return f"ResultCache({self.directory!r})"
