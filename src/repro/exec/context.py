"""Execution configuration: the ambient ``--jobs`` / ``--cache`` state.

The execution layer (see :mod:`repro.exec.engine`) is configured the
same way the tracer and the fault-plan registry are: a process-wide
entry installed for the duration of a run.  ``ExecConfig`` is the
default (``jobs=1``, cache off), under which every simulator takes its
original serial code path untouched; the CLI installs a non-default
config with :func:`execution` and the barrier layer consults it via
:func:`get_exec_config`.

This module is deliberately stdlib-only and imports nothing from the
rest of the repository (beyond the shared :mod:`repro._ambient`
scoping helper), so any layer (including the hot simulator paths) can
read the ambient config without import cycles.
"""

from __future__ import annotations

import argparse
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro._ambient import AmbientState

#: Default on-disk location of the content-addressed result cache.
DEFAULT_CACHE_DIR = ".repro-cache"


def validate_jobs(jobs: int) -> int:
    """Validate a ``--jobs`` value; the single shared CLI/API helper.

    Rejects anything below 1 and warns (without failing) when the
    requested worker count exceeds ``os.cpu_count()`` — the extra
    workers only add scheduling overhead.  Mirrors the ``--seed``
    validation in :mod:`repro.__main__`: a bad value becomes one clear
    error instead of a traceback from deep inside the pool machinery.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cpus = os.cpu_count()
    if cpus is not None and jobs > cpus:
        warnings.warn(
            f"jobs={jobs} exceeds os.cpu_count()={cpus}; the extra "
            "workers will mostly idle",
            RuntimeWarning,
            stacklevel=2,
        )
    return jobs


def jobs_arg(text: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1 (warns past cpu count)."""
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"jobs must be an integer, got {text!r}"
        ) from None
    try:
        return validate_jobs(jobs)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


@dataclass(frozen=True)
class ExecConfig:
    """How sweep work should execute: worker count and result cache."""

    jobs: int = 1
    cache: bool = False
    cache_dir: str = DEFAULT_CACHE_DIR
    #: Route through the exec engine even when serial and uncached.
    #: The CLI sets this whenever the user passes any exec flag, so
    #: ``--jobs 1`` produces the same observability output — and hence
    #: the same deterministic manifest digest — as ``--jobs N``.
    force_engine: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    @property
    def active(self) -> bool:
        """True when this config routes work through the exec engine."""
        return self.jobs > 1 or self.cache or self.force_engine


#: The serial, uncached default every process starts with.
DEFAULT_CONFIG = ExecConfig()

_active = AmbientState("exec.config", DEFAULT_CONFIG)


def get_exec_config() -> ExecConfig:
    """The active execution config: this thread's innermost
    :func:`execution` override, else the process default (serial)."""
    return _active.get()


def set_exec_config(config: Optional[ExecConfig]) -> ExecConfig:
    """Install ``config`` as the process-wide default; returns the
    previous default.

    Passing None restores the serial default.  Thread-scoped
    :func:`execution` overrides shadow the default on their own thread.
    """
    previous = _active.get_default()
    _active.set(config if config is not None else DEFAULT_CONFIG)
    return previous


@contextmanager
def execution(config: ExecConfig) -> Iterator[ExecConfig]:
    """Context manager: install ``config`` for the duration of the block.

    The override is scoped to the current thread, so concurrent serve
    jobs can run under different ``--jobs``/``--cache`` settings.

    Example::

        with execution(ExecConfig(jobs=4, cache=True)):
            sweep_accesses(repetitions=100)
    """
    with _active.scoped(config if config is not None else DEFAULT_CONFIG):
        yield config


@dataclass
class ExecStats:
    """Counters describing what the exec engine did in this process.

    Cache hit/miss counts live here (and in the obs manifest's
    ``execution`` section) rather than in tracer counters on purpose:
    tracer counters feed the manifest's *deterministic* digest, and a
    warm cache must not change the digest of an otherwise identical
    run.
    """

    points: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    shards: int = 0
    parallel_points: int = 0
    # Supervision counters (repro.exec.supervisor): mirrored onto the
    # tracer as exec.* counts, which the deterministic manifest digest
    # excludes for the same reason cache hits live here.
    retries: int = 0
    worker_deaths: int = 0
    cache_quarantined: int = 0
    points_resumed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "shards": self.shards,
            "parallel_points": self.parallel_points,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "cache_quarantined": self.cache_quarantined,
            "points_resumed": self.points_resumed,
        }

    def merge(self, other: "ExecStats") -> None:
        self.points += other.points
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_stores += other.cache_stores
        self.shards += other.shards
        self.parallel_points += other.parallel_points
        self.retries += other.retries
        self.worker_deaths += other.worker_deaths
        self.cache_quarantined += other.cache_quarantined
        self.points_resumed += other.points_resumed


_stats = ExecStats()


def get_stats() -> ExecStats:
    """The process-wide exec counters (monotonic until reset)."""
    return _stats


def reset_stats() -> ExecStats:
    """Zero the exec counters; returns the snapshot they held before."""
    global _stats
    previous = _stats
    _stats = ExecStats()
    return previous
