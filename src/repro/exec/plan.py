"""RunPlan: one declarative description of one experiment run.

Before this module existed the repository had four dispatch paths that
each re-derived the same execution state on their own: the registry
runner consulted the ambient :class:`~repro.exec.context.ExecConfig`,
``barrier.sweep`` resolved explicit ``jobs``/``cache`` arguments
against it, the faults runner merged its own ``jobs``/``use_cache``
parameters with the ambient config, and the CLI hand-assembled
``ExitStack(supervision, execution)`` per subcommand.  A capability
added to one path (checkpointing, retries, a backend knob) had to be
re-plumbed through the other three.

:class:`RunPlan` is the convergence point: one frozen dataclass
capturing *everything* that defines a run —

- the experiment id and its parameter overrides,
- the seed,
- the execution config (``jobs`` / ``cache`` / ``cache_dir``),
- the supervision config (retries / deadline / checkpoint / resume),
- an optional fault-injection plan spec plus its resilience options,
- the episode backend,

— and :func:`execute` is the single path that runs one.  The CLI
builds plans from argparse namespaces (:mod:`repro.cli.common`), the
scenario layer (:mod:`repro.scenario`) expands matrices into lists of
them, and both get fan-out, caching, supervision, fault injection and
digest reporting from exactly the same code.

Digest contract: :attr:`PlanOutcome.digest` covers the canonicalized
result data alone — never wall time, execution mode, or recovery
counters — so any two executions of the same plan can be compared with
one string equality, whatever ``jobs``/``cache``/backend they ran
under.  This is the same digest ``python -m repro run`` has always
printed.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.barrier.backend import backend_context, validate_backend
from repro.exec.cache import canonical_params, payload_digest
from repro.exec.context import (
    ExecConfig,
    execution,
    get_exec_config,
    get_stats,
    reset_stats,
    validate_jobs,
)
from repro.exec.supervisor import SupervisorConfig, supervision
from repro.obs.manifest import jsonable

#: Seeds feed numpy Generators; this is the range every stream accepts.
#: (Historically defined in the CLI; the plan layer is now the single
#: owner and the CLI imports it from here.)
MAX_SEED = 2**32


def validate_seed(seed: int) -> int:
    """Validate a root seed; the single shared CLI/API/scenario helper.

    Mirrors :func:`repro.exec.context.validate_jobs`: a bad seed
    becomes one clear error instead of a numpy traceback from deep
    inside a simulator.
    """
    try:
        seed = int(seed)
    except (TypeError, ValueError):
        raise ValueError(f"seed must be an integer, got {seed!r}") from None
    if not 0 <= seed < MAX_SEED:
        raise ValueError(f"seed must be in [0, 2**32), got {seed}")
    return seed


def resolve_exec_config(
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExecConfig:
    """The ambient exec config with any explicit overrides applied.

    Passing an override makes the result engine-routed even at
    ``jobs=1``, so explicit requests always go through the exec layer.
    (Moved here from :mod:`repro.barrier.sweep`, which re-exports it:
    every dispatch path now shares one resolution rule.)
    """
    base = get_exec_config()
    if jobs is None and cache is None and cache_dir is None:
        return base
    return ExecConfig(
        jobs=validate_jobs(jobs) if jobs is not None else base.jobs,
        cache=base.cache if cache is None else bool(cache),
        cache_dir=cache_dir if cache_dir is not None else base.cache_dir,
        force_engine=True,
    )


@dataclass(frozen=True)
class FaultOptions:
    """Resilient-runner knobs that only apply under a fault plan.

    Field-for-field the keyword surface of
    :func:`repro.faults.runner.run_experiment_resilient`; defaults
    match the historical ``python -m repro faults`` defaults.
    """

    checkpoint_dir: Optional[str] = None
    timeout_seconds: Optional[float] = None
    max_retries: int = 2
    retry_backoff_seconds: float = 0.05
    retry_policy: str = "exponential"
    max_points: Optional[int] = None
    fresh: bool = False


@dataclass(frozen=True)
class RunPlan:
    """Everything that defines one experiment run, as plain data."""

    experiment_id: str
    #: Parameter overrides, validated against the spec's Param schema.
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Root seed.  For plain runs it is injected as the ``seed``
    #: parameter when the spec declares one; under a fault plan it
    #: seeds the per-point fault schedules (the historical ``--seed``
    #: semantics of each subcommand).
    seed: Optional[int] = None
    #: Worker count / result cache; None = the ambient config.
    exec_config: Optional[ExecConfig] = None
    #: Retries / deadline / checkpoint / resume; None = unsupervised.
    supervisor: Optional[SupervisorConfig] = None
    #: Fault-injection plan spec (named plan or spec string).  None
    #: runs the plain path; any string — including ``"none"`` — routes
    #: through the resilient fault runner.
    fault_plan: Optional[str] = None
    #: Resilience options for the fault runner (ignored otherwise).
    faults: Optional[FaultOptions] = None
    #: Episode backend (``python``/``numpy``/``auto``); None = ambient.
    backend: Optional[str] = None

    # -- validation ------------------------------------------------------

    def validate(self) -> "RunPlan":
        """Check every field against its schema; returns self.

        Raises the same exceptions the CLI has always surfaced as
        exit-2 usage errors: ``UnknownExperimentError`` for the id,
        ``ParameterError`` for a bad override, ``ValueError`` for a
        bad seed, fault-plan spec, or backend.
        """
        from repro.registry import get_spec

        spec = get_spec(self.experiment_id)
        for name, value in self.params.items():
            spec.get_param(name).coerce(value)
        if self.seed is not None:
            validate_seed(self.seed)
        if self.backend is not None and self.backend != "":
            validate_backend(self.backend)
        if self.fault_plan is not None:
            from repro.faults.spec import parse_plan

            parse_plan(self.fault_plan, seed=self.seed or 0)
        return self

    # -- derived views ---------------------------------------------------

    def overrides(self) -> Dict[str, Any]:
        """The ``run_point`` keyword overrides this plan resolves to.

        The seed joins the overrides only for plain runs on specs that
        declare a ``seed`` parameter (the historical ``--seed``
        behaviour of ``run``); under a fault plan the seed drives the
        fault schedules instead and is passed to the runner directly.
        """
        from repro.registry import get_spec

        spec = get_spec(self.experiment_id)
        resolved = {
            name: spec.get_param(name).coerce(value)
            for name, value in self.params.items()
        }
        if (
            self.seed is not None
            and self.fault_plan is None
            and "seed" not in resolved
            and "seed" in spec.param_names()
        ):
            resolved["seed"] = self.seed
        return resolved

    def with_exec(self, exec_config: Optional[ExecConfig]) -> "RunPlan":
        """A copy of this plan under a different execution config."""
        return replace(self, exec_config=exec_config)

    @contextmanager
    def contexts(self) -> Iterator["RunPlan"]:
        """Install this plan's ambient state for the duration of a block.

        The one place backend / supervision / execution contexts are
        stacked — the ``ExitStack`` every CLI subcommand used to
        assemble by hand.  Fields left ``None`` leave the ambient state
        untouched, so plans compose with whatever the caller installed.
        """
        with ExitStack() as stack:
            if self.backend:
                stack.enter_context(backend_context(self.backend))
            if self.supervisor is not None:
                stack.enter_context(supervision(self.supervisor))
            if self.exec_config is not None:
                stack.enter_context(execution(self.exec_config))
            yield self


# -- serialization ------------------------------------------------------

#: The accepted top-level keys of a serialized plan (the HTTP
#: submission schema of ``repro serve`` and the round-trip contract of
#: :func:`plan_to_json` / :func:`plan_from_json`).
PLAN_JSON_KEYS = ("experiment", "params", "seed", "fault_plan", "backend")


def plan_to_json(plan: RunPlan) -> Dict[str, Any]:
    """The canonical JSON form of a plan's result-determining fields.

    Parameters are coerced through the spec's Param schema and
    normalised to JSON-native values, and fields left at their default
    are omitted, so any two plans that would produce the same result
    payload serialize identically — the property the round-trip tests
    pin and the serve dedupe key builds on.  Execution-only fields
    (``exec_config``, ``supervisor``, ``faults``) are deliberately not
    part of the form: they change how a run executes, never what it
    computes (the digest contract above).
    """
    from repro.registry import get_spec

    plan.validate()
    spec = get_spec(plan.experiment_id)
    params = {
        name: spec.get_param(name).coerce(value)
        for name, value in plan.params.items()
    }
    payload: Dict[str, Any] = {
        "experiment": plan.experiment_id,
        "params": canonical_params(params),
    }
    if plan.seed is not None:
        payload["seed"] = validate_seed(plan.seed)
    if plan.fault_plan is not None:
        payload["fault_plan"] = plan.fault_plan
    if plan.backend:
        payload["backend"] = plan.backend
    return payload


def plan_from_json(data: Any) -> RunPlan:
    """Parse a serialized plan back into a validated :class:`RunPlan`.

    The inverse of :func:`plan_to_json`, and the parser behind ``POST
    /jobs`` experiment submissions.  Raises exactly the exceptions the
    CLI maps to exit-2 usage errors (``UnknownExperimentError``,
    ``ParameterError``, ``ValueError``), so a bad HTTP submission and a
    bad command line produce the same error text.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"plan must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(PLAN_JSON_KEYS))
    if unknown:
        raise ValueError(
            "unknown plan key(s): "
            + ", ".join(repr(key) for key in unknown)
            + f"; expected {', '.join(PLAN_JSON_KEYS)}"
        )
    experiment_id = data.get("experiment")
    if not isinstance(experiment_id, str) or not experiment_id:
        raise ValueError("plan requires an 'experiment' id (string)")
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError(
            f"plan params must be a JSON object, got {type(params).__name__}"
        )
    seed = data.get("seed")
    if seed is not None:
        seed = validate_seed(seed)
    fault_plan = data.get("fault_plan")
    if fault_plan is not None and not isinstance(fault_plan, str):
        raise ValueError("fault_plan must be a string plan spec")
    backend = data.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ValueError("backend must be a string")
    plan = RunPlan(
        experiment_id=experiment_id,
        params=dict(params),
        seed=seed,
        fault_plan=fault_plan,
        backend=backend or None,
    )
    return plan.validate()


def plan_cache_key(plan: RunPlan) -> str:
    """A stable content address for everything that determines results.

    SHA-256 over the canonical JSON form plus the process code digest
    — the dedupe key of the serve job store.  The backend is
    deliberately excluded: backends are bit-identical by the
    vectorization contract (docs/vectorization.md), so two clients
    asking for the same experiment on different backends share one
    computation, exactly as they share one cache entry.
    """
    from repro.exec.cache import code_digest

    payload = plan_to_json(plan)
    payload.pop("backend", None)
    return payload_digest({"plan": payload, "code": code_digest()})


@dataclass
class PlanOutcome:
    """What :func:`execute` produced: result, digest, wall time, stats."""

    plan: RunPlan
    #: The aggregate result (plain runs; None under a fault plan).
    result: Optional[Any] = None
    #: The resilience summary (fault runs; None otherwise).
    summary: Optional[Any] = None
    #: Digest of the canonicalized result data (see module docstring).
    digest: str = ""
    wall_time_seconds: float = 0.0
    #: Snapshot of the exec counters accumulated during this run.
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run produced a complete, healthy result."""
        if self.summary is not None:
            return bool(self.summary.ok and not self.summary.interrupted)
        return self.result is not None

    @property
    def degraded(self) -> bool:
        """True when a fault run finished but some points degraded."""
        return self.summary is not None and self.summary.degraded > 0


def result_digest(result: Any) -> str:
    """The digest of a plain run's result data (CLI ``run`` contract)."""
    return payload_digest(jsonable(result.data))


def summary_digest(summary: Any) -> str:
    """The digest of a fault run's durable point records.

    Covers each record's status and data — never attempts, wall time,
    or fault counters' timing — so a resumed, retried, parallel or
    cache-warmed sweep digests identically to an undisturbed serial
    one.
    """
    payload = {
        key: {"status": record.status, "data": record.data}
        for key, record in summary.records.items()
    }
    return payload_digest(jsonable(payload))


def execute(plan: RunPlan, reset_counters: bool = False) -> PlanOutcome:
    """Run one plan; the single dispatch path every caller shares.

    Plain plans go through the registry runner (and, under an active
    exec config, the parallel cache-aware engine); plans with a
    ``fault_plan`` go through the resilient fault runner.  Both run
    inside :meth:`RunPlan.contexts`, so backend, supervision and
    execution state are installed uniformly.

    ``reset_counters=True`` zeroes the process-wide exec counters
    first, which makes :attr:`PlanOutcome.stats` a per-run snapshot
    (the CLI does this; library callers accumulating across runs
    should not).
    """
    plan.validate()
    if reset_counters:
        reset_stats()
    before = get_stats().as_dict()
    start = time.perf_counter()
    with plan.contexts():
        if plan.fault_plan is not None:
            from repro.faults.runner import run_plan_resilient

            summary = run_plan_resilient(plan)
            outcome = PlanOutcome(
                plan=plan,
                summary=summary,
                digest=summary_digest(summary),
            )
        else:
            from repro.registry.runner import run

            result = run(plan.experiment_id, **plan.overrides())
            outcome = PlanOutcome(
                plan=plan,
                result=result,
                digest=result_digest(result),
            )
    outcome.wall_time_seconds = time.perf_counter() - start
    after = get_stats().as_dict()
    outcome.stats = {
        key: after[key] - before.get(key, 0) for key in after
    }
    return outcome
