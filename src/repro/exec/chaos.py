"""The seeded chaos harness: prove the supervisor's recovery end to end.

``python -m repro chaos <experiment-id>`` (and ``tools/chaos_smoke.py``
in CI) runs one registry experiment four ways and demands bit-identical
results throughout:

1. **Baseline** — serial, fault-free, through the exec engine; its
   payload digest and deterministic manifest digest are the ground
   truth.
2. **Chaos run** — ``--jobs N`` with a cold cache and checkpointing,
   under a :class:`~repro.exec.supervisor.ChaosPlan` that kills a
   worker mid-sweep (``SIGKILL``, exactly as the OOM killer would) and
   optionally hangs a point into its deadline.  Supervision must
   respawn the pool, re-dispatch the lost points, and still produce the
   baseline digests.
3. **Damage** — a seeded victim point's cache entry is truncated
   mid-file and its checkpoint record torn, simulating disk corruption
   and a crash during a checkpoint write.
4. **Recovery run** — ``--resume`` over the damaged state: intact
   points replay from the checkpoint, the corrupted cache entry is
   quarantined and recomputed, and the digests must *still* equal the
   baseline.

The report also checks that the recoveries were observable: the
``exec.worker_deaths`` / ``exec.cache_quarantined`` /
``exec.points_resumed`` counters (mirrored in
:class:`~repro.exec.context.ExecStats`) must actually record what the
harness inflicted.  See docs/resilience.md.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exec.cache import cache_key, payload_digest
from repro.exec.context import ExecConfig, execution, get_stats
from repro.exec.supervisor import (
    ChaosPlan,
    SupervisorConfig,
    chaos_injection,
    safe_filename,
    supervision,
)
from repro.obs.manifest import build_manifest
from repro.obs.tracer import Tracer, tracing

#: Fraction of the file kept when the harness "tears" a write.
_TRUNCATE_KEEP = 0.5


@dataclass
class ChaosRunStats:
    """The supervision counters one phase of the harness accumulated."""

    worker_deaths: int = 0
    retries: int = 0
    cache_quarantined: int = 0
    points_resumed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "worker_deaths": self.worker_deaths,
            "retries": self.retries,
            "cache_quarantined": self.cache_quarantined,
            "points_resumed": self.points_resumed,
        }


@dataclass
class ChaosReport:
    """What the chaos harness did and whether recovery was bit-perfect."""

    experiment_id: str
    seed: int
    jobs: int
    points: int
    kill: int
    hang: int
    victim: str
    baseline_payload_digest: str
    baseline_manifest_digest: str
    chaos_payload_digest: str
    chaos_manifest_digest: str
    recovery_payload_digest: str
    recovery_manifest_digest: str
    chaos_stats: ChaosRunStats
    recovery_stats: ChaosRunStats
    damaged: List[str] = field(default_factory=list)
    work_dir: str = ""

    @property
    def digests_match(self) -> bool:
        return (
            self.chaos_payload_digest == self.baseline_payload_digest
            and self.recovery_payload_digest == self.baseline_payload_digest
            and self.chaos_manifest_digest == self.baseline_manifest_digest
            and self.recovery_manifest_digest == self.baseline_manifest_digest
        )

    @property
    def recoveries_observed(self) -> bool:
        """Every inflicted failure left a mark on the counters."""
        if self.kill and self.chaos_stats.worker_deaths < 1:
            return False
        if self.hang and self.chaos_stats.retries < 1:
            return False
        if "cache" in [d.split(":")[0] for d in self.damaged] and (
            self.recovery_stats.cache_quarantined < 1
        ):
            return False
        if self.points > 1 and self.recovery_stats.points_resumed < 1:
            return False
        return True

    @property
    def ok(self) -> bool:
        return self.digests_match and self.recoveries_observed

    def counters(self) -> Dict[str, Any]:
        """The JSON payload ``tools/chaos_smoke.py`` uploads from CI."""
        return {
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "jobs": self.jobs,
            "points": self.points,
            "victim": self.victim,
            "damaged": list(self.damaged),
            "ok": self.ok,
            "digests_match": self.digests_match,
            "baseline_payload_digest": self.baseline_payload_digest,
            "baseline_manifest_digest": self.baseline_manifest_digest,
            "chaos": self.chaos_stats.as_dict(),
            "recovery": self.recovery_stats.as_dict(),
        }

    def render(self) -> str:
        mark = "ok" if self.ok else "FAILED"
        lines = [
            f"== chaos harness: {self.experiment_id} "
            f"(seed {self.seed}, jobs {self.jobs}) == {mark}",
            f"points    : {self.points} "
            f"({self.kill} worker kill(s), {self.hang} hang(s))",
            f"victim    : {self.victim} "
            f"({', '.join(self.damaged) if self.damaged else 'undamaged'})",
            f"baseline  : payload {self.baseline_payload_digest[:16]}… "
            f"manifest {self.baseline_manifest_digest[:16]}…",
            f"chaos run : digests "
            f"{'identical' if self.chaos_payload_digest == self.baseline_payload_digest and self.chaos_manifest_digest == self.baseline_manifest_digest else 'DIVERGED'}; "
            f"{self.chaos_stats.worker_deaths} worker death(s), "
            f"{self.chaos_stats.retries} retried point(s)",
            f"recovery  : digests "
            f"{'identical' if self.recovery_payload_digest == self.baseline_payload_digest and self.recovery_manifest_digest == self.baseline_manifest_digest else 'DIVERGED'}; "
            f"{self.recovery_stats.points_resumed} resumed, "
            f"{self.recovery_stats.cache_quarantined} quarantined",
        ]
        if self.work_dir:
            lines.append(f"work dir  : {self.work_dir}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _stats_delta(before: Dict[str, Any]) -> ChaosRunStats:
    after = get_stats().as_dict()
    return ChaosRunStats(
        worker_deaths=after["worker_deaths"] - before["worker_deaths"],
        retries=after["retries"] - before["retries"],
        cache_quarantined=(
            after["cache_quarantined"] - before["cache_quarantined"]
        ),
        points_resumed=after["points_resumed"] - before["points_resumed"],
    )


def _traced_points(
    experiment_id: str,
    points: Dict[str, dict],
    seed: int,
    exec_config: ExecConfig,
    run_id: str,
) -> "tuple[Dict[str, Any], str]":
    """Run the point set through the engine under a fresh tracer.

    Returns the results and the run's deterministic manifest digest.
    The manifest config deliberately excludes jobs/cache/supervision —
    they describe *how* the run executed, and the whole point of the
    harness is that they must not change *what* it produced.
    """
    from repro.exec.engine import execute_experiment_points

    tracer = Tracer(run_id=run_id)
    with tracing(tracer), execution(exec_config):
        results = execute_experiment_points(experiment_id, points, seed)
    manifest = build_manifest(
        tracer,
        experiment_id=experiment_id,
        seed=seed,
        config={"points": sorted(points)},
        run_id=run_id,
    )
    return results, manifest.deterministic_digest()


def _truncate_file(path: str) -> bool:
    """Tear ``path`` mid-write (keep the first half); False if absent."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    with open(path, "r+b") as handle:
        handle.truncate(max(1, int(size * _TRUNCATE_KEEP)))
    return True


def run_chaos(
    experiment_id: str,
    *,
    seed: int = 0,
    jobs: int = 4,
    kill: int = 1,
    hang: int = 0,
    hang_seconds: float = 30.0,
    deadline_seconds: Optional[float] = None,
    retries: int = 2,
    retry_policy: str = "exponential",
    corrupt_cache: bool = True,
    truncate_checkpoint: bool = True,
    work_dir: Optional[str] = None,
    keep: bool = False,
    **overrides: Any,
) -> ChaosReport:
    """Run the full chaos scenario for one experiment; see module docs.

    ``hang`` requires ``deadline_seconds`` (a hung point only recovers
    because its deadline expires and the retry is clean); the harness
    enforces that rather than hanging forever.  ``work_dir`` holds the
    cache and checkpoint between phases (a temp dir by default, deleted
    unless ``keep``).  Extra keyword arguments are experiment parameter
    overrides, exactly as ``-p NAME=VALUE`` on the CLI.
    """
    from repro.registry import get_spec

    if hang and not deadline_seconds:
        raise ValueError(
            "hang points need --deadline: without one a hung point never "
            "times out and the sweep cannot finish"
        )
    if jobs < 2:
        raise ValueError("chaos needs jobs >= 2 (worker death is the point)")

    # Resolve the point set exactly as the registry's engine dispatch
    # does, so the cache addresses the harness damages are the ones the
    # engine actually reads.
    spec = get_spec(experiment_id)
    params = spec.resolve(overrides)
    points = spec.points(params)
    engine_seed = int(params.get("seed") or 0)
    owns_work_dir = work_dir is None
    if owns_work_dir:
        work_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    cache_dir = os.path.join(work_dir, "cache")
    checkpoint_dir = os.path.join(work_dir, "checkpoints")

    try:
        # Phase 1: the serial, fault-free ground truth.
        baseline, baseline_manifest = _traced_points(
            experiment_id,
            points,
            engine_seed,
            ExecConfig(jobs=1, force_engine=True),
            "chaos-baseline",
        )
        baseline_digest = payload_digest(baseline)

        # Phase 2: parallel sweep with chaos injected — worker kills
        # and hangs — while the cache warms and every point checkpoints.
        supervisor = SupervisorConfig(
            retries=retries,
            deadline_seconds=deadline_seconds,
            backoff=retry_policy,
            checkpoint_dir=checkpoint_dir,
            resume=False,
        )
        plan = ChaosPlan(
            kill_workers=kill,
            hang_points=hang,
            hang_seconds=hang_seconds,
            seed=seed,
        )
        before = get_stats().as_dict()
        with supervision(supervisor), chaos_injection(plan):
            chaos_results, chaos_manifest = _traced_points(
                experiment_id,
                points,
                engine_seed,
                ExecConfig(jobs=jobs, cache=True, cache_dir=cache_dir),
                "chaos-run",
            )
        chaos_stats = _stats_delta(before)
        chaos_digest = payload_digest(chaos_results)

        # Phase 3: damage a seeded victim point's durable state — tear
        # its cache entry and its checkpoint record.  One victim for
        # both: a point whose checkpoint survived would be resumed and
        # never consult its (corrupted) cache entry.
        victim = random.Random(seed).choice(sorted(points))
        damaged: List[str] = []
        if corrupt_cache:
            keyed = {
                k: v for k, v in points[victim].items() if k != "backend"
            }
            address = cache_key(
                f"experiment:{experiment_id}",
                {"point": victim, "params": keyed},
                engine_seed,
            )
            entry = os.path.join(cache_dir, address[:2], f"{address}.json")
            if _truncate_file(entry):
                damaged.append(f"cache:{victim}")
        if truncate_checkpoint:
            record = os.path.join(
                checkpoint_dir, "points", f"{safe_filename(victim)}.json"
            )
            if _truncate_file(record):
                damaged.append(f"checkpoint:{victim}")

        # Phase 4: recover — resume from the damaged checkpoint over
        # the damaged cache, with no chaos this time.
        before = get_stats().as_dict()
        with supervision(
            SupervisorConfig(
                retries=retries,
                deadline_seconds=deadline_seconds,
                backoff=retry_policy,
                checkpoint_dir=checkpoint_dir,
                resume=True,
            )
        ):
            recovery_results, recovery_manifest = _traced_points(
                experiment_id,
                points,
                engine_seed,
                ExecConfig(jobs=jobs, cache=True, cache_dir=cache_dir),
                "chaos-recovery",
            )
        recovery_stats = _stats_delta(before)
        recovery_digest = payload_digest(recovery_results)

        return ChaosReport(
            experiment_id=experiment_id,
            seed=seed,
            jobs=jobs,
            points=len(points),
            kill=kill,
            hang=hang,
            victim=victim,
            baseline_payload_digest=baseline_digest,
            baseline_manifest_digest=baseline_manifest,
            chaos_payload_digest=chaos_digest,
            chaos_manifest_digest=chaos_manifest,
            recovery_payload_digest=recovery_digest,
            recovery_manifest_digest=recovery_manifest,
            chaos_stats=chaos_stats,
            recovery_stats=recovery_stats,
            damaged=damaged,
            work_dir=work_dir if (keep or not owns_work_dir) else "",
        )
    finally:
        if owns_work_dir and not keep:
            shutil.rmtree(work_dir, ignore_errors=True)
