"""``repro serve``: the async experiment service on the RunPlan spine.

Submissions are JSON plans (or scenario matrices) validated through
the same registry Param schemas and scenario parser as the CLI; jobs
run through :func:`repro.exec.plan.execute` on a bounded worker pool
with supervision, share the content-addressed result cache, and are
deduped by :func:`repro.exec.plan.plan_cache_key`.  See
docs/serving.md for the API and a worked session.
"""

from __future__ import annotations

from repro.serve.app import (
    DEFAULT_WORK_DIR,
    ExperimentService,
    ServeConfig,
    parse_submission,
    run_server,
)
from repro.serve.jobs import Job, JobStore

__all__ = [
    "DEFAULT_WORK_DIR",
    "ExperimentService",
    "Job",
    "JobStore",
    "ServeConfig",
    "parse_submission",
    "run_server",
]
