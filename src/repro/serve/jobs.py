"""The serve job store: lifecycle state, event buffers, dedupe index.

A :class:`Job` is one submitted RunPlan (or scenario matrix) moving
through ``queued → running → done|failed``.  Jobs execute on worker
threads while HTTP handlers read them from the event loop, so every
mutation happens under the job's lock and event appends wake waiting
streamers via ``loop.call_soon_threadsafe``.

Dedupe contract (the "millions of users, one warm cache" story): the
store indexes in-flight *and completed* jobs by their submission key —
:func:`repro.exec.plan.plan_cache_key` for experiment jobs, a digest
over the expanded cells' plan keys for scenarios — so a second
identical submission attaches to the first job instead of recomputing.
Failed jobs are evicted from the index: resubmitting a failure retries
it (under a fresh job id) rather than replaying the error forever.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a job can still leave.
ACTIVE_STATES = (QUEUED, RUNNING)


class Job:
    """One submission's full lifecycle, safe to touch from any thread."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        key: str,
        submission: Dict[str, Any],
    ) -> None:
        self.id = job_id
        #: ``experiment`` or ``scenario``.
        self.kind = kind
        #: The dedupe key (plan cache key / scenario aggregate key).
        self.key = key
        #: The canonical submission echoed back in status payloads.
        self.submission = submission
        self.state = QUEUED
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Result digest (plan digest / scenario aggregate digest).
        self.digest: Optional[str] = None
        #: The canonical result payload served by ``/jobs/<id>/result``.
        self.result: Optional[Any] = None
        self.error: Optional[str] = None
        #: How many submissions were answered by this job beyond the
        #: first (the dedupe counter the tests assert on).
        self.attached = 0
        self.wall_time_seconds: Optional[float] = None
        #: Per-run exec counter deltas (worker deaths, retries, ...).
        self.stats: Dict[str, Any] = {}
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        #: (loop, asyncio.Event) pairs of waiting event streamers.
        self._listeners: List[Tuple[Any, Any]] = []

    # -- events (called from job threads and the event loop) -----------

    def add_event(self, event: Dict[str, Any]) -> None:
        """Append one obs event and wake every waiting streamer."""
        with self._lock:
            self._events.append(dict(event))
            listeners = list(self._listeners)
        for loop, waiter in listeners:
            loop.call_soon_threadsafe(waiter.set)

    def events_after(self, cursor: int) -> Tuple[List[Dict[str, Any]], int]:
        """Events past ``cursor`` plus the new cursor position."""
        with self._lock:
            tail = self._events[cursor:]
            return tail, cursor + len(tail)

    def notify(self) -> None:
        """Wake every waiting streamer without appending an event
        (called after the terminal state transition lands)."""
        with self._lock:
            listeners = list(self._listeners)
        for loop, waiter in listeners:
            loop.call_soon_threadsafe(waiter.set)

    def add_listener(self, loop: Any, waiter: Any) -> None:
        with self._lock:
            self._listeners.append((loop, waiter))

    def remove_listener(self, loop: Any, waiter: Any) -> None:
        with self._lock:
            try:
                self._listeners.remove((loop, waiter))
            except ValueError:
                pass

    # -- state transitions (called from job threads) -------------------

    def mark_running(self) -> None:
        with self._lock:
            self.state = RUNNING
            self.started_at = time.time()

    def mark_done(
        self,
        digest: str,
        result: Any,
        wall_time_seconds: float,
        stats: Dict[str, Any],
    ) -> None:
        with self._lock:
            self.state = DONE
            self.digest = digest
            self.result = result
            self.wall_time_seconds = wall_time_seconds
            self.stats = dict(stats)
            self.finished_at = time.time()

    def mark_failed(self, error: str) -> None:
        with self._lock:
            self.state = FAILED
            self.error = error
            self.finished_at = time.time()

    # -- views ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def status(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` payload."""
        with self._lock:
            payload: Dict[str, Any] = {
                "id": self.id,
                "kind": self.kind,
                "key": self.key,
                "state": self.state,
                "submission": self.submission,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "events": len(self._events),
                "attached": self.attached,
            }
            if self.digest is not None:
                payload["digest"] = self.digest
            if self.wall_time_seconds is not None:
                payload["wall_time_seconds"] = self.wall_time_seconds
            if self.stats:
                payload["stats"] = self.stats
            if self.error is not None:
                payload["error"] = self.error
            return payload


class JobStore:
    """Job registry plus the submission-key dedupe index.

    Only ever touched from the server's event loop (submissions are
    routed there), so check-and-insert is atomic without a lock; the
    jobs it hands out are individually thread-safe.
    """

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, Job] = {}
        self._ids = itertools.count(1)

    def submit(
        self,
        kind: str,
        key: str,
        submission: Dict[str, Any],
    ) -> Tuple[Job, bool]:
        """Return ``(job, deduplicated)`` for one submission.

        An active or completed job under the same key answers the new
        submission (``deduplicated=True``); otherwise a fresh job is
        registered and returned for launching.
        """
        existing = self._by_key.get(key)
        if existing is not None and existing.state != FAILED:
            existing.attached += 1
            return existing, True
        job = Job(f"job-{next(self._ids):06d}", kind, key, submission)
        self._jobs[job.id] = job
        self._by_key[key] = job
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
