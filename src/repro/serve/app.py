"""The experiment service: routes, submissions, and the job runner.

``repro serve`` is "RunPlan over HTTP": a submission is parsed by
exactly the parsers the CLI uses (:func:`repro.exec.plan.plan_from_json`
for experiments, :func:`repro.scenario.parse_scenario` for matrices),
validation failures surface the CLI's exit-2 error text as HTTP 400
bodies, and accepted jobs run through :func:`repro.exec.plan.execute`
on a bounded thread pool — each job thread holding its own
thread-scoped tracer / exec config / supervision (see
:mod:`repro._ambient`), all sharing one content-addressed result
cache and one process pool.

API surface (docs/serving.md has the worked session):

- ``GET  /healthz`` — liveness + job counts.
- ``GET  /stats`` — uptime, job counts, process-wide exec counters.
- ``POST /jobs`` — submit a plan or ``{"scenario": {...}}`` document;
  202 with the job status, or 200 when an identical submission was
  answered by an existing job (``deduplicated: true``).
- ``GET  /jobs`` — every job's status.
- ``GET  /jobs/<id>`` — one job's status.
- ``GET  /jobs/<id>/events`` — chunked JSONL obs-event stream
  (replays the buffer, then follows until the job finishes;
  ``?follow=0`` returns the buffer and closes).
- ``GET  /jobs/<id>/result`` — canonical result payload + digest
  (409 while the job is still active, 410-equivalent 409 on failure).
"""

from __future__ import annotations

import asyncio
import os
import re
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.barrier.backend import backend_context
from repro.exec.cache import payload_digest
from repro.exec.context import (
    DEFAULT_CACHE_DIR,
    ExecConfig,
    get_stats,
    validate_jobs,
)
from repro.exec.plan import (
    FaultOptions,
    RunPlan,
    execute,
    plan_cache_key,
    plan_from_json,
    plan_to_json,
)
from repro.exec.supervisor import SupervisorConfig
from repro.obs.manifest import jsonable
from repro.obs.tracer import CallbackSink, Tracer, tracing
from repro.registry.spec import ParameterError, UnknownExperimentError
from repro.serve.http import (
    ChunkedStream,
    HttpError,
    Request,
    error_response,
    json_response,
    read_request,
)
from repro.serve.jobs import Job, JobStore

#: Default on-disk scratch space (checkpoints, scenario work dirs).
DEFAULT_WORK_DIR = ".repro-serve"

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)(/events|/result)?$")


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``python -m repro serve`` configures."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Worker processes per job (the engine's ``--jobs``).
    jobs: int = 1
    cache: bool = True
    cache_dir: str = DEFAULT_CACHE_DIR
    #: Simultaneous jobs (thread pool width).
    concurrency: int = 1
    #: Supervisor retries per point for plain experiment jobs.
    retries: int = 1
    #: Per-point deadline in seconds (None = unbounded).
    deadline: Optional[float] = None
    work_dir: str = DEFAULT_WORK_DIR
    #: Backend applied to plans that do not pin one (None = ambient).
    backend: Optional[str] = None

    def validated(self) -> "ServeConfig":
        validate_jobs(self.jobs)
        validate_jobs(self.concurrency)
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        return self


def parse_submission(body: Any) -> Tuple[str, Any, Dict[str, Any], str]:
    """Validate one ``POST /jobs`` body.

    Returns ``(kind, parsed, canonical_submission, dedupe_key)`` where
    ``parsed`` is the :class:`RunPlan` or scenario spec to execute.
    Raises :class:`HttpError` (400) carrying exactly the error text the
    CLI would print for the same mistake.
    """
    from repro.scenario import ScenarioError, expand, parse_scenario

    if not isinstance(body, dict):
        raise HttpError(
            400, f"submission must be a JSON object, got {type(body).__name__}"
        )
    try:
        if "scenario" in body:
            extras = sorted(set(body) - {"scenario"})
            if extras:
                raise ValueError(
                    "scenario submissions accept only the 'scenario' key; "
                    "unexpected: " + ", ".join(repr(key) for key in extras)
                )
            spec = parse_scenario(body["scenario"], source="submission")
            cells = expand(spec)
            key = payload_digest(
                {
                    "scenario": {
                        cell.cell_id: plan_cache_key(cell.plan)
                        for cell in cells
                    }
                }
            )
            canonical = {
                "scenario": spec.name,
                "cells": [cell.cell_id for cell in cells],
            }
            return "scenario", spec, canonical, key
        plan = plan_from_json(body)
        return "experiment", plan, plan_to_json(plan), plan_cache_key(plan)
    except (
        ScenarioError,
        ParameterError,
        UnknownExperimentError,
        ValueError,
    ) as error:
        raise HttpError(400, str(error)) from None


class ExperimentService:
    """One server: an asyncio front end over a bounded job pool."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config.validated()
        self.store = JobStore()
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.concurrency,
            thread_name_prefix="repro-serve-job",
        )
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self.started_at = time.time()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        self.loop = asyncio.get_running_loop()
        self.server = await asyncio.start_server(
            self.handle_connection, self.config.host, self.config.port
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self.server

    def shutdown(self) -> None:
        self.executor.shutdown(wait=True)

    # -- connection handling -------------------------------------------

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        streamed = False
        try:
            request = await read_request(reader)
            if request is not None:
                streamed = await self.dispatch(request, writer)
        except HttpError as error:
            if not streamed:
                writer.write(error_response(error.status, error.message))
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as error:  # pragma: no cover - defensive
            if not streamed:
                writer.write(
                    error_response(500, f"{type(error).__name__}: {error}")
                )
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns True when the response streamed."""
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            self._require(request, "GET")
            writer.write(json_response(200, self._health()))
            return False
        if path == "/stats":
            self._require(request, "GET")
            writer.write(json_response(200, self._stats()))
            return False
        if path == "/jobs":
            if request.method == "POST":
                writer.write(self._submit(request))
                return False
            self._require(request, "GET")
            writer.write(
                json_response(
                    200, {"jobs": [job.status() for job in self.store.jobs()]}
                )
            )
            return False
        match = _JOB_PATH.match(path)
        if match is None:
            raise HttpError(404, f"no route for {request.path!r}")
        job = self.store.get(match.group(1))
        if job is None:
            raise HttpError(404, f"unknown job {match.group(1)!r}")
        tail = match.group(2)
        self._require(request, "GET")
        if tail is None:
            writer.write(json_response(200, job.status()))
            return False
        if tail == "/result":
            writer.write(self._result(job))
            return False
        follow = request.param("follow", "1") not in ("0", "false", "no")
        await self._stream_events(job, writer, follow)
        return True

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.method} not allowed here (use {method})"
            )

    # -- handlers ------------------------------------------------------

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.store.counts(),
        }

    def _stats(self) -> Dict[str, Any]:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.store.counts(),
            "exec": get_stats().as_dict(),
            "config": {
                "jobs": self.config.jobs,
                "cache": self.config.cache,
                "cache_dir": self.config.cache_dir,
                "concurrency": self.config.concurrency,
                "backend": self.config.backend,
            },
        }

    def _submit(self, request: Request) -> bytes:
        kind, parsed, canonical, key = parse_submission(request.json())
        job, deduplicated = self.store.submit(kind, key, canonical)
        if not deduplicated:
            assert self.loop is not None
            self.loop.run_in_executor(
                self.executor, self._run_job, job, parsed
            )
        status = 200 if deduplicated else 202
        return json_response(
            status, {"job": job.status(), "deduplicated": deduplicated}
        )

    def _result(self, job: Job) -> bytes:
        if job.state == "failed":
            raise HttpError(409, f"job {job.id} failed: {job.error}")
        if not job.finished:
            raise HttpError(409, f"job {job.id} is still {job.state}")
        return json_response(
            200,
            {
                "id": job.id,
                "kind": job.kind,
                "digest": job.digest,
                "wall_time_seconds": job.wall_time_seconds,
                "stats": job.stats,
                "result": job.result,
            },
        )

    async def _stream_events(
        self, job: Job, writer: asyncio.StreamWriter, follow: bool
    ) -> None:
        stream = ChunkedStream(writer)
        await stream.start()
        events, cursor = job.events_after(0)
        for event in events:
            await stream.send_json_line(event)
        if follow and not job.finished:
            assert self.loop is not None
            waiter = asyncio.Event()
            job.add_listener(self.loop, waiter)
            try:
                while True:
                    events, cursor = job.events_after(cursor)
                    for event in events:
                        await stream.send_json_line(event)
                    if job.finished:
                        break
                    waiter.clear()
                    try:
                        await asyncio.wait_for(waiter.wait(), timeout=0.5)
                    except asyncio.TimeoutError:
                        pass
            finally:
                job.remove_listener(self.loop, waiter)
            events, cursor = job.events_after(cursor)
            for event in events:
                await stream.send_json_line(event)
        await stream.finish()

    # -- the job runner (worker threads) -------------------------------

    def _run_job(self, job: Job, parsed: Any) -> None:
        """Execute one job on this worker thread.

        All ambient state — tracer, exec config, supervision, backend —
        is installed thread-scoped, so concurrent jobs never observe
        each other's configuration (the refactor this service forced;
        see :mod:`repro._ambient`).
        """
        tracer = Tracer(run_id=job.id, sink=CallbackSink(job.add_event))
        job.mark_running()
        with tracing(tracer):
            tracer.emit(
                "serve.job", job=job.id, state="running", job_kind=job.kind
            )
            try:
                if job.kind == "experiment":
                    digest, result, wall, stats = self._run_plan(job, parsed)
                else:
                    digest, result, wall, stats = self._run_scenario(
                        job, parsed, tracer
                    )
            except Exception as error:
                message = f"{type(error).__name__}: {error}"
                tracer.emit(
                    "serve.job", job=job.id, state="failed", error=message
                )
                job.mark_failed(message)
            else:
                tracer.emit(
                    "serve.job", job=job.id, state="done", digest=digest
                )
                job.mark_done(digest, result, wall, stats)
            finally:
                job.notify()

    def _scratch(self, family: str, job: Job) -> str:
        return os.path.join(self.config.work_dir, family, job.key[:16])

    def _run_plan(
        self, job: Job, plan: RunPlan
    ) -> Tuple[str, Any, float, Dict[str, Any]]:
        config = self.config
        exec_config = ExecConfig(
            jobs=config.jobs,
            cache=config.cache,
            cache_dir=config.cache_dir,
            force_engine=True,
        )
        plan = plan.with_exec(exec_config)
        if config.backend and not plan.backend:
            plan = replace(plan, backend=config.backend)
        if plan.fault_plan is None:
            # Supervised with checkpoint/resume keyed on the dedupe
            # key: resubmitting a failed job resumes its completed
            # points instead of recomputing them.
            plan = replace(
                plan,
                supervisor=SupervisorConfig(
                    retries=config.retries,
                    deadline_seconds=config.deadline,
                    checkpoint_dir=self._scratch("checkpoints", job),
                    resume=True,
                ),
            )
        elif plan.faults is None:
            plan = replace(
                plan,
                faults=FaultOptions(
                    checkpoint_dir=self._scratch("faults", job),
                    timeout_seconds=config.deadline,
                ),
            )
        outcome = execute(plan)
        if not outcome.ok:
            raise RuntimeError(
                f"plan did not complete cleanly (digest {outcome.digest})"
            )
        if outcome.result is not None:
            result = {
                "kind": "experiment-result",
                "experiment": plan.experiment_id,
                "title": outcome.result.title,
                "data": jsonable(outcome.result.data),
            }
        else:
            summary = outcome.summary
            result = {
                "kind": "fault-summary",
                "experiment": plan.experiment_id,
                "records": jsonable(
                    {
                        key: {"status": rec.status, "data": rec.data}
                        for key, rec in summary.records.items()
                    }
                ),
            }
        return outcome.digest, result, outcome.wall_time_seconds, outcome.stats

    def _run_scenario(
        self, job: Job, spec: Any, tracer: Tracer
    ) -> Tuple[str, Any, float, Dict[str, Any]]:
        from repro.scenario import run_scenario, scenario_report

        config = self.config
        before = get_stats().as_dict()
        start = time.perf_counter()
        with ExitStack() as stack:
            if config.backend:
                stack.enter_context(backend_context(config.backend))
            run = run_scenario(
                spec,
                jobs=config.jobs,
                cache=config.cache,
                cache_dir=config.cache_dir,
                work_dir=self._scratch("scenario", job),
                on_cell=lambda outcome: tracer.emit(
                    "serve.cell",
                    job=job.id,
                    cell=outcome.cell.cell_id,
                    status=outcome.status,
                    digest=outcome.digest,
                ),
            )
        wall = time.perf_counter() - start
        after = get_stats().as_dict()
        stats = {key: after[key] - before.get(key, 0) for key in after}
        report = scenario_report(run)
        return report["aggregate_digest"], report, wall, stats


# -- entry points --------------------------------------------------------


async def _serve_forever(config: ServeConfig) -> None:
    service = ExperimentService(config)
    server = await service.start()
    print(
        f"repro serve listening on http://{config.host}:{service.port} "
        f"(jobs={config.jobs}, concurrency={config.concurrency}, "
        f"cache_dir={config.cache_dir})",
        flush=True,
    )
    try:
        async with server:
            await server.serve_forever()
    finally:
        service.shutdown()


def run_server(config: ServeConfig) -> int:
    """Run the service until interrupted (the CLI entry point)."""
    asyncio.run(_serve_forever(config))
    return 0
