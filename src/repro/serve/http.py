"""Minimal asyncio HTTP/1.1 plumbing for the experiment service.

The repository's zero-extra-dependency rule extends to the service
layer: no FastAPI/uvicorn, just ``asyncio.start_server`` and enough of
HTTP/1.1 to serve JSON request/response bodies and chunked JSONL event
streams.  Deliberately small:

- one request per connection (``Connection: close``) — clients are
  pollers and streamers, not keep-alive fleets;
- request bodies only via ``Content-Length`` (chunked *requests* are
  rejected with 411), capped at :data:`MAX_BODY_BYTES`;
- responses either carry a ``Content-Length`` or use chunked transfer
  encoding (the events stream).

Everything protocol-shaped lives here so :mod:`repro.serve.app` is
pure routing and job logic.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlsplit

#: Submission bodies are small JSON documents; anything bigger than
#: this is a client error, not a workload.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Request line + headers must fit the StreamReader line limit.
MAX_LINE_BYTES = 64 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A protocol- or client-level error carrying an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, list] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        values = self.query.get(name)
        return values[-1] if values else default

    def json(self) -> Any:
        """The request body parsed as JSON; 400 on anything else."""
        if not self.body:
            raise HttpError(400, "request body required (application/json)")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from None


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; None on a closed connection."""
    try:
        raw_line = await reader.readline()
    except (ValueError, ConnectionError):
        raise HttpError(413, "request line too long")
    if not raw_line:
        return None
    try:
        request_line = raw_line.decode("latin-1").rstrip("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    while True:
        try:
            raw_header = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(413, "header section too long")
        line = raw_header.decode("latin-1").rstrip("\r\n")
        if not line:
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "invalid Content-Length")
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")

    parts = urlsplit(target)
    return Request(
        method=method.upper(),
        path=parts.path,
        query=parse_qs(parts.query),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
) -> bytes:
    """A complete, Content-Length-framed HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def json_response(status: int, payload: Any) -> bytes:
    body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode(
        "utf-8"
    )
    return render_response(status, body)


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"error": message, "status": status})


class ChunkedStream:
    """A chunked-transfer response body (the JSONL event stream)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.started = False

    async def start(self, content_type: str = "application/jsonl") -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        self.writer.write(head.encode("latin-1"))
        await self.writer.drain()
        self.started = True

    async def send(self, data: bytes) -> None:
        if not data:
            return
        self.writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self.writer.write(data)
        self.writer.write(b"\r\n")
        await self.writer.drain()

    async def send_json_line(self, payload: Any) -> None:
        line = json.dumps(payload, sort_keys=True, default=str) + "\n"
        await self.send(line.encode("utf-8"))

    async def finish(self) -> None:
        self.writer.write(b"0\r\n\r\n")
        await self.writer.drain()
