"""In-process server harness for the serve test battery.

Runs an :class:`~repro.serve.app.ExperimentService` on a dedicated
event-loop thread bound to an ephemeral port, so tests exercise the
real socket path (``http.client`` against ``127.0.0.1``) while still
being able to reach into the service — e.g. to install a chaos plan or
read the process-wide exec counters — because everything lives in the
test process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.app import ExperimentService, ServeConfig


class BackgroundServer:
    """Context manager: a live service on ``127.0.0.1:<ephemeral>``."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.service: Optional[ExperimentService] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            service = ExperimentService(self.config)
            server = loop.run_until_complete(service.start())
        except BaseException as error:  # pragma: no cover - startup bugs
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self.service = service
        self.port = service.port
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            service.shutdown()
            loop.close()
