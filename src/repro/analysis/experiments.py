"""Experiment registry: one runner per paper table/figure/study.

Every runner returns an :class:`ExperimentResult` whose ``text`` is a
printable report with the same rows/series the paper presents, and
whose ``data`` carries the raw numbers for tests and benchmarks.

Runners accept ``scale`` (trace-driven experiments) and/or
``repetitions`` (barrier-model experiments) so benchmarks can run at
paper fidelity while tests run miniatures.

Command line:

    python -m repro.analysis.experiments            # list experiments
    python -m repro.analysis.experiments figure5    # run one
"""

from __future__ import annotations

import inspect
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.analysis.figures import render_ascii_plot, render_series, savings_column
from repro.analysis.tables import render_table
from repro.barrier.hardware import hardware_baselines
from repro.barrier.models import (
    model1_accesses,
    model2_accesses,
)
from repro.barrier.queueing import (
    simulate_blocking_barrier,
    simulate_threshold_barrier,
)
from repro.barrier.resource import simulate_resource
from repro.barrier.simulator import simulate_barrier
from repro.barrier.sweep import (
    PAPER_A_VALUES,
    PAPER_N_VALUES,
    sweep,
    sweep_accesses,
    sweep_both,
    sweep_waiting_time,
)
from repro.barrier.tree import simulate_tree_barrier
from repro.barrier.validation import validate_uniform_model
from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    RandomizedExponentialBackoff,
    paper_policies,
)
from repro.core.locks import BackoffLock, TestAndSetLock, TestAndTestAndSetLock
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.network.hotspot import hotspot_sweep
from repro.network.netbackoff import (
    ConstantRoundTripBackoff,
    DepthProportionalBackoff,
    ExponentialRetryBackoff,
    ImmediateRetry,
    InverseDepthBackoff,
    QueueFeedbackBackoff,
)
from repro.obs.tracer import get_tracer
from repro.sim.stats import Series
from repro.trace.apps import build_app
from repro.trace.scheduler import PostMortemScheduler, ScheduledTrace


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


# ----------------------------------------------------------------------
# Shared trace generation (cached: scheduling a 64-cpu app is the
# expensive step and several experiments reuse the same trace).
# ----------------------------------------------------------------------

_TRACE_CACHE: Dict[Tuple[str, int, float], ScheduledTrace] = {}

APP_NAMES = ("FFT", "SIMPLE", "WEATHER")

#: Paper values for cross-reference in reports (Table 1 caption).
PAPER_SYNC_FRACTIONS = {"FFT": 0.2, "SIMPLE": 5.3, "WEATHER": 7.9}


def scheduled_trace(app: str, num_cpus: int, scale: float = 1.0) -> ScheduledTrace:
    """The multiprocessor trace for (app, P, scale), cached per process."""
    key = (app.upper(), num_cpus, scale)
    if key not in _TRACE_CACHE:
        program = build_app(app, scale=scale)
        _TRACE_CACHE[key] = PostMortemScheduler(program, num_cpus).run()
    return _TRACE_CACHE[key]


def _coherence_stats(
    app: str,
    num_cpus: int,
    num_pointers: int,
    cache_sync: bool,
    scale: float,
):
    trace = scheduled_trace(app, num_cpus, scale)
    simulator = CoherenceSimulator(
        CoherenceConfig(
            num_cpus=num_cpus,
            num_pointers=num_pointers,
            cache_sync=cache_sync,
        )
    )
    return simulator.run(trace)


# ----------------------------------------------------------------------
# Section 2: Tables 1-2, Figure 1.
# ----------------------------------------------------------------------

TABLE_POINTERS = (2, 3, 4, 5, 64)


def run_table1(
    scale: float = 1.0,
    num_cpus: int = 64,
    pointers: Sequence[int] = TABLE_POINTERS,
    apps: Sequence[str] = APP_NAMES,
) -> ExperimentResult:
    """Table 1: % of sync / non-sync references causing invalidations."""
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for app in apps:
        per_app: Dict[int, Tuple[float, float]] = {}
        for pointer_count in pointers:
            stats = _coherence_stats(app, num_cpus, pointer_count, True, scale)
            per_app[pointer_count] = (
                stats.data_invalidation_pct,
                stats.sync_invalidation_pct,
            )
            rows.append(
                [
                    app,
                    pointer_count,
                    stats.data_invalidation_pct,
                    stats.sync_invalidation_pct,
                ]
            )
        data[app] = per_app
    sync_fraction_rows = [
        [
            app,
            100 * scheduled_trace(app, num_cpus, scale).sync_fraction,
            PAPER_SYNC_FRACTIONS[app.upper()],
        ]
        for app in apps
    ]
    text = render_table(
        ["Application", "Pointers", "Non-Synch. %", "Synch. %"],
        rows,
        title=(
            "Table 1: references causing invalidations, Dir_i_NB, "
            f"{num_cpus} CPUs"
        ),
        float_format="%.1f",
    )
    text += "\n\n" + render_table(
        ["Application", "sync refs % (measured)", "sync refs % (paper)"],
        sync_fraction_rows,
        float_format="%.2f",
    )
    return ExperimentResult("table1", "invalidations by reference class", text, data)


def run_table2(
    scale: float = 1.0,
    num_cpus: int = 64,
    pointers: Sequence[int] = TABLE_POINTERS,
    apps: Sequence[str] = APP_NAMES,
) -> ExperimentResult:
    """Table 2: sync traffic % of total, sync variables uncached."""
    rows = []
    data: Dict[str, Dict[int, float]] = {}
    for app in apps:
        per_app: Dict[int, float] = {}
        for pointer_count in pointers:
            stats = _coherence_stats(app, num_cpus, pointer_count, False, scale)
            per_app[pointer_count] = stats.sync_traffic_pct
            rows.append([app, pointer_count, stats.sync_traffic_pct])
        data[app] = per_app
    text = render_table(
        ["Application", "Pointers", "Sync traffic %"],
        rows,
        title=(
            "Table 2: uncached synchronization traffic as % of total, "
            f"{num_cpus} CPUs"
        ),
        float_format="%.1f",
    )
    return ExperimentResult("table2", "uncached sync traffic share", text, data)


def run_figure1(
    scale: float = 1.0, num_cpus: int = 64, app: str = "SIMPLE"
) -> ExperimentResult:
    """Figure 1: invalidation histogram for SIMPLE, DirNNB, 64 CPUs."""
    stats = _coherence_stats(app, num_cpus, num_cpus, True, scale)
    histogram = stats.write_invalidation_histogram
    invalidating = [(k, c) for k, c in histogram.items() if k >= 1]
    total = sum(c for __, c in invalidating) or 1
    rows = []
    fractions: Dict[int, float] = {}
    for k, c in invalidating:
        fractions[k] = c / total
    for k in sorted(fractions):
        if k <= 12 or fractions[k] >= 0.001:
            rows.append([k, 100 * fractions[k]])
    at_most_3 = 100 * sum(f for k, f in fractions.items() if k <= 3)
    text = render_table(
        ["Invalidations x", "% of invalidating writes"],
        rows,
        title=f"Figure 1: invalidation histogram, {app}, {num_cpus} CPUs (DirNNB)",
        float_format="%.2f",
    )
    text += (
        f"\nInvalidating writes touching <= 3 caches: {at_most_3:.1f}% "
        "(paper: > 95%)"
    )
    return ExperimentResult(
        "figure1",
        "cache invalidation histogram",
        text,
        {"fractions": fractions, "at_most_3_pct": at_most_3},
    )


# ----------------------------------------------------------------------
# Section 5: Table 3, Figure 3.
# ----------------------------------------------------------------------


def run_table3(
    scale: float = 1.0,
    cpu_counts: Sequence[int] = (16, 64),
    apps: Sequence[str] = APP_NAMES,
) -> ExperimentResult:
    """Table 3: mean A and E intervals per application and CPU count."""
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for app in apps:
        per_app: Dict[int, Tuple[float, float]] = {}
        for num_cpus in cpu_counts:
            trace = scheduled_trace(app, num_cpus, scale)
            a_mean = trace.mean_interval_a()
            e_mean = trace.mean_interval_e()
            per_app[num_cpus] = (a_mean, e_mean)
            rows.append([app, num_cpus, a_mean, e_mean])
        data[app] = per_app
    text = render_table(
        ["Application", "Processors", "A", "E"],
        rows,
        title="Table 3: mean cycles between first/last arrivals (A) and barriers (E)",
        float_format="%.0f",
    )
    return ExperimentResult("table3", "barrier interval statistics", text, data)


def run_figure3(
    scale: float = 1.0,
    num_cpus: int = 16,
    apps: Sequence[str] = APP_NAMES,
    bins: int = 10,
) -> ExperimentResult:
    """Figure 3: arrival distribution within the interval A."""
    series: Dict[str, Series] = {}
    data: Dict[str, List[float]] = {}
    for app in apps:
        trace = scheduled_trace(app, num_cpus, scale)
        offsets = trace.arrival_offsets()
        span = max(offsets) if offsets else 1
        span = max(span, 1)
        counts = [0] * bins
        for offset in offsets:
            index = min(offset * bins // (span + 1), bins - 1)
            counts[index] += 1
        total = sum(counts) or 1
        curve = Series(label=f"{app}{num_cpus}")
        for b, count in enumerate(counts):
            curve.add((b + 0.5) / bins, count / total)
        series[f"{app}{num_cpus}"] = curve
        data[app] = [count / total for count in counts]
    text = render_series(
        series,
        x_label="fraction of A",
        title=f"Figure 3: arrival distribution within A ({num_cpus} CPUs)",
        float_format="%.3f",
    )
    return ExperimentResult("figure3", "arrival distribution within A", text, data)


# ----------------------------------------------------------------------
# Section 6: Figures 4-7 (network accesses).
# ----------------------------------------------------------------------


def run_figure4(
    repetitions: int = 100,
    n_values: Sequence[int] = PAPER_N_VALUES,
    a_values: Sequence[int] = PAPER_A_VALUES,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 4: analytic models vs no-backoff simulation."""
    series: Dict[str, Series] = {}
    data: Dict[str, Dict[int, float]] = {}
    for interval_a in a_values:
        sim_curve = Series(label=f"A={interval_a} (Sim)")
        for n in n_values:
            point = simulate_barrier(
                n, interval_a, NoBackoff(), repetitions=repetitions, seed=seed
            )
            sim_curve.add(n, point.mean_accesses)
        series[sim_curve.label] = sim_curve
        data[f"sim_A{interval_a}"] = dict(zip(sim_curve.xs, sim_curve.ys))
    model1_curve = Series(label="Model 1 (A<<N)")
    for n in n_values:
        model1_curve.add(n, model1_accesses(n))
    series[model1_curve.label] = model1_curve
    for interval_a in a_values:
        if interval_a == 0:
            continue
        model_curve = Series(label=f"A={interval_a} (Model 2)")
        for n in n_values:
            model_curve.add(n, model2_accesses(n, interval_a))
        series[model_curve.label] = model_curve
        data[f"model2_A{interval_a}"] = dict(zip(model_curve.xs, model_curve.ys))
    data["model1"] = dict(zip(model1_curve.xs, model1_curve.ys))
    text = render_series(
        series,
        title="Figure 4: model predictions vs simulation (network accesses/process)",
    )
    return ExperimentResult("figure4", "model vs simulation", text, data)


def _figure_accesses(
    figure_id: str, interval_a: int, repetitions: int, n_values, seed: int
) -> ExperimentResult:
    series = sweep_accesses(
        n_values=n_values,
        interval_a=interval_a,
        repetitions=repetitions,
        seed=seed,
    )
    baseline = series["Without Backoff"]
    extras = {
        label: savings_column(baseline, curve)
        for label, curve in series.items()
        if label != "Without Backoff"
    }
    text = render_series(
        series,
        title=(
            f"{figure_id}: network accesses per process, A = {interval_a}"
        ),
    )
    savings_series = {
        f"{label} savings %": curve for label, curve in extras.items()
    }
    text += "\n\n" + render_series(savings_series, float_format="%.1f")
    text += "\n\n" + render_ascii_plot(
        series, title="(accesses/process vs N, log2 x-axis)"
    )
    data = {
        label: dict(zip(curve.xs, curve.ys)) for label, curve in series.items()
    }
    return ExperimentResult(
        figure_id.lower().replace(" ", ""),
        f"backoff accesses, A={interval_a}",
        text,
        data,
    )


def run_figure5(
    repetitions: int = 100, n_values=PAPER_N_VALUES, seed: int = 0
) -> ExperimentResult:
    """Figure 5: accesses vs N at A = 0."""
    return _figure_accesses("Figure 5", 0, repetitions, n_values, seed)


def run_figure6(
    repetitions: int = 100, n_values=PAPER_N_VALUES, seed: int = 0
) -> ExperimentResult:
    """Figure 6: accesses vs N at A = 100."""
    return _figure_accesses("Figure 6", 100, repetitions, n_values, seed)


def run_figure7(
    repetitions: int = 100, n_values=PAPER_N_VALUES, seed: int = 0
) -> ExperimentResult:
    """Figure 7: accesses vs N at A = 1000."""
    return _figure_accesses("Figure 7", 1000, repetitions, n_values, seed)


# ----------------------------------------------------------------------
# Section 7: Figures 8-10 (waiting times).
# ----------------------------------------------------------------------


def _figure_waiting(
    figure_id: str, interval_a: int, repetitions: int, n_values, seed: int
) -> ExperimentResult:
    results = sweep(n_values, interval_a, None, repetitions, seed)
    series: Dict[str, Series] = {}
    tails: Dict[str, Series] = {}
    for label, points in results.items():
        curve = Series(label=label)
        tail = Series(label=f"{label} p95")
        for point in points:
            curve.add(point.num_processors, point.mean_waiting_time)
            tail.add(point.num_processors, point.mean_waiting_p95)
        series[label] = curve
        tails[f"{label} p95"] = tail
    text = render_series(
        series,
        title=f"{figure_id}: waiting time per process (cycles), A = {interval_a}",
    )
    text += "\n\n" + render_series(
        tails,
        title="95th-percentile waiting times (overshoot lives in the tail)",
    )
    text += "\n\n" + render_ascii_plot(
        series, title="(waiting cycles vs N, log2 x-axis)"
    )
    data = {
        label: dict(zip(curve.xs, curve.ys)) for label, curve in series.items()
    }
    return ExperimentResult(
        figure_id.lower().replace(" ", ""),
        f"waiting times, A={interval_a}",
        text,
        data,
    )


def run_figure8(
    repetitions: int = 100, n_values=PAPER_N_VALUES, seed: int = 0
) -> ExperimentResult:
    """Figure 8: waiting time vs N at A = 0."""
    return _figure_waiting("Figure 8", 0, repetitions, n_values, seed)


def run_figure9(
    repetitions: int = 100, n_values=PAPER_N_VALUES, seed: int = 0
) -> ExperimentResult:
    """Figure 9: waiting time vs N at A = 100."""
    return _figure_waiting("Figure 9", 100, repetitions, n_values, seed)


def run_figure10(
    repetitions: int = 100, n_values=PAPER_N_VALUES, seed: int = 0
) -> ExperimentResult:
    """Figure 10: waiting time vs N at A = 1000."""
    return _figure_waiting("Figure 10", 1000, repetitions, n_values, seed)


# ----------------------------------------------------------------------
# Section 5.1: hardware-supported barrier comparison.
# ----------------------------------------------------------------------


def run_hardware(
    repetitions: int = 100,
    n_values: Sequence[int] = (4, 8, 16, 32, 64, 128),
    a_values: Sequence[int] = PAPER_A_VALUES,
    seed: int = 0,
) -> ExperimentResult:
    """Section 5.1: base-2 flag backoff vs hardware barrier baselines."""
    rows = []
    data: Dict[str, Dict[int, float]] = {"backoff": {}}
    for n in n_values:
        baselines = hardware_baselines(n)
        for name, value in baselines.items():
            data.setdefault(name, {})[n] = value
        best_backoff = None
        for interval_a in a_values:
            point = simulate_barrier(
                n,
                interval_a,
                ExponentialFlagBackoff(base=2),
                repetitions=repetitions,
                seed=seed,
            )
            if best_backoff is None or point.mean_accesses < best_backoff[1]:
                best_backoff = (interval_a, point.mean_accesses)
        assert best_backoff is not None
        data["backoff"][n] = best_backoff[1]
        rows.append(
            [
                n,
                best_backoff[1],
                baselines["invalidating bus"],
                baselines["updating bus"],
                baselines["full-map directory"],
                baselines["Hoshino gate"],
            ]
        )
    text = render_table(
        [
            "N",
            "base-2 backoff (best A)",
            "inval. bus",
            "update bus",
            "directory",
            "Hoshino",
        ],
        rows,
        title="Section 5.1: accesses/processor vs hardware-supported barriers",
        float_format="%.1f",
    )
    return ExperimentResult("hardware", "hardware barrier comparison", text, data)


# ----------------------------------------------------------------------
# Section 7.1: FFT average-traffic case study.
# ----------------------------------------------------------------------


def run_fft_traffic(
    scale: float = 1.0,
    num_cpus: int = 64,
    repetitions: int = 100,
    seed: int = 0,
) -> ExperimentResult:
    """Section 7.1: FFT average network traffic with and without backoff.

    The paper: base data traffic 0.133 accesses/cycle/processor;
    adding uncached barrier traffic raises it to 0.136; base-8
    exponential backoff brings it back to 0.134, and the barrier-model
    prediction (0.136) matches the trace measurement (0.135).
    """
    trace = scheduled_trace("FFT", num_cpus, scale)
    stats = _coherence_stats("FFT", num_cpus, num_cpus, True, scale)
    cycles = max(trace.cycles, 1)
    base_rate = stats.data_traffic / (cycles * num_cpus)

    # Barrier period: one barrier every (A + E) cycles in the trace.
    period = max(trace.mean_interval_a() + trace.mean_interval_e(), 1.0)
    interval_a = max(int(round(trace.mean_interval_a())), 1)

    def barrier_rate(policy) -> float:
        point = simulate_barrier(
            num_cpus, interval_a, policy, repetitions=repetitions, seed=seed
        )
        return point.mean_accesses / period

    no_backoff_rate = barrier_rate(NoBackoff())
    base8_rate = barrier_rate(ExponentialFlagBackoff(base=8))

    # Trace-measured synchronization traffic rate (sync uncached: two
    # transactions per sync reference), for model validation.
    measured_sync_rate = 2 * trace.sync_refs / (cycles * num_cpus)

    rows = [
        ["base data traffic (no sync)", base_rate],
        ["+ barriers, no backoff (model)", base_rate + no_backoff_rate],
        ["+ barriers, base-8 backoff (model)", base_rate + base8_rate],
        ["+ sync refs, trace-measured", base_rate + measured_sync_rate],
    ]
    text = render_table(
        ["Configuration", "accesses/cycle/processor"],
        rows,
        title=f"Section 7.1: FFT average network traffic ({num_cpus} CPUs)",
        float_format="%.4f",
    )
    text += (
        "\nPaper: 0.133 base -> 0.136 with barriers -> 0.134 with base-8 "
        "backoff; model 0.136 vs measured 0.135."
    )
    data = {
        "base_rate": base_rate,
        "with_barriers": base_rate + no_backoff_rate,
        "with_base8": base_rate + base8_rate,
        "measured": base_rate + measured_sync_rate,
    }
    return ExperimentResult("fft_traffic", "FFT average traffic", text, data)


# ----------------------------------------------------------------------
# Section 8 extensions.
# ----------------------------------------------------------------------


def run_resource(
    repetitions: int = 50,
    n_values: Sequence[int] = (4, 8, 16, 32, 64),
    hold_time: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Section 8: resource waiting — TAS vs TTAS vs proportional backoff."""
    strategies = [
        TestAndSetLock(),
        TestAndTestAndSetLock(),
        BackoffLock(hold_time=hold_time),
    ]
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for strategy in strategies:
        per_n: Dict[int, Tuple[float, float]] = {}
        for n in n_values:
            aggregate = simulate_resource(
                n,
                strategy,
                hold_time=hold_time,
                repetitions=repetitions,
                seed=seed,
            )
            per_n[n] = (aggregate.mean_accesses, aggregate.mean_makespan)
            rows.append(
                [strategy.name, n, aggregate.mean_accesses, aggregate.mean_makespan]
            )
        data[strategy.name] = per_n
    text = render_table(
        ["Strategy", "N", "accesses/proc", "makespan"],
        rows,
        title=f"Section 8: resource waiting (hold time {hold_time})",
        float_format="%.1f",
    )
    return ExperimentResult("resource", "resource waiting backoff", text, data)


def run_netbackoff(
    num_ports: int = 64,
    hot_fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    horizon: int = 20_000,
    seed: int = 0,
) -> ExperimentResult:
    """Section 8: network-access backoff in a circuit-switched net."""
    policies = [
        ImmediateRetry(),
        DepthProportionalBackoff(),
        InverseDepthBackoff(),
        ConstantRoundTripBackoff(),
        ExponentialRetryBackoff(),
        QueueFeedbackBackoff(),
    ]
    results = hotspot_sweep(
        num_ports=num_ports,
        hot_fractions=hot_fractions,
        policies=policies,
        horizon=horizon,
        seed=seed,
    )
    rows = []
    data: Dict[str, Dict[float, Tuple[float, float]]] = {}
    for policy_name, per_fraction in results.items():
        per: Dict[float, Tuple[float, float]] = {}
        for fraction, outcome in per_fraction.items():
            per[fraction] = (outcome.throughput, outcome.attempts_per_message.mean)
            rows.append(
                [
                    policy_name,
                    fraction,
                    outcome.throughput,
                    outcome.attempts_per_message.mean,
                    outcome.latency.mean,
                ]
            )
        data[policy_name] = per
    text = render_table(
        ["Policy", "hot frac", "throughput", "attempts/msg", "latency"],
        rows,
        title=(
            f"Section 8: network backoff under hot-spot traffic "
            f"({num_ports}-port Omega)"
        ),
        float_format="%.3f",
    )
    return ExperimentResult("netbackoff", "network access backoff", text, data)


def run_combining(
    repetitions: int = 50,
    n_values: Sequence[int] = (64, 256),
    a_values: Sequence[int] = (0, 100),
    degrees: Sequence[int] = (2, 4, 8),
    seed: int = 0,
) -> ExperimentResult:
    """Sections 4/6: combining-tree barriers vs the flat barrier."""
    rows = []
    data: Dict[str, Dict[Tuple[int, int], float]] = {"flat": {}}
    for n in n_values:
        for interval_a in a_values:
            flat = simulate_barrier(
                n, interval_a, NoBackoff(), repetitions=repetitions, seed=seed
            )
            data["flat"][(n, interval_a)] = flat.mean_accesses
            rows.append(["flat", n, interval_a, flat.mean_accesses,
                         flat.mean_waiting_time])
            for degree in degrees:
                tree = simulate_tree_barrier(
                    n,
                    interval_a,
                    degree=degree,
                    repetitions=repetitions,
                    seed=seed,
                )
                key = f"tree-{degree}"
                data.setdefault(key, {})[(n, interval_a)] = tree.mean_accesses
                rows.append(
                    [key, n, interval_a, tree.mean_accesses, tree.mean_waiting_time]
                )
    text = render_table(
        ["Barrier", "N", "A", "accesses/proc", "waiting"],
        rows,
        title="Combining-tree vs flat barrier (no backoff at nodes)",
        float_format="%.1f",
    )
    return ExperimentResult("combining", "combining-tree barriers", text, data)


def run_queueing(
    repetitions: int = 50,
    num_processors: int = 64,
    a_values: Sequence[int] = (0, 100, 1000, 10_000),
    threshold: int = 256,
    overhead: int = 100,
    seed: int = 0,
) -> ExperimentResult:
    """Sections 4/7: spin vs block vs spin-then-queue hybrid."""
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for interval_a in a_values:
        spin = simulate_barrier(
            num_processors,
            interval_a,
            ExponentialFlagBackoff(base=2),
            repetitions=repetitions,
            seed=seed,
        )
        block = simulate_blocking_barrier(
            num_processors,
            interval_a,
            enqueue_overhead=overhead,
            wakeup_overhead=overhead,
            repetitions=repetitions,
            seed=seed,
        )
        hybrid = simulate_threshold_barrier(
            num_processors,
            interval_a,
            ExponentialFlagBackoff(base=2),
            threshold=threshold,
            enqueue_overhead=overhead,
            wakeup_overhead=overhead,
            repetitions=repetitions,
            seed=seed,
        )
        for label, point in (("spin-b2", spin), ("block", block), ("hybrid", hybrid)):
            data.setdefault(label, {})[interval_a] = (
                point.mean_accesses,
                point.mean_waiting_time,
            )
            rows.append(
                [label, interval_a, point.mean_accesses, point.mean_waiting_time]
            )
    text = render_table(
        ["Scheme", "A", "accesses/proc", "waiting"],
        rows,
        title=(
            f"Spin vs block vs threshold-queue hybrid "
            f"(N={num_processors}, overhead={overhead}, threshold={threshold})"
        ),
        float_format="%.1f",
    )
    return ExperimentResult("queueing", "spin vs block vs hybrid", text, data)


def run_application(
    repetitions: int = 20,
    num_processors: int = 64,
    work_interval: int = 2000,
    rounds: int = 10,
    jitter: float = 0.2,
    seed: int = 0,
) -> ExperimentResult:
    """End-to-end application model: rounds of work + barriers.

    Closes the loop on the per-barrier figures: with arrival spread
    *emerging* from work jitter, how much does each policy slow the
    whole application down, and how much traffic does it remove?
    """
    from repro.barrier.application import simulate_application

    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for label, policy in paper_policies().items():
        aggregate = simulate_application(
            num_processors,
            work_interval,
            policy=policy,
            rounds=rounds,
            jitter=jitter,
            repetitions=repetitions,
            seed=seed,
        )
        data[label] = {
            "completion": aggregate.completion.mean,
            "accesses": aggregate.accesses.mean,
            "traffic_rate": aggregate.traffic_rate.mean,
            "overhead": aggregate.overhead.mean,
            "arrival_span": aggregate.arrival_span.mean,
        }
        rows.append(
            [
                label,
                aggregate.completion.mean,
                100 * aggregate.overhead.mean,
                aggregate.accesses.mean,
                1000 * aggregate.traffic_rate.mean,
                aggregate.arrival_span.mean,
            ]
        )
    text = render_table(
        [
            "Policy",
            "completion",
            "overhead %",
            "accesses/proc",
            "sync traffic (per 1000 cyc)",
            "emergent A",
        ],
        rows,
        title=(
            f"Application model: N={num_processors}, E~{work_interval} "
            f"(+/-{int(100 * jitter)}%), {rounds} rounds"
        ),
        float_format="%.1f",
    )
    return ExperimentResult(
        "application", "end-to-end application slowdown", text, data
    )


def run_coupling(
    repetitions: int = 50,
    num_processors: int = 64,
    interval_a: int = 100,
    barrier_period: float = 2000.0,
    background_rate: float = 0.3,
    seed: int = 0,
) -> ExperimentResult:
    """Section 3: feed barrier traffic rates into the Patel model.

    For each policy: simulate the barrier, amortise its accesses over
    the barrier period, add the background request rate, and report the
    Patel acceptance probability — the analytic estimate of how much
    the network relieves when backoff removes synchronization traffic.
    """
    from repro.network.coupling import couple_barrier_traffic

    rows = []
    data: Dict[str, Dict[str, float]] = {}
    estimates = {}
    for label, policy in paper_policies().items():
        aggregate = simulate_barrier(
            num_processors,
            interval_a,
            policy,
            repetitions=repetitions,
            seed=seed,
        )
        estimate = couple_barrier_traffic(
            num_ports=num_processors,
            background_rate=background_rate,
            barrier_accesses_per_process=aggregate.mean_accesses,
            barrier_period=barrier_period,
        )
        estimates[label] = estimate
        data[label] = {
            "barrier_rate": estimate.barrier_rate,
            "offered": estimate.offered_rate,
            "acceptance": estimate.acceptance_probability,
            "bandwidth": estimate.effective_bandwidth,
        }
        rows.append(
            [
                label,
                estimate.barrier_rate,
                estimate.offered_rate,
                estimate.acceptance_probability,
                estimate.effective_bandwidth,
            ]
        )
    baseline = estimates["Without Backoff"]
    relief = {
        label: -estimate.slowdown_vs(baseline)
        for label, estimate in estimates.items()
        if label != "Without Backoff"
    }
    text = render_table(
        ["Policy", "barrier rate", "offered rate", "acceptance", "bandwidth"],
        rows,
        title=(
            f"Patel-coupled network estimate: N={num_processors}, A="
            f"{interval_a}, background {background_rate}/cycle, period "
            f"{barrier_period:.0f}"
        ),
        float_format="%.4f",
    )
    best = max(relief.items(), key=lambda item: item[1])
    text += (
        f"\nAcceptance-probability relief vs no backoff: best "
        f"{best[0]!r} at +{100 * best[1]:.2f}% (the paper cautions the "
        "Patel model ignores hot-spots, so this uniform-traffic relief "
        "is a lower bound)."
    )
    data["relief"] = relief
    return ExperimentResult("coupling", "Patel-coupled network estimate", text, data)


def run_schedules(
    repetitions: int = 50,
    num_processors: int = 64,
    a_values: Sequence[int] = (100, 1000, 10_000),
    seed: int = 0,
) -> ExperimentResult:
    """Ablation: linear vs exponential flag-backoff schedules.

    Section 4.2 allows "a linear or exponential amount"; the figures
    evaluate only the exponential family.  This ablation fills in the
    linear schedules for comparison.
    """
    from repro.core.backoff import LinearFlagBackoff

    policies = {
        "none": NoBackoff(),
        "linear c=1": LinearFlagBackoff(step=1),
        "linear c=4": LinearFlagBackoff(step=4),
        "linear c=16": LinearFlagBackoff(step=16),
        "exp b=2": ExponentialFlagBackoff(base=2),
        "exp b=8": ExponentialFlagBackoff(base=8),
    }
    rows = []
    data: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for label, policy in policies.items():
        per_a: Dict[int, Tuple[float, float]] = {}
        for interval_a in a_values:
            aggregate = simulate_barrier(
                num_processors,
                interval_a,
                policy,
                repetitions=repetitions,
                seed=seed,
            )
            per_a[interval_a] = (
                aggregate.mean_accesses,
                aggregate.mean_waiting_time,
            )
            rows.append(
                [
                    label,
                    interval_a,
                    aggregate.mean_accesses,
                    aggregate.mean_waiting_time,
                ]
            )
        data[label] = per_a
    text = render_table(
        ["Schedule", "A", "accesses/proc", "waiting"],
        rows,
        title=(
            f"Backoff schedule ablation (N={num_processors}): linear vs "
            "exponential flag backoff"
        ),
        float_format="%.1f",
    )
    text += (
        "\nLinear schedules cut polling by ~sqrt of the span; the "
        "exponential family reaches the log-of-span floor the paper's "
        "Model 2 analysis predicts."
    )
    return ExperimentResult("schedules", "linear vs exponential schedules", text, data)


def run_bus_vs_directory(
    scale: float = 0.5,
    num_cpus: int = 32,
    app: str = "SIMPLE",
    pointers: Sequence[int] = (2, 4),
) -> ExperimentResult:
    """Section 2.1's contrast: snoopy bus vs limited-pointer directory.

    "Because snoopy-cache-based protocols perform broadcast invalidates
    or updates, a variable shared among all processors generates no
    more traffic on the shared bus than a variable shared among only
    two processors" — whereas the directory pays per-copy invalidations
    and pointer-overflow evictions.  Run the same trace through both and
    compare the synchronization share of the traffic.
    """
    from repro.memory.snoopy import SnoopyConfig, SnoopySimulator

    trace = scheduled_trace(app, num_cpus, scale)
    rows = []
    data: Dict[str, Tuple[float, float]] = {}

    for protocol in ("invalidate", "update"):
        simulator = SnoopySimulator(
            SnoopyConfig(num_cpus=num_cpus, protocol=protocol)
        )
        stats = simulator.run(trace)
        sync_share = (
            100.0 * stats.sync_bus_transactions / stats.bus_transactions
            if stats.bus_transactions
            else 0.0
        )
        per_ref = stats.bus_transactions / max(stats.refs, 1)
        label = f"snoopy-{protocol}"
        data[label] = (sync_share, per_ref)
        rows.append([label, sync_share, per_ref])

    for pointer_count in pointers:
        simulator = CoherenceSimulator(
            CoherenceConfig(num_cpus=num_cpus, num_pointers=pointer_count)
        )
        stats = simulator.run(trace)
        sync_share = (
            100.0 * stats.sync_traffic / stats.total_traffic
            if stats.total_traffic
            else 0.0
        )
        per_ref = stats.total_traffic / max(stats.refs, 1)
        label = f"directory-{pointer_count}ptr"
        data[label] = (sync_share, per_ref)
        rows.append([label, sync_share, per_ref])

    text = render_table(
        ["Protocol", "sync share of traffic %", "transactions/ref"],
        rows,
        title=(
            f"Section 2.1: snoopy bus vs directory on {app} "
            f"({num_cpus} CPUs, scale {scale})"
        ),
        float_format="%.2f",
    )
    text += (
        "\nThe bus broadcasts: one transaction per write no matter how "
        "many copies exist, so synchronization's share of bus traffic "
        "stays modest.  The limited-pointer directory pays per-copy "
        "invalidations and pointer-overflow evictions on the widely "
        "shared synchronization words — which is the paper's case for "
        "scaling trouble."
    )
    return ExperimentResult(
        "bus_vs_directory", "snoopy bus vs directory", text, data
    )


def run_coherent_barrier(
    num_processors: int = 64,
    interval_a: int = 100,
    repetitions: int = 20,
    seed: int = 0,
) -> ExperimentResult:
    """Section 5.1 by simulation: barriers through coherence protocols.

    The paper prices hardware barriers analytically (invalidating bus
    ~3 accesses/processor, updating bus ~2, full-map directory ~4);
    here each scheme executes a real barrier episode through the
    corresponding protocol simulator.  The simulated counts exceed the
    paper's idealized constants by the post-release re-fetch the paper
    drops, but the ordering and the headline — uncached spinning costs
    ~2.5N transactions per processor and backoff brings it down to the
    hardware schemes' neighbourhood — are simulated, not assumed.
    """
    from repro.barrier.coherent import simulate_coherent_barrier

    schemes = [
        ("snoopy-update", "updating bus (paper ~2)"),
        ("snoopy-invalidate-fiw", "inval. bus + fetch-intent-write (paper ~2)"),
        ("snoopy-invalidate", "invalidating bus (paper ~3)"),
        ("directory", "full-map directory (paper ~4)"),
        ("uncached", "uncached, continuous spin"),
    ]
    rows = []
    data: Dict[str, float] = {}
    for scheme, label in schemes:
        stats = simulate_coherent_barrier(
            num_processors,
            scheme,
            interval_a=interval_a,
            repetitions=repetitions,
            seed=seed,
        )
        data[scheme] = stats.mean
        rows.append([label, stats.mean])
    backoff_stats = simulate_coherent_barrier(
        num_processors,
        "uncached",
        interval_a=interval_a,
        policy=ExponentialFlagBackoff(base=2),
        repetitions=repetitions,
        seed=seed,
    )
    data["uncached-b2"] = backoff_stats.mean
    rows.append(["uncached + base-2 backoff (the paper's proposal)",
                 backoff_stats.mean])
    text = render_table(
        ["Scheme", "transactions/processor"],
        rows,
        title=(
            f"Section 5.1 by simulation: one barrier episode, N="
            f"{num_processors}, A={interval_a}"
        ),
        float_format="%.2f",
    )
    text += (
        "\nSimulated counts sit ~1-2 above the paper's idealized "
        "constants because the paper's accounting drops the "
        "post-release re-fetch; the ordering (update < invalidating "
        "bus < directory << uncached) and the software-backoff "
        "rapprochement are reproduced by simulation."
    )
    return ExperimentResult(
        "coherent_barrier", "barriers through coherence protocols", text, data
    )


def run_tree_saturation(
    num_ports: int = 64,
    hot_fractions: Sequence[float] = (0.0, 0.01, 0.02, 0.04, 0.08, 0.16),
    injection_rate: float = 0.4,
    horizon: int = 5_000,
    seed: int = 0,
) -> ExperimentResult:
    """Hot-spot tree saturation in a buffered network (the motivation).

    Reproduces the Pfister & Norton phenomenon the paper builds on:
    "only a small percentage of all data accesses to the same 'hot'
    module can cause tree saturation in the interconnection network and
    a corresponding severe drop in the effective memory bandwidth" —
    and evaluates the Section 8(5) Scott & Sohi queue-feedback throttle
    reactively (after a blocked injection) and proactively (before
    sending, using the destination queue occupancy).
    """
    from repro.network.netbackoff import QueueFeedbackBackoff
    from repro.network.packet import tree_saturation_sweep

    variants = {
        "immediate": dict(backoff=None, proactive=False),
        "feedback-reactive": dict(
            backoff=QueueFeedbackBackoff(factor=2), proactive=False
        ),
        "feedback-proactive": dict(
            backoff=QueueFeedbackBackoff(factor=2), proactive=True
        ),
    }
    rows = []
    data: Dict[str, Dict[float, Tuple[float, float]]] = {}
    for label, options in variants.items():
        sweep_result = tree_saturation_sweep(
            num_ports=num_ports,
            hot_fractions=hot_fractions,
            injection_rate=injection_rate,
            horizon=horizon,
            seed=seed,
            **options,
        )
        per: Dict[float, Tuple[float, float]] = {}
        for fraction, outcome in sweep_result.items():
            per[fraction] = (outcome.cold_throughput, outcome.latency_cold.mean)
            rows.append(
                [
                    label,
                    fraction,
                    outcome.cold_throughput,
                    outcome.hot_throughput,
                    outcome.latency_cold.mean,
                    outcome.blocked_fraction,
                ]
            )
        data[label] = per
    text = render_table(
        [
            "Policy",
            "hot frac",
            "cold thr/port",
            "hot thr",
            "cold latency",
            "blocked frac",
        ],
        rows,
        title=(
            f"Tree saturation ({num_ports}-port buffered Omega, "
            f"injection {injection_rate}/cycle)"
        ),
        float_format="%.3f",
    )
    text += (
        "\nCold bandwidth collapses as a few percent of references go "
        "hot (Pfister-Norton); queue feedback cannot restore bandwidth "
        "(the hot module's service rate is the bottleneck) but the "
        "proactive throttle sharply cuts the latency everyone suffers."
    )
    return ExperimentResult(
        "tree_saturation", "hot-spot tree saturation", text, data
    )


def run_determinism(
    repetitions: int = 50,
    points: Sequence[Tuple[int, int]] = ((16, 1000), (64, 1000), (256, 1000)),
    base: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Ablation: deterministic vs randomized exponential backoff.

    Section 4.2 argues for determinism: "Since all the processors
    backoff by equal amounts the serialization is preserved.  However,
    if the processors retry probabilistically, the serialization is
    destroyed and could result in contention again."  This ablation
    measures exactly that.
    """
    rows = []
    data: Dict[Tuple[int, int], Dict[str, Tuple[float, float]]] = {}
    for n, interval_a in points:
        deterministic = simulate_barrier(
            n,
            interval_a,
            ExponentialFlagBackoff(base=base),
            repetitions=repetitions,
            seed=seed,
        )
        randomized = simulate_barrier(
            n,
            interval_a,
            RandomizedExponentialBackoff(base=base, seed=seed),
            repetitions=repetitions,
            seed=seed,
        )
        data[(n, interval_a)] = {
            "deterministic": (
                deterministic.mean_accesses,
                deterministic.mean_waiting_time,
            ),
            "randomized": (
                randomized.mean_accesses,
                randomized.mean_waiting_time,
            ),
        }
        rows.append(
            [
                n,
                interval_a,
                deterministic.mean_accesses,
                randomized.mean_accesses,
                deterministic.mean_waiting_time,
                randomized.mean_waiting_time,
            ]
        )
    text = render_table(
        ["N", "A", "det. accesses", "rand. accesses", "det. wait", "rand. wait"],
        rows,
        title=(
            f"Determinism ablation: base-{base} exponential flag backoff, "
            "deterministic vs randomized windows"
        ),
        float_format="%.1f",
    )
    text += (
        "\nPaper argument (Section 4.2): randomized retries destroy the "
        "serialization established by the first contention episode."
    )
    return ExperimentResult(
        "determinism", "deterministic vs randomized backoff", text, data
    )


def run_tree_coherence(
    scale: float = 0.5,
    num_cpus: int = 64,
    num_pointers: int = 4,
    degrees: Sequence[int] = (3, 8),
    app: str = "SIMPLE",
) -> ExperimentResult:
    """Ablation: combining-tree barriers under a limited-pointer directory.

    Section 1: "A potential solution for the cache directories would be
    to implement software combining trees for synchronization
    variables.  As long as the degree of the nodes in the combining
    tree is less than the number of pointers in the cache-directory,
    then synchronization variables will not result in extra
    invalidation traffic."
    """
    from repro.trace.scheduler import PostMortemScheduler

    rows = []
    data: Dict[str, Tuple[float, float]] = {}

    def measure(label: str, style: str, degree: int) -> None:
        program = build_app(app, scale=scale)
        trace = PostMortemScheduler(
            program, num_cpus, barrier_style=style, tree_degree=degree
        ).run()
        simulator = CoherenceSimulator(
            CoherenceConfig(num_cpus=num_cpus, num_pointers=num_pointers)
        )
        stats = simulator.run(trace)
        data[label] = (stats.sync_invalidation_pct, stats.data_invalidation_pct)
        rows.append(
            [
                label,
                stats.sync_invalidation_pct,
                stats.data_invalidation_pct,
                100 * trace.sync_fraction,
            ]
        )

    measure("flat", "flat", num_cpus)
    for degree in degrees:
        measure(f"tree-{degree}", "tree", degree)
    text = render_table(
        ["Barrier", "sync inval %", "data inval %", "sync refs %"],
        rows,
        title=(
            f"Combining-tree coherence ablation: {app}, {num_cpus} CPUs, "
            f"Dir_{num_pointers}_NB"
        ),
        float_format="%.1f",
    )
    text += (
        f"\nWith node degree < {num_pointers} pointers the synchronization "
        "words never overflow the directory, so the sync invalidation "
        "rate collapses — the paper's Section 1 prescription."
    )
    return ExperimentResult(
        "tree_coherence", "combining trees vs directory pointers", text, data
    )


def run_validation(
    scale: float = 1.0,
    num_cpus: int = 64,
    repetitions: int = 100,
    apps: Sequence[str] = APP_NAMES,
    seed: int = 0,
) -> ExperimentResult:
    """Validate the uniform-arrival model against measured arrivals.

    Section 5/7.1: the uniform assumption "is not expected to
    significantly change our results", confirmed by the 0.136-vs-0.135
    traffic cross-check.  Here: run the barrier simulator under uniform
    arrivals and under arrivals resampled from each application's
    measured offsets, and compare.
    """
    rows = []
    data: Dict[str, float] = {}
    for app in apps:
        trace = scheduled_trace(app, num_cpus, scale)
        result = validate_uniform_model(
            trace, repetitions=repetitions, seed=seed
        )
        data[app] = result.access_error_pct
        rows.append(
            [
                app,
                result.uniform.mean_accesses,
                result.empirical.mean_accesses,
                result.access_error_pct,
            ]
        )
    text = render_table(
        ["Application", "uniform model", "measured arrivals", "error %"],
        rows,
        title=(
            "Uniform-arrival model validation (accesses/process, "
            f"{num_cpus} CPUs, no backoff)"
        ),
        float_format="%.1f",
    )
    return ExperimentResult("validation", "uniform-model validation", text, data)


# ----------------------------------------------------------------------
# Registry and CLI.
# ----------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "figure1": run_figure1,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "hardware": run_hardware,
    "fft_traffic": run_fft_traffic,
    "resource": run_resource,
    "netbackoff": run_netbackoff,
    "combining": run_combining,
    "queueing": run_queueing,
    "determinism": run_determinism,
    "tree_coherence": run_tree_coherence,
    "validation": run_validation,
    "application": run_application,
    "coupling": run_coupling,
    "schedules": run_schedules,
    "tree_saturation": run_tree_saturation,
    "coherent_barrier": run_coherent_barrier,
    "bus_vs_directory": run_bus_vs_directory,
}


def _lookup(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


#: Sweep axes :func:`experiment_points` can decompose, in priority
#: order, with the label each single value gets in point keys.
_POINT_AXES: Tuple[Tuple[str, Callable[[Any], str]], ...] = (
    ("n_values", lambda v: f"N={v}"),
    ("a_values", lambda v: f"A={v}"),
    ("cpu_counts", lambda v: f"P={v}"),
    ("hot_fractions", lambda v: f"hot={v}"),
    ("apps", lambda v: f"app={v}"),
    ("points", lambda v: f"N={v[0]},A={v[1]}"),
)


def experiment_points(experiment_id: str, **overrides) -> Dict[str, dict]:
    """Decompose an experiment into independently runnable sweep points.

    Returns an ordered mapping ``{point_key: runner_kwargs}`` such that
    running the runner once per entry covers the same parameter space
    as one full run.  The first sweep axis the runner's signature
    exposes (see ``_POINT_AXES``) is split into single-value points
    (keys like ``"N=64"``); experiments with no recognised axis run as
    one point keyed ``"all"``.  ``overrides`` are forwarded to every
    point (an override for the split axis re-scopes the sweep).

    This is the unit of checkpointing for the resilient runner
    (:func:`repro.faults.runner.run_experiment_resilient`): each point
    is retried, timed out, and persisted independently.
    """
    runner = _lookup(experiment_id)
    parameters = inspect.signature(runner).parameters
    base = dict(overrides)
    for axis, key_of in _POINT_AXES:
        if axis not in parameters:
            continue
        values = base.pop(axis, None)
        if values is None:
            values = parameters[axis].default
        values = list(values)
        if not values:
            raise ValueError(
                f"experiment {experiment_id!r}: axis {axis!r} has no values"
            )
        return {
            key_of(value): {**base, axis: (value,)} for value in values
        }
    return {"all": base}


def run(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    runner = _lookup(experiment_id)
    tracer = get_tracer()
    if not tracer.enabled:
        return runner(**kwargs)
    tracer.emit("experiment.start", experiment=experiment_id, config=kwargs)
    with tracer.timer(f"experiment.{experiment_id}"):
        result = runner(**kwargs)
    tracer.count("experiment.runs")
    tracer.emit("experiment.end", experiment=experiment_id, title=result.title)
    return result


def main(argv: Sequence[str]) -> int:
    if len(argv) < 2:
        print("usage: python -m repro.analysis.experiments <id> [...]")
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 1
    for experiment_id in argv[1:]:
        print(run(experiment_id))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
