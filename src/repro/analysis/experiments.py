"""Experiment registry facade: the historical id -> runner surface.

The experiment implementations live in :mod:`repro.registry` as
declarative :class:`~repro.registry.spec.ExperimentSpec` modules
(``src/repro/registry/experiments/``); this module keeps the seed-era
import surface alive on top of them:

- :data:`EXPERIMENTS` — a live read-only mapping of experiment id to a
  legacy-style runner callable,
- :func:`run` / :func:`experiment_points` — re-exported from the
  registry (identical ids, kwargs, point keys and results),
- :func:`scheduled_trace` and the trace-derived constants shared by
  spec modules and tests.

Every runner returns an :class:`ExperimentResult` whose ``text`` is a
printable report with the same rows/series the paper presents, and
whose ``data`` carries the raw numbers for tests and benchmarks.

Command line:

    python -m repro.analysis.experiments            # list experiments
    python -m repro.analysis.experiments figure5    # run one
"""

from __future__ import annotations

import sys
from typing import Callable, Iterator, Mapping, Sequence

from repro.registry.common import (
    _TRACE_CACHE,
    APP_NAMES,
    PAPER_SYNC_FRACTIONS,
    TABLE_POINTERS,
    coherence_stats as _coherence_stats,
    scheduled_trace,
)
from repro.registry.result import ExperimentResult
from repro.registry.runner import experiment_points, run
from repro.registry.spec import experiment_ids, get_spec

__all__ = [
    "APP_NAMES",
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_SYNC_FRACTIONS",
    "TABLE_POINTERS",
    "experiment_points",
    "main",
    "run",
    "scheduled_trace",
]


class _ExperimentsView(Mapping[str, Callable[..., ExperimentResult]]):
    """The registry presented as the historical ``{id: run_*}`` dict.

    Lookups resolve live against :mod:`repro.registry`, so experiments
    registered later (e.g. by plugins or tests) appear here without any
    synchronisation step.
    """

    def __getitem__(self, experiment_id: str) -> Callable[..., ExperimentResult]:
        return get_spec(experiment_id).runner()

    def __iter__(self) -> Iterator[str]:
        return iter(experiment_ids())

    def __len__(self) -> int:
        return len(experiment_ids())

    def __repr__(self) -> str:
        return f"<EXPERIMENTS: {', '.join(experiment_ids())}>"


#: Experiment id -> runner callable (live view of the registry).
EXPERIMENTS: Mapping[str, Callable[..., ExperimentResult]] = _ExperimentsView()


def main(argv: Sequence[str]) -> int:
    if len(argv) < 2:
        print("usage: python -m repro.analysis.experiments <id> [...]")
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 1
    for experiment_id in argv[1:]:
        print(run(experiment_id))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
