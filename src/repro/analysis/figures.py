"""Plain-text rendering of figure series (one column per curve)."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.analysis.tables import render_table
from repro.sim.stats import Series


def render_series(
    series: Mapping[str, Series],
    x_label: str = "N",
    title: Optional[str] = None,
    float_format: str = "%.1f",
) -> str:
    """Render several curves sharing an x-axis as a text table.

    All series must be sampled at the same x values (the sweeps
    guarantee this); a missing point renders as ``-``.
    """
    if not series:
        raise ValueError("series must be non-empty")
    xs: Sequence[float] = []
    for curve in series.values():
        if len(curve.xs) > len(xs):
            xs = curve.xs
    headers = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        row: list = [int(x) if float(x).is_integer() else x]
        for curve in series.values():
            try:
                row.append(curve.y_at(x))
            except KeyError:
                row.append(None)
        rows.append(row)
    return render_table(headers, rows, title=title, float_format=float_format)


def render_ascii_plot(
    series: Mapping[str, Series],
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """A rough character plot of several curves on shared axes.

    Each curve is drawn with its own marker (`*`, `o`, `+`, ...);
    overlapping points show the later curve's marker.  Meant for quick
    terminal inspection of the figure sweeps — the tables rendered by
    :func:`render_series` remain the precise record.
    """
    import math

    if not series:
        raise ValueError("series must be non-empty")
    markers = "*o+x#@%&"
    points = []
    for curve in series.values():
        points.extend(curve.points())
    if not points:
        raise ValueError("series contain no points")

    def x_of(value: float) -> float:
        return math.log2(value) if log_x and value > 0 else value

    def y_of(value: float) -> float:
        return math.log10(value) if log_y and value > 0 else value

    xs = [x_of(p[0]) for p in points]
    ys = [y_of(p[1]) for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, curve) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in curve.points():
            column = int((x_of(x) - x_low) / x_span * (width - 1))
            row = int((y_of(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    y_label_top = f"{(10 ** y_high if log_y else y_high):.0f}"
    y_label_bottom = f"{(10 ** y_low if log_y else y_low):.0f}"
    gutter = max(len(y_label_top), len(y_label_bottom))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_label_top.rjust(gutter)
        elif row_index == height - 1:
            prefix = y_label_bottom.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_left = f"{(2 ** x_low if log_x else x_low):.0f}"
    x_right = f"{(2 ** x_high if log_x else x_high):.0f}"
    lines.append(
        " " * gutter
        + "  "
        + x_left
        + " " * max(width - len(x_left) - len(x_right), 1)
        + x_right
    )
    legend = "   ".join(
        f"{markers[index % len(markers)]} {label}"
        for index, label in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def savings_column(
    baseline: Series, improved: Series
) -> Series:
    """Percent reduction of ``improved`` relative to ``baseline``."""
    result = Series(label=f"savings({improved.label})")
    for x, base_y in baseline.points():
        try:
            new_y = improved.y_at(x)
        except KeyError:
            continue
        if base_y:
            result.add(x, 100.0 * (1.0 - new_y / base_y))
    return result
