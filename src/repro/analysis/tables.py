"""Fixed-width plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def _format_cell(value, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return float_format % value
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_format: str = "%.2f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Numeric columns are right-aligned, text columns left-aligned;
    floats use ``float_format``.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    formatted: List[List[str]] = [
        [_format_cell(cell, float_format) for cell in row] for row in rows
    ]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )

    widths = [len(h) for h in headers]
    for row in formatted:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    # A column is right-aligned if every body cell parses as a number.
    def is_numeric(column: int) -> bool:
        cells = [row[column] for row in formatted if row[column] != "-"]
        if not cells:
            return False
        for cell in cells:
            try:
                float(cell)
            except ValueError:
                return False
        return True

    numeric = [is_numeric(c) for c in range(len(headers))]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for column, cell in enumerate(cells):
            if numeric[column]:
                parts.append(cell.rjust(widths[column]))
            else:
                parts.append(cell.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)
