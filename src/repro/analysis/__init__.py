"""Reporting: plain-text tables, figure series, experiment registry.

:mod:`repro.analysis.experiments` maps experiment ids (``table1`` ...
``figure10``, plus the Section 5.1/7.1/8 studies) to runner functions;
every benchmark in ``benchmarks/`` and every row of EXPERIMENTS.md is
produced through this registry, so the paper artifacts can also be
regenerated directly:

    python -m repro.analysis.experiments figure5
"""

from repro.analysis.tables import render_table
from repro.analysis.figures import render_series
from repro.analysis.claims import ClaimResult, verify_claims, verify_report
from repro.analysis.experiments import EXPERIMENTS, ExperimentResult, run

__all__ = [
    "render_table",
    "render_series",
    "EXPERIMENTS",
    "ExperimentResult",
    "run",
    "ClaimResult",
    "verify_claims",
    "verify_report",
]
