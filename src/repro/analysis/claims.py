"""Programmatic verification of the paper's headline claims.

DESIGN.md lists the claims this reproduction must show.  This module
encodes each one as a small, self-contained check that runs the actual
simulators (at reduced but sufficient fidelity) and returns pass/fail
with the measured numbers, so a user can audit the reproduction in one
command:

    python -m repro verify

Each check is independent, seeded, and states its provenance (which
paper section/figure it comes from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.barrier.models import model1_accesses, model2_accesses
from repro.barrier.simulator import simulate_barrier
from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    RandomizedExponentialBackoff,
    VariableBackoff,
)


@dataclass
class ClaimResult:
    """Outcome of one claim check."""

    claim_id: str
    statement: str
    provenance: str
    passed: bool
    evidence: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim_id}: {self.statement}\n" \
               f"       {self.provenance}\n       evidence: {self.evidence}"


def _claim_variable_backoff_20pct(repetitions: int, seed: int) -> ClaimResult:
    base = simulate_barrier(256, 0, NoBackoff(), repetitions=repetitions, seed=seed)
    var = simulate_barrier(
        256, 0, VariableBackoff(), repetitions=repetitions, seed=seed
    )
    savings = var.savings_vs(base)
    return ClaimResult(
        claim_id="variable-20pct",
        statement="barrier-variable backoff saves ~20% when N >> A",
        provenance="Figure 5 / Section 6.2",
        passed=0.15 < savings < 0.25,
        evidence=f"savings {100 * savings:.1f}% at N=256, A=0",
    )


def _claim_flag_backoff_95pct(repetitions: int, seed: int) -> ClaimResult:
    base = simulate_barrier(16, 1000, NoBackoff(), repetitions=repetitions, seed=seed)
    b2 = simulate_barrier(
        16, 1000, ExponentialFlagBackoff(2), repetitions=repetitions, seed=seed
    )
    savings = b2.savings_vs(base)
    return ClaimResult(
        claim_id="flag-95pct",
        statement="exponential flag backoff saves >95% when A >> N",
        provenance="Figure 7 / abstract",
        passed=savings > 0.95,
        evidence=f"savings {100 * savings:.1f}% at N=16, A=1000, base 2",
    )


def _claim_base2_tradeoff(repetitions: int, seed: int) -> ClaimResult:
    base = simulate_barrier(64, 1000, NoBackoff(), repetitions=repetitions, seed=seed)
    b2 = simulate_barrier(
        64, 1000, ExponentialFlagBackoff(2), repetitions=repetitions, seed=seed
    )
    savings = b2.savings_vs(base)
    waiting = b2.waiting_increase_vs(base)
    return ClaimResult(
        claim_id="base2-tradeoff",
        statement="base 2 is the favourable tradeoff (97% savings, ~16% waiting)",
        provenance="Section 7 (N=64, A=1000)",
        passed=savings > 0.9 and waiting < 0.35,
        evidence=f"savings {100 * savings:.1f}%, waiting +{100 * waiting:.1f}%",
    )


def _claim_base8_overshoot(repetitions: int, seed: int) -> ClaimResult:
    base = simulate_barrier(64, 1000, NoBackoff(), repetitions=repetitions, seed=seed)
    b8 = simulate_barrier(
        64, 1000, ExponentialFlagBackoff(8), repetitions=repetitions, seed=seed
    )
    waiting = b8.waiting_increase_vs(base)
    return ClaimResult(
        claim_id="base8-overshoot",
        statement="large bases overshoot the release (paper: +350% waiting)",
        provenance="Section 7 / Figure 10",
        passed=waiting > 2.0,
        evidence=f"waiting +{100 * waiting:.0f}% at N=64, A=1000, base 8",
    )


def _claim_waiting_peak(repetitions: int, seed: int) -> ClaimResult:
    waits = {
        n: simulate_barrier(
            n, 1000, ExponentialFlagBackoff(8), repetitions=repetitions, seed=seed
        ).mean_waiting_time
        for n in (16, 64, 512)
    }
    passed = waits[64] > waits[16] and waits[512] < waits[64]
    return ClaimResult(
        claim_id="waiting-peak",
        statement="backoff waiting time peaks near N=64 then declines (A=1000)",
        provenance="Section 7 / Figure 10",
        passed=passed,
        evidence=f"waits N16={waits[16]:.0f}, N64={waits[64]:.0f}, "
                 f"N512={waits[512]:.0f}",
    )


def _claim_models_fit(repetitions: int, seed: int) -> ClaimResult:
    sim_a0 = simulate_barrier(
        128, 0, NoBackoff(), repetitions=max(repetitions // 4, 2), seed=seed
    ).mean_accesses
    sim_a1000 = simulate_barrier(
        16, 1000, NoBackoff(), repetitions=repetitions, seed=seed
    ).mean_accesses
    err1 = abs(sim_a0 - model1_accesses(128)) / model1_accesses(128)
    err2 = abs(sim_a1000 - model2_accesses(16, 1000)) / model2_accesses(16, 1000)
    return ClaimResult(
        claim_id="models-fit",
        statement="Model 1 fits A<<N and Model 2 fits A>>N",
        provenance="Figure 4 / Section 5.1",
        passed=err1 < 0.05 and err2 < 0.08,
        evidence=f"Model 1 error {100 * err1:.1f}%, Model 2 error {100 * err2:.1f}%",
    )


def _claim_determinism(repetitions: int, seed: int) -> ClaimResult:
    det = simulate_barrier(
        64, 1000, ExponentialFlagBackoff(2), repetitions=repetitions, seed=seed
    )
    rnd = simulate_barrier(
        64,
        1000,
        RandomizedExponentialBackoff(2, seed=seed),
        repetitions=repetitions,
        seed=seed,
    )
    return ClaimResult(
        claim_id="determinism",
        statement="deterministic backoff beats randomized (serialization preserved)",
        provenance="Section 4.2",
        passed=det.mean_accesses <= rnd.mean_accesses,
        evidence=f"accesses {det.mean_accesses:.1f} (det) vs "
                 f"{rnd.mean_accesses:.1f} (rand)",
    )


def _claim_sync_invalidations(repetitions: int, seed: int) -> ClaimResult:
    from repro.analysis.experiments import run

    result = run(
        "table1", scale=0.2, num_cpus=16, pointers=(2, 16), apps=("SIMPLE",)
    )
    data = result.data["SIMPLE"]
    limited_data, limited_sync = data[2]
    __, full_sync = data[16]
    passed = limited_sync > 3 * limited_data and full_sync < limited_sync / 3
    return ClaimResult(
        claim_id="sync-invalidations",
        statement="sync refs invalidate far more than data; full map collapses it",
        provenance="Table 1 / Figure 1",
        passed=passed,
        evidence=f"i=2: sync {limited_sync:.0f}% vs data {limited_data:.0f}%; "
                 f"full map sync {full_sync:.0f}%",
    )


def _claim_traffic_ordering(repetitions: int, seed: int) -> ClaimResult:
    from repro.analysis.experiments import run

    result = run(
        "table2", scale=0.2, num_cpus=16, pointers=(2,),
        apps=("FFT", "SIMPLE", "WEATHER"),
    )
    fft = result.data["FFT"][2]
    simple = result.data["SIMPLE"][2]
    weather = result.data["WEATHER"][2]
    return ClaimResult(
        claim_id="traffic-ordering",
        statement="uncached sync traffic ranks FFT << SIMPLE, WEATHER",
        provenance="Table 2",
        passed=fft < simple and fft < weather,
        evidence=f"FFT {fft:.1f}%, SIMPLE {simple:.1f}%, WEATHER {weather:.1f}%",
    )


CLAIM_CHECKS: Dict[str, Callable[[int, int], ClaimResult]] = {
    "variable-20pct": _claim_variable_backoff_20pct,
    "flag-95pct": _claim_flag_backoff_95pct,
    "base2-tradeoff": _claim_base2_tradeoff,
    "base8-overshoot": _claim_base8_overshoot,
    "waiting-peak": _claim_waiting_peak,
    "models-fit": _claim_models_fit,
    "determinism": _claim_determinism,
    "sync-invalidations": _claim_sync_invalidations,
    "traffic-ordering": _claim_traffic_ordering,
}


def verify_claims(
    repetitions: int = 30, seed: int = 0
) -> List[ClaimResult]:
    """Run every claim check; returns the results in registry order."""
    return [check(repetitions, seed) for check in CLAIM_CHECKS.values()]


def verify_report(repetitions: int = 30, seed: int = 0) -> str:
    """A printable pass/fail report over all claims."""
    results = verify_claims(repetitions=repetitions, seed=seed)
    lines = [str(result) for result in results]
    passed = sum(result.passed for result in results)
    lines.append(f"\n{passed}/{len(results)} headline claims verified")
    return "\n".join(lines)
