#!/usr/bin/env python
"""CI serve smoke: the experiment service end-to-end over a real port.

1. start ``python -m repro serve`` as a subprocess on a free port,
2. wait for ``/healthz``,
3. submit the committed ``scenarios/ci_smoke.json`` matrix as a
   ``{"scenario": ...}`` job,
4. poll ``/jobs/<id>`` to completion (streaming a progress line per
   poll from the job's event count),
5. fetch ``/jobs/<id>/result`` and write the scenario report JSON —
   the CI job then gates it against the committed baseline with
   ``tools/check_report.py``,
6. resubmit the identical document and require a dedupe hit answered
   by the same (completed) job.

Exit 1 on any failed step.  Usage::

    python tools/serve_smoke.py --scenario scenarios/ci_smoke.json \\
        --report serve-report.json [--jobs 2] [--timeout 600]
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def http_json(method: str, url: str, body=None, timeout=60.0):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def wait_healthy(base: str, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            status, payload = http_json("GET", f"{base}/healthz", timeout=5.0)
            if status == 200 and payload.get("status") == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.25)
    raise RuntimeError("server never became healthy")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", default="scenarios/ci_smoke.json",
        help="scenario file to submit (default: scenarios/ci_smoke.json)",
    )
    parser.add_argument(
        "--report", default="serve-report.json",
        help="where to write the served scenario report JSON",
    )
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes inside the server")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall budget in seconds")
    args = parser.parse_args()
    deadline = time.monotonic() + args.timeout

    with open(args.scenario, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    # The scenario submission schema carries the document itself; the
    # file-level 'baseline' pointer is CI's concern, not the server's.
    document.pop("baseline", None)

    port = free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    scratch = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--jobs", str(args.jobs),
            "--cache-dir", os.path.join(scratch, "cache"),
            "--work-dir", os.path.join(scratch, "work"),
        ],
        env=env,
        cwd=ROOT,
    )
    try:
        wait_healthy(base, deadline)
        print(f"server healthy on {base}")

        status, accepted = http_json(
            "POST", f"{base}/jobs", {"scenario": document}
        )
        if status != 202 or accepted["deduplicated"]:
            raise RuntimeError(f"unexpected submission response: {accepted}")
        job_id = accepted["job"]["id"]
        print(f"submitted {args.scenario} as {job_id}")

        while True:
            if time.monotonic() > deadline:
                raise RuntimeError(f"job {job_id} exceeded the budget")
            _, job = http_json("GET", f"{base}/jobs/{job_id}")
            print(
                f"  {job_id}: {job['state']} ({job['events']} events)",
                flush=True,
            )
            if job["state"] in ("done", "failed"):
                break
            time.sleep(1.0)
        if job["state"] != "done":
            raise RuntimeError(f"job failed: {job.get('error')}")

        _, result = http_json("GET", f"{base}/jobs/{job_id}/result")
        report = result["result"]
        if report.get("kind") != "scenario-report":
            raise RuntimeError(f"unexpected result kind: {report.get('kind')}")
        if result["digest"] != report["aggregate_digest"]:
            raise RuntimeError("result digest disagrees with the report")
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(
            f"wrote {args.report} "
            f"(aggregate digest {result['digest'][:16]}…)"
        )

        status, again = http_json(
            "POST", f"{base}/jobs", {"scenario": document}
        )
        if not again["deduplicated"] or again["job"]["id"] != job_id:
            raise RuntimeError(f"resubmission was not deduplicated: {again}")
        print(f"resubmission deduplicated onto {job_id} (status {status})")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
