#!/usr/bin/env python
"""Run every registered experiment at tiny scale through the registry.

For each experiment id this drives three executions at the miniature
``FAST_KWARGS`` configuration the tests use:

1. **serial** — the plain registry path (no exec engine),
2. **cold**   — through the exec engine with ``--jobs N --cache`` into
   a fresh cache directory,
3. **warm**   — the same engine run again, which must be served
   entirely from the cache.

It fails (exit 1) when any mode's data digest differs from the
pre-refactor golden (``tests/goldens/registry_parity.json``), when cold
and warm disagree, or when the warm run is not pure cache hits — the
exact regressions a registry or engine change could introduce.

Usage::

    python tools/registry_smoke.py [--jobs 2] [--ids figure5 table1 ...]
                                   [--backend auto|python|numpy]

``--backend`` selects the barrier episode engine (docs/vectorization.md);
experiments whose schema has no ``backend`` parameter ignore it.  The
goldens are backend-independent because backends are bit-identical.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

GOLDENS_PATH = os.path.join(
    REPO_ROOT, "tests", "goldens", "registry_parity.json"
)


def _stringify(value):
    if isinstance(value, dict):
        return {str(k): _stringify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_stringify(v) for v in value]
    return value


def data_digest(data) -> str:
    canonical = json.dumps(_stringify(data), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Digest-check every experiment through the registry",
    )
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the engine runs")
    parser.add_argument("--ids", nargs="*", default=None,
                        help="experiment ids (default: all)")
    parser.add_argument("--backend", default=None,
                        choices=("auto", "python", "numpy"),
                        help="barrier episode engine (default: ambient, "
                             "i.e. auto)")
    args = parser.parse_args(argv)

    from repro.barrier.backend import backend_context, get_kernel_counters
    from repro.exec.context import (
        ExecConfig,
        execution,
        get_stats,
        reset_stats,
    )
    from repro.registry import experiment_ids, run
    from tests.test_experiments import FAST_KWARGS

    with open(GOLDENS_PATH, encoding="utf-8") as handle:
        goldens = json.load(handle)

    ids = args.ids or experiment_ids()
    failures = 0
    for experiment_id in ids:
        kwargs = FAST_KWARGS[experiment_id]
        golden = goldens[experiment_id]["data_sha256"]
        problems = []

        with backend_context(args.backend):
            serial = data_digest(run(experiment_id, **kwargs).data)
            if serial != golden:
                problems.append("serial digest != golden")

            with tempfile.TemporaryDirectory(
                prefix="registry-smoke-"
            ) as cache:
                config = ExecConfig(jobs=args.jobs, cache=True,
                                    cache_dir=cache, force_engine=True)
                reset_stats()
                with execution(config):
                    cold = data_digest(run(experiment_id, **kwargs).data)
                cold_stats = get_stats()
                reset_stats()
                with execution(config):
                    warm = data_digest(run(experiment_id, **kwargs).data)
                warm_stats = get_stats()

        if cold != golden:
            problems.append("cold engine digest != golden")
        if warm != cold:
            problems.append("warm cache digest != cold")
        if warm_stats.cache_hits != cold_stats.points or warm_stats.cache_misses:
            problems.append(
                f"warm run not pure cache hits "
                f"({warm_stats.cache_hits}/{cold_stats.points} hits, "
                f"{warm_stats.cache_misses} misses)"
            )

        if problems:
            failures += 1
            print(f"{experiment_id:18} FAIL: {'; '.join(problems)}")
        else:
            print(
                f"{experiment_id:18} ok "
                f"({cold_stats.points} point(s), digest {serial[:12]})"
            )

    if failures:
        print(f"\n{failures} experiment(s) failed", file=sys.stderr)
        return 1
    counters = get_kernel_counters()
    backend_note = f"backend={args.backend or 'ambient (auto)'}"
    if counters.vectorized_shards or counters.fallback_shards:
        backend_note += (
            f", {counters.vectorized_shards} vectorized / "
            f"{counters.fallback_shards} fallback shard(s)"
        )
    print(f"\nall {len(ids)} experiments bit-identical across "
          f"serial / jobs={args.jobs} / cache-warm ({backend_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
