#!/usr/bin/env python3
"""Check that relative links in the repo's Markdown files resolve.

Scans every tracked ``*.md`` under the repository root (including
``docs/``) for inline Markdown links and verifies that each relative
target exists on disk. External links (http/https/mailto) and pure
in-page anchors are skipped. Exits non-zero listing every broken link.

Usage: python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", "profiles"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(path.relative_to(root).parts):
            yield path


def broken_links(path: Path):
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            line = text.count("\n", 0, match.start()) + 1
            yield line, target


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = 0
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        for line, target in broken_links(path):
            failures += 1
            print(f"{path.relative_to(root)}:{line}: broken link -> {target}")
    print(f"checked {checked} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
