#!/usr/bin/env python
"""Collect benchmark records into a single ``BENCH_sweeps.json``.

Every ``bench_*.py`` run writes a machine-readable record next to its
text report (``benchmarks/reports/<id>.json`` — see
``benchmarks/_util.py``).  This tool gathers them into one artifact:

- per-experiment wall time and the knobs each run used,
- the serial-vs-``--jobs`` comparison from ``parallel_sweep.json``
  (speedup, worker count, digest equality),
- the python-vs-numpy backend comparisons from
  ``vectorized_kernel.json`` (the flat barrier) and
  ``tree_kernel.json`` (the combining-tree family) — speedup, shard
  counters, digest equality (see docs/vectorization.md),
- the N=256..4096 scaling study from ``scale_sweep.json``
  (per-N accesses vs the Model 1/2 prediction — see
  docs/performance.md),
- the host's ``cpu_count`` so a <= 1x speedup on a one-core CI box is
  not mistaken for a regression (``parallel_sweep`` omits the speedup
  entirely and records pool overhead when cpu_count < jobs).

Usage::

    python tools/bench_report.py [--reports-dir benchmarks/reports]
                                 [--output BENCH_sweeps.json]

Exits non-zero when the reports directory holds no records, so CI
fails loudly if the bench step silently produced nothing.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict

DEFAULT_REPORTS_DIR = os.path.join("benchmarks", "reports")
DEFAULT_OUTPUT = "BENCH_sweeps.json"


def collect(reports_dir: str) -> Dict[str, Any]:
    """Read every ``<id>.json`` record under ``reports_dir``."""
    experiments: Dict[str, Any] = {}
    comparison: Dict[str, Any] = {}
    registry_overhead: Dict[str, Any] = {}
    vectorized: Dict[str, Any] = {}
    tree_kernel: Dict[str, Any] = {}
    scale: Dict[str, Any] = {}
    for path in sorted(glob.glob(os.path.join(reports_dir, "*.json"))):
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"skipping unreadable record {path}: {error}",
                  file=sys.stderr)
            continue
        if name == "parallel_sweep":
            comparison = record
        elif name == "registry_overhead":
            registry_overhead = record
        elif name == "vectorized_kernel":
            vectorized = record
        elif name == "tree_kernel":
            tree_kernel = record
        elif name == "scale_sweep":
            scale = record
        else:
            experiments[name] = record
    return {
        "cpu_count": os.cpu_count(),
        "experiments": experiments,
        "python_vs_numpy": vectorized,
        "python_vs_numpy_tree": tree_kernel,
        "registry_overhead": registry_overhead,
        "scale1024": scale,
        "serial_vs_jobs": comparison,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Collect benchmark records into BENCH_sweeps.json",
    )
    parser.add_argument("--reports-dir", default=DEFAULT_REPORTS_DIR)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = collect(args.reports_dir)
    if (not report["experiments"] and not report["serial_vs_jobs"]
            and not report["python_vs_numpy"]):
        print(
            f"no benchmark records found under {args.reports_dir}; "
            "run `python -m pytest benchmarks/` first",
            file=sys.stderr,
        )
        return 1

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    comparison = report["serial_vs_jobs"]
    print(f"wrote {args.output}: {len(report['experiments'])} experiment "
          f"record(s)")
    for name, record in sorted(report["experiments"].items()):
        wall = record.get("wall_time_seconds")
        jobs = record.get("jobs", 1)
        if isinstance(wall, (int, float)):
            print(f"  {name:<24} {wall:8.3f}s  jobs={jobs}")
    overhead = report["registry_overhead"]
    if overhead:
        fraction = overhead.get("overhead_fraction")
        if isinstance(fraction, (int, float)):
            print(
                f"  registry dispatch overhead: {100 * fraction:.2f}% "
                f"of {overhead.get('registry_seconds', 0.0):.3f}s "
                f"({overhead.get('experiment_id')}, budget "
                f"{100 * overhead.get('max_overhead_fraction', 0.02):.0f}%)"
            )
    vectorized = report["python_vs_numpy"]
    if vectorized:
        speedup = vectorized.get("speedup")
        print(
            f"  backend python vs numpy ({vectorized.get('experiment_id')}): "
            f"{vectorized.get('python_seconds', 0.0):.3f}s -> "
            f"{vectorized.get('numpy_seconds', 0.0):.3f}s "
            f"({speedup:.1f}x, {vectorized.get('vectorized_shards', 0)} "
            f"vectorized shard(s))"
            if isinstance(speedup, (int, float)) else
            "  backend python vs numpy comparison incomplete"
        )
    tree_kernel = report["python_vs_numpy_tree"]
    if tree_kernel:
        speedup = tree_kernel.get("speedup")
        print(
            f"  tree kernel python vs numpy: "
            f"{tree_kernel.get('python_seconds', 0.0):.3f}s -> "
            f"{tree_kernel.get('numpy_seconds', 0.0):.3f}s "
            f"({speedup:.1f}x, {tree_kernel.get('vectorized_shards', 0)} "
            f"vectorized shard(s))"
            if isinstance(speedup, (int, float)) else
            "  tree kernel comparison incomplete"
        )
    scale = report["scale1024"]
    if scale:
        n_values = scale.get("n_values", [])
        print(
            f"  scale1024: N={min(n_values)}..{max(n_values)} in "
            f"{scale.get('wall_time_seconds', 0.0):.1f}s "
            f"({scale.get('repetitions')} rep(s), backend "
            f"{scale.get('backend')})"
            if n_values else "  scale1024 record incomplete"
        )
    if comparison:
        speedup = comparison.get("speedup")
        if isinstance(speedup, (int, float)):
            print(
                f"  serial vs jobs={comparison.get('jobs')}: "
                f"{comparison.get('serial_seconds', 0.0):.3f}s -> "
                f"{comparison.get('parallel_seconds', 0.0):.3f}s "
                f"({speedup:.2f}x on {comparison.get('cpu_count')} cpu(s))"
            )
        elif comparison.get("speedup_note"):
            print(f"  serial vs jobs: {comparison['speedup_note']}")
        else:
            print("  serial vs jobs comparison incomplete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
