#!/usr/bin/env python
"""Inspect and compare ``repro check`` and ``repro scenario`` reports.

``python -m repro check`` writes ``checks/report.json`` and
``python -m repro scenario run`` writes an aggregate scenario report
(CI uploads both as artifacts).  This tool answers the two questions a
red run raises without re-running anything:

- **What failed, and how do I reproduce it?**  ``summarize`` prints
  every failing check (with its detail and single-line repro command)
  or every non-ok scenario cell.
- **What changed between two runs?**  ``--against`` diffs a second
  report: checks/cells that regressed, recovered, appeared, or
  disappeared — and, for scenario reports, cells whose result digest
  *changed* while staying healthy (the quiet failure mode a
  status-only diff misses; counted as a regression).

Usage::

    python tools/check_report.py checks/report.json
    python tools/check_report.py new/report.json --against old/report.json
    python tools/check_report.py scenario-report.json --against baseline.json

The report kind is sniffed from the payload, so the same invocation
works for both formats (mixing kinds across ``--against`` is an
error).  Exits 0 when the (primary) report is all-pass and, with
``--against``, nothing regressed; 1 otherwise; 2 on unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

#: Scenario aggregate reports carry this marker (repro.scenario.report).
SCENARIO_KIND = "scenario-report"

#: Cell-health ordering for scenario regression detection.
_SEVERITY = {"ok": 0, "degraded": 1, "failed": 2}


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("kind") == SCENARIO_KIND:
        if "cells" not in report or "aggregate_digest" not in report:
            raise ValueError(f"{path}: malformed scenario report")
        return report
    for field in ("seed", "budget", "outcomes"):
        if field not in report:
            raise ValueError(f"{path}: not a check report (missing {field!r})")
    return report


def is_scenario(report: Dict[str, Any]) -> bool:
    return report.get("kind") == SCENARIO_KIND


def _key(outcome: Dict[str, Any]) -> str:
    return f"{outcome['suite']}/{outcome['check']}"


def summarize(report: Dict[str, Any]) -> int:
    """Print the report's headline and every failure; returns failures."""
    if is_scenario(report):
        return _summarize_scenario(report)
    failures = [o for o in report["outcomes"] if not o["passed"]]
    print(
        f"seed={report['seed']} budget={report['budget']} "
        f"checks={len(report['outcomes'])} failures={len(failures)} "
        f"wall={report.get('wall_time_seconds', 0.0):.2f}s"
    )
    for outcome in failures:
        print(f"\nFAIL {_key(outcome)}")
        for line in str(outcome.get("detail", "")).strip().splitlines():
            print(f"  {line}")
        if outcome.get("repro"):
            print(f"  repro: {outcome['repro']}")
    return len(failures)


def _summarize_scenario(report: Dict[str, Any]) -> int:
    """Scenario flavour of :func:`summarize`; returns non-ok cells."""
    counts = report["counts"]
    bad = [c for c in report["cells"] if c["status"] != "ok"]
    print(
        f"scenario={report['scenario']} cells={counts['cells']} "
        f"ok={counts['ok']} degraded={counts['degraded']} "
        f"failed={counts['failed']} "
        f"aggregate={report['aggregate_digest'][:16]}…"
    )
    for cell in bad:
        print(f"\n{cell['status'].upper()} {cell['id']}")
        if cell.get("error"):
            print(f"  {cell['error']}")
    return len(bad)


def diff(new: Dict[str, Any], old: Dict[str, Any]) -> int:
    """Print transitions old -> new; returns regressions."""
    if is_scenario(new):
        return _diff_scenario(new, old)
    new_by_key = {_key(o): o for o in new["outcomes"]}
    old_by_key = {_key(o): o for o in old["outcomes"]}
    regressed = sorted(
        key for key, o in new_by_key.items()
        if not o["passed"] and old_by_key.get(key, {}).get("passed", True)
        and key in old_by_key
    )
    recovered = sorted(
        key for key, o in new_by_key.items()
        if o["passed"] and key in old_by_key
        and not old_by_key[key]["passed"]
    )
    appeared = sorted(set(new_by_key) - set(old_by_key))
    disappeared = sorted(set(old_by_key) - set(new_by_key))
    for label, keys in (
        ("regressed", regressed),
        ("recovered", recovered),
        ("appeared", appeared),
        ("disappeared", disappeared),
    ):
        if keys:
            print(f"{label}: {', '.join(keys)}")
    if not any((regressed, recovered, appeared, disappeared)):
        print("no changes between the reports")
    return len(regressed)


def _diff_scenario(new: Dict[str, Any], old: Dict[str, Any]) -> int:
    """Scenario flavour of :func:`diff`: status transitions plus the
    digest-aware ``changed`` category; returns regressions."""
    new_by_id = {cell["id"]: cell for cell in new["cells"]}
    old_by_id = {cell["id"]: cell for cell in old["cells"]}
    shared = sorted(set(new_by_id) & set(old_by_id))
    regressed = [
        cid for cid in shared
        if _SEVERITY[new_by_id[cid]["status"]]
        > _SEVERITY[old_by_id[cid]["status"]]
    ]
    recovered = [
        cid for cid in shared
        if _SEVERITY[new_by_id[cid]["status"]]
        < _SEVERITY[old_by_id[cid]["status"]]
    ]
    moved = set(regressed) | set(recovered)
    changed = [
        cid for cid in shared
        if cid not in moved
        and new_by_id[cid]["digest"] != old_by_id[cid]["digest"]
    ]
    appeared = sorted(set(new_by_id) - set(old_by_id))
    disappeared = sorted(set(old_by_id) - set(new_by_id))
    for label, keys in (
        ("regressed", regressed),
        ("changed", changed),
        ("recovered", recovered),
        ("appeared", appeared),
        ("disappeared", disappeared),
    ):
        if keys:
            print(f"{label}: {', '.join(keys)}")
    if not any((regressed, changed, recovered, appeared, disappeared)):
        print("no changes between the reports")
    # A digest change on a healthy cell is still a reproducibility
    # regression: the same cell no longer computes the same result.
    return len(regressed) + len(changed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", help="path to a check report.json or scenario report"
    )
    parser.add_argument(
        "--against", default=None, metavar="OLD",
        help="also diff against this earlier report of the same kind",
    )
    args = parser.parse_args(argv)
    try:
        report = load_report(args.report)
        old = load_report(args.against) if args.against else None
        if old is not None and is_scenario(report) != is_scenario(old):
            raise ValueError(
                f"{args.against}: report kinds differ (check vs scenario)"
            )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    failures = summarize(report)
    regressions = 0
    if old is not None:
        print()
        regressions = diff(report, old)
    return 1 if failures or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
