#!/usr/bin/env python
"""Inspect and compare ``repro check`` JSON reports.

``python -m repro check`` writes ``checks/report.json`` (CI uploads it
as the ``check-report`` artifact).  This tool answers the two questions
a red check run raises without re-running anything:

- **What failed, and how do I reproduce it?**  ``summarize`` prints
  every failing check with its detail and single-line repro command.
- **What changed between two runs?**  ``--against`` diffs a second
  report: checks that regressed (pass -> fail), recovered, appeared,
  or disappeared.

Usage::

    python tools/check_report.py checks/report.json
    python tools/check_report.py new/report.json --against old/report.json

Exits 0 when the (primary) report is all-pass and, with ``--against``,
nothing regressed; 1 otherwise; 2 on unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    for field in ("seed", "budget", "outcomes"):
        if field not in report:
            raise ValueError(f"{path}: not a check report (missing {field!r})")
    return report


def _key(outcome: Dict[str, Any]) -> str:
    return f"{outcome['suite']}/{outcome['check']}"


def summarize(report: Dict[str, Any]) -> int:
    """Print the report's headline and every failure; returns failures."""
    failures = [o for o in report["outcomes"] if not o["passed"]]
    print(
        f"seed={report['seed']} budget={report['budget']} "
        f"checks={len(report['outcomes'])} failures={len(failures)} "
        f"wall={report.get('wall_time_seconds', 0.0):.2f}s"
    )
    for outcome in failures:
        print(f"\nFAIL {_key(outcome)}")
        for line in str(outcome.get("detail", "")).strip().splitlines():
            print(f"  {line}")
        if outcome.get("repro"):
            print(f"  repro: {outcome['repro']}")
    return len(failures)


def diff(new: Dict[str, Any], old: Dict[str, Any]) -> int:
    """Print pass/fail transitions old -> new; returns regressions."""
    new_by_key = {_key(o): o for o in new["outcomes"]}
    old_by_key = {_key(o): o for o in old["outcomes"]}
    regressed = sorted(
        key for key, o in new_by_key.items()
        if not o["passed"] and old_by_key.get(key, {}).get("passed", True)
        and key in old_by_key
    )
    recovered = sorted(
        key for key, o in new_by_key.items()
        if o["passed"] and key in old_by_key
        and not old_by_key[key]["passed"]
    )
    appeared = sorted(set(new_by_key) - set(old_by_key))
    disappeared = sorted(set(old_by_key) - set(new_by_key))
    for label, keys in (
        ("regressed", regressed),
        ("recovered", recovered),
        ("appeared", appeared),
        ("disappeared", disappeared),
    ):
        if keys:
            print(f"{label}: {', '.join(keys)}")
    if not any((regressed, recovered, appeared, disappeared)):
        print("no changes between the reports")
    return len(regressed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to a check report.json")
    parser.add_argument(
        "--against", default=None, metavar="OLD",
        help="also diff against this earlier report.json",
    )
    args = parser.parse_args(argv)
    try:
        report = load_report(args.report)
        old = load_report(args.against) if args.against else None
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    failures = summarize(report)
    regressions = 0
    if old is not None:
        print()
        regressions = diff(report, old)
    return 1 if failures or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
