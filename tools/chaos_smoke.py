#!/usr/bin/env python
"""CI chaos smoke: kill a worker mid-sweep, damage durable state, recover.

Drives :func:`repro.exec.chaos.run_chaos` at a small configuration:

1. a serial fault-free baseline pins the payload + manifest digests,
2. a ``--jobs 4`` sweep runs under chaos injection — one worker is
   ``SIGKILL``ed mid-run — while the cache warms and every point is
   checkpointed,
3. a seeded victim point's cache entry and checkpoint record are both
   torn mid-file,
4. a ``--resume`` run recovers: intact points replay from the
   checkpoint, the corrupted cache entry is quarantined and recomputed.

Exit 1 when any run's digests diverge from the baseline or a recovery
went unrecorded on the supervision counters (``exec.worker_deaths``,
``exec.cache_quarantined``, ``exec.points_resumed``).  The counters are
written as JSON for the CI artifact upload.

Usage::

    python tools/chaos_smoke.py [--id figure5] [--jobs 4] [--seed 3]
                                [--counters chaos_counters.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--id", default="figure5", help="experiment id")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repetitions", type=int, default=2)
    parser.add_argument(
        "--counters", default="chaos_counters.json",
        help="write the recovery counters JSON here (CI artifact)",
    )
    args = parser.parse_args(argv)

    from repro.exec.chaos import run_chaos

    report = run_chaos(
        args.id,
        seed=args.seed,
        jobs=args.jobs,
        kill=1,
        repetitions=args.repetitions,
        n_values=(2, 4, 8),
    )
    print(report.render())
    with open(args.counters, "w", encoding="utf-8") as handle:
        json.dump(report.counters(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"counters  : {args.counters}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
